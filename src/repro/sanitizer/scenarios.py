"""Canned concurrency workloads that exercise every instrumented seam.

Each scenario drives one lock-carrying class the way its production
callers do -- shared instance, many threads, mixed read/write traffic --
while a sanitizer session records happens-before and lockset evidence.
On a correct tree every scenario is race-free; the mutation-acceptance
tests subclass the same classes with the lock removed and prove the
sanitizer pinpoints the seeded bug.

:func:`run_scenarios` is the engine behind ``repro san``: it runs the
chosen scenarios once without schedule fuzzing, then ``fuzz_rounds``
more times with per-round derived seeds perturbing the interleavings,
and merges everything into one deduplicated
:class:`~repro.sanitizer.report.SanitizerReport`.
"""

from __future__ import annotations

import tempfile
import threading
import time
from types import SimpleNamespace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.sanitizer import runtime
from repro.sanitizer.fuzz import FuzzSchedule, derive_seed
from repro.sanitizer.report import RaceReport, SanitizerReport

#: A scenario takes the worker count and runs its workload to completion.
Scenario = Callable[[int], None]


def _run_threads(workers: int, target: Callable[[int], None]) -> None:
    """Start ``workers`` threads running ``target(index)`` and join all.

    ``threading.Thread`` start/join are patched by the active sanitizer,
    so this helper is also what gives every scenario its fork/join
    happens-before edges.
    """
    threads = [
        threading.Thread(target=target, args=(index,), name=f"scenario-{index}")
        for index in range(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def _scenario_metrics(workers: int) -> None:
    """Concurrent counter increments and timer observations."""
    from repro.common.metrics import MetricsRegistry

    registry = MetricsRegistry()

    def work(index: int) -> None:
        for step in range(40):
            registry.increment("scenario.ops")
            registry.add_time("scenario.latency", 0.001 * ((index + step) % 5))
        registry.counter("scenario.ops")
        registry.snapshot()

    _run_threads(workers, work)


def _scenario_blockcache(workers: int) -> None:
    """Overlapping single-flight loads with eviction pressure."""
    from repro.fabric.blockcache import BlockCache

    cache = BlockCache(capacity=4)

    def work(index: int) -> None:
        for step in range(30):
            key = (index + step) % 10
            cache.get_or_load(key, lambda key=key: f"block-{key}")

    _run_threads(workers, work)


def _fake_block(number: int, keys: Sequence[str]) -> SimpleNamespace:
    """A structurally Block-like object for index-only traffic.

    ``HistoryDB.index_block`` only reads ``number``, ``transactions``,
    each transaction's ``validation_code`` and ``rw_set.writes`` keys --
    a namespace is enough, and keeps the scenario free of serialization.
    """
    from repro.fabric.block import VALID

    transactions = [
        SimpleNamespace(
            validation_code=VALID,
            rw_set=SimpleNamespace(writes={key: None}),
        )
        for key in keys
    ]
    return SimpleNamespace(number=number, transactions=transactions)


def _scenario_historydb(workers: int) -> None:
    """Index writers racing location readers on a shared HistoryDB."""
    from repro.fabric.historydb import HistoryDB

    history = HistoryDB()

    def work(index: int) -> None:
        for step in range(25):
            block_num = index * 100 + step
            history.index_block(
                _fake_block(block_num, [f"key-{(index + step) % 6}"])
            )
            history.locations_for_key(f"key-{step % 6}")
            history.block_count_for_key(f"key-{(step + 1) % 6}")
            history.key_count()

    _run_threads(workers, work)


def _scenario_lsm(workers: int) -> None:
    """Writers forcing memtable flushes while readers get/scan."""
    from repro.storage.kv.lsm import LSMStore

    with tempfile.TemporaryDirectory(prefix="repro-san-lsm-") as tmp:
        store = LSMStore(tmp, memtable_limit=8, compaction_trigger=4)

        def work(index: int) -> None:
            for step in range(20):
                key = f"k{(index + step) % 12:03d}".encode()
                if index % 2 == 0:
                    store.put(key, f"v{index}.{step}".encode())
                else:
                    store.get(key)
                    if step % 5 == 0:
                        list(store.scan(b"k000", b"k006"))

        _run_threads(workers, work)


def _scenario_blockfile(workers: int) -> None:
    """One committer appending across rollovers while readers hammer
    ``read``/``read_many``/``file_size`` -- the shared-append-handle seam
    (reader-side visibility flush vs mid-record writes and rollover)."""
    from repro.storage.blockfile import BlockFileManager

    with tempfile.TemporaryDirectory(prefix="repro-san-blockfile-") as tmp:
        manager = BlockFileManager(tmp, max_file_bytes=512)
        locations = [manager.append(b"seed-payload")]
        try:

            def work(index: int) -> None:
                for step in range(25):
                    if index == 0:  # the committer thread
                        locations.append(
                            manager.append(f"blk-{step:03d}".encode() * 4)
                        )
                    else:
                        location = locations[(index + step) % len(locations)]
                        manager.read(location)
                        manager.file_size(manager.current_file_num)
                        if step % 5 == 0:
                            count = len(locations)
                            manager.read_many(
                                [locations[(index + d) % count]
                                 for d in range(3)]
                            )

            _run_threads(workers, work)
        finally:
            manager.close()


def _scenario_breaker(workers: int) -> None:
    """Half-open probe contention: many threads, one probe allowed."""
    from repro.common.resilience import CircuitBreaker

    now = [0.0]
    breaker = CircuitBreaker(
        name="scenario",
        failure_threshold=0.5,
        min_calls=2,
        window=4,
        reset_timeout=1.0,
        clock=lambda: now[0],
    )
    for _ in range(4):
        breaker.record_failure()
    now[0] = 2.0  # past the reset timeout: next allow() goes half-open

    allowed: List[bool] = [False] * workers
    barrier = threading.Barrier(workers)

    def work(index: int) -> None:
        barrier.wait()
        # No outcome is recorded inside the race: until the probe's
        # result comes back, every other caller must stay refused.
        allowed[index] = breaker.allow()

    _run_threads(workers, work)
    if sum(allowed) != 1:
        raise AssertionError(
            f"half-open breaker allowed {sum(allowed)} probes, expected 1"
        )
    breaker.record_success()
    if breaker.state != "closed":
        raise AssertionError("probe success should close the breaker")


def _scenario_executor(workers: int) -> None:
    """The thread-pool executor's fork/join seam over shared metrics."""
    from repro.common.metrics import MetricsRegistry
    from repro.temporal.executor import ThreadPoolQueryExecutor

    registry = MetricsRegistry()
    executor = ThreadPoolQueryExecutor(workers=max(2, workers))

    def fetch(item: int) -> int:
        registry.increment("scenario.fetches")
        return item * 2

    results = executor.map(fetch, list(range(24)))
    if results != [item * 2 for item in range(24)]:
        raise AssertionError("executor returned out-of-order results")
    if registry.counter("scenario.fetches") != 24:
        raise AssertionError("executor lost metric increments")


def _scenario_faultyfile(workers: int) -> None:
    """Concurrent writes and flushes through one fault-injected handle."""
    from repro.faults.fs import FaultyFS
    from repro.faults.plan import FaultPlan

    with tempfile.TemporaryDirectory(prefix="repro-san-fs-") as tmp:
        fs = FaultyFS(FaultPlan(seed=7))
        handle = fs.open(f"{tmp}/scenario.bin", "wb")
        try:

            def work(index: int) -> None:
                for step in range(15):
                    handle.write(bytes([index % 256]) * 8)
                    if step % 4 == 0:
                        handle.flush()

            _run_threads(workers, work)
        finally:
            handle.close()


#: Name -> workload; ``repro san --list`` prints these with docstrings.
SCENARIOS: Dict[str, Scenario] = {
    "metrics": _scenario_metrics,
    "blockcache": _scenario_blockcache,
    "historydb": _scenario_historydb,
    "lsm": _scenario_lsm,
    "blockfile": _scenario_blockfile,
    "breaker": _scenario_breaker,
    "executor": _scenario_executor,
    "faultyfile": _scenario_faultyfile,
}


def _race_key(race: RaceReport) -> Tuple[str, str, str, str, str]:
    """Dedup key across rounds: same cell, kind and both sites."""
    return (race.kind, race.cls, race.attr, race.first.site(), race.second.site())


def run_scenarios(
    names: Optional[Sequence[str]] = None,
    workers: int = 8,
    seed: int = 0,
    fuzz_rounds: int = 0,
) -> SanitizerReport:
    """Run scenarios under the sanitizer and merge rounds into one report.

    Round 0 runs with the plain scheduler; rounds ``1..fuzz_rounds`` run
    with a :class:`~repro.sanitizer.fuzz.FuzzSchedule` seeded by
    :func:`~repro.sanitizer.fuzz.derive_seed` so each round explores a
    different interleaving while staying replayable from ``seed`` alone.
    """
    chosen = list(names) if names else list(SCENARIOS)
    unknown = [name for name in chosen if name not in SCENARIOS]
    if unknown:
        raise ConfigError(
            f"unknown scenario(s) {unknown}; available: {sorted(SCENARIOS)}"
        )
    if workers < 2:
        raise ConfigError(f"scenarios need >= 2 workers, got {workers}")

    races: List[RaceReport] = []
    seen: set = set()
    cycles: List[dict] = []
    cycle_keys: set = set()
    events = 0
    started = time.monotonic()
    for round_index in range(fuzz_rounds + 1):
        fuzz = (
            FuzzSchedule(derive_seed(seed, round_index))
            if round_index > 0
            else None
        )
        with runtime.sanitized(seed=seed, fuzz=fuzz) as sanitizer:
            for name in chosen:
                SCENARIOS[name](workers)
            round_report = sanitizer.build_report()
        events += round_report.events_traced
        for race in round_report.races:
            key = _race_key(race)
            if key not in seen:
                seen.add(key)
                races.append(race)
        for cycle in round_report.lock_order_cycles:
            key = tuple(cycle.get("locks", ()))
            if key not in cycle_keys:
                cycle_keys.add(key)
                cycles.append(cycle)

    return SanitizerReport(
        seed=seed,
        workers=workers,
        fuzz_rounds=fuzz_rounds,
        source="scenarios",
        scenarios=chosen,
        races=races,
        lock_order_cycles=cycles,
        events_traced=events,
        duration_seconds=time.monotonic() - started,
    )
