"""Race reports: the sanitizer's machine-readable output.

A :class:`RaceReport` pairs two :class:`AccessWitness`\\ es -- the two
accesses the happens-before engine found concurrent with disjoint
locksets -- each carrying thread, operation, ``file:line`` site and
held-lock names; the *second* (detecting) access additionally carries
its full call stack.  A :class:`SanitizerReport` is the whole-run
document ``repro san`` and the ``REPRO_SAN=1`` test leg write as
``race-report.json``, which ``repro lint --dynamic-witness`` then
cross-checks against the static CONC findings.  Everything round-trips
through JSON so a report survives the process that produced it.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Tuple


@dataclass(frozen=True)
class AccessWitness:
    """One side of a race: who touched what, where, holding which locks."""

    thread: str
    #: ``attr-read`` / ``attr-write`` or a container op like ``dict.setitem``.
    op: str
    path: str
    line: int
    function: str
    locks: Tuple[str, ...]
    #: Rendered ``file:line in function`` frames; only the detecting
    #: access captures a full stack (the earlier access recorded just
    #: its site when it happened).
    stack: Tuple[str, ...] = ()

    def site(self) -> str:
        """``file:line in function`` -- the witness's anchor."""
        return f"{self.path}:{self.line} in {self.function}"

    def render(self) -> str:
        """One human-readable line for this side of the race."""
        held = ", ".join(self.locks) if self.locks else "no locks"
        return f"{self.op} by {self.thread} at {self.site()} holding [{held}]"


@dataclass(frozen=True)
class RaceReport:
    """Two concurrent, lockset-disjoint accesses to one shared cell."""

    #: ``write-write`` / ``read-write`` / ``write-read`` (second op view).
    kind: str
    #: Class name of the shared object (``sanitize_shared`` target).
    cls: str
    attr: str
    first: AccessWitness
    second: AccessWitness

    def cell(self) -> str:
        """The shared cell, as ``Class.attr``."""
        return f"{self.cls}.{self.attr}"

    def render(self) -> str:
        """Multi-line human-readable report (both witnesses + stack)."""
        lines = [
            f"RACE ({self.kind}) on {self.cell()}:",
            f"  earlier: {self.first.render()}",
            f"  racing:  {self.second.render()}",
        ]
        for frame in self.second.stack:
            lines.append(f"    {frame}")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        """A JSON-ready dict (inverse of :meth:`from_json`)."""
        return asdict(self)

    @staticmethod
    def from_json(raw: Dict[str, Any]) -> "RaceReport":
        """Rebuild a race from its :meth:`to_json` dict."""

        def witness(side: Dict[str, Any]) -> AccessWitness:
            return AccessWitness(
                thread=str(side["thread"]),
                op=str(side["op"]),
                path=str(side["path"]),
                line=int(side["line"]),
                function=str(side["function"]),
                locks=tuple(side.get("locks", ())),
                stack=tuple(side.get("stack", ())),
            )

        return RaceReport(
            kind=str(raw["kind"]),
            cls=str(raw["cls"]),
            attr=str(raw["attr"]),
            first=witness(raw["first"]),
            second=witness(raw["second"]),
        )


@dataclass
class SanitizerReport:
    """One sanitizer run, as written to ``race-report.json``.

    ``seed`` and ``fuzz_rounds`` make a failure replayable (the
    ``REPRO_SEED`` contract); ``lock_order_cycles`` is the dynamic
    acquisition-order graph's verdict (the runtime counterpart of the
    static CONC002 rule).
    """

    FORMAT_VERSION = 1

    seed: int = 0
    workers: int = 1
    fuzz_rounds: int = 0
    #: What produced the events: scenario names, or e.g. ``pytest``.
    source: str = "scenarios"
    scenarios: List[str] = field(default_factory=list)
    races: List[RaceReport] = field(default_factory=list)
    #: Each cycle: the lock names around the loop plus one witness per hop.
    lock_order_cycles: List[Dict[str, Any]] = field(default_factory=list)
    events_traced: int = 0
    duration_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.races and not self.lock_order_cycles

    def render(self) -> str:
        """The whole run as human-readable text (races + cycles)."""
        lines = [
            f"repro-san: {len(self.races)} race(s), "
            f"{len(self.lock_order_cycles)} lock-order cycle(s) "
            f"({self.events_traced} events traced, seed={self.seed}, "
            f"workers={self.workers}, fuzz_rounds={self.fuzz_rounds})"
        ]
        for race in self.races:
            lines.append(race.render())
        for cycle in self.lock_order_cycles:
            lines.append(
                "LOCK-ORDER CYCLE: " + " -> ".join(cycle.get("locks", []))
            )
            for hop in cycle.get("witnesses", []):
                lines.append(f"  {hop}")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        """The ``race-report.json`` document as a dict."""
        return {
            "version": self.FORMAT_VERSION,
            "ok": self.ok,
            "seed": self.seed,
            "workers": self.workers,
            "fuzz_rounds": self.fuzz_rounds,
            "source": self.source,
            "scenarios": list(self.scenarios),
            "races": [race.to_json() for race in self.races],
            "lock_order_cycles": list(self.lock_order_cycles),
            "events_traced": self.events_traced,
            "duration_seconds": round(self.duration_seconds, 6),
        }

    def save(self, path: str | Path) -> None:
        """Write the report to ``path`` as indented JSON."""
        Path(path).write_text(
            json.dumps(self.to_json(), indent=2) + "\n", encoding="utf-8"
        )

    @staticmethod
    def from_json(raw: Dict[str, Any]) -> "SanitizerReport":
        """Rebuild a report from its :meth:`to_json` dict."""
        if not isinstance(raw, dict) or raw.get("version") != SanitizerReport.FORMAT_VERSION:
            raise ValueError(
                "race report has unsupported format "
                f"{raw.get('version') if isinstance(raw, dict) else type(raw).__name__!r}"
            )
        report = SanitizerReport(
            seed=int(raw.get("seed", 0)),
            workers=int(raw.get("workers", 1)),
            fuzz_rounds=int(raw.get("fuzz_rounds", 0)),
            source=str(raw.get("source", "scenarios")),
            scenarios=[str(name) for name in raw.get("scenarios", [])],
            races=[RaceReport.from_json(entry) for entry in raw.get("races", [])],
            lock_order_cycles=list(raw.get("lock_order_cycles", [])),
            events_traced=int(raw.get("events_traced", 0)),
            duration_seconds=float(raw.get("duration_seconds", 0.0)),
        )
        return report

    @staticmethod
    def load(path: str | Path) -> "SanitizerReport":
        """Read a report back from ``path`` (inverse of :meth:`save`)."""
        try:
            raw = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"race report {path} is not valid JSON: {exc}") from exc
        return SanitizerReport.from_json(raw)
