"""Seeded schedule fuzzing: perturb interleavings at seam boundaries.

The default thread schedule under the GIL is depressingly repeatable:
most schedule-dependent bugs hide because the same interleaving runs
every time.  A :class:`FuzzSchedule` injects yields and microsecond
sleeps at the sanitizer's instrumentation points (lock acquire, shared
writes, task hand-offs), steering the scheduler somewhere new -- the
same idea as the chaos runner's seeded fault schedules
(:mod:`repro.faults.chaos`), applied to thread timing.

Determinism contract: every decision is drawn from a per-thread
``random.Random`` derived from ``(seed, thread registration order)``,
so a given seed produces the same *decision sequence* per thread.  (The
OS scheduler still has the final word -- the seed makes the
perturbation replayable, not the whole schedule.)  ``repro san --fuzz
N`` runs N rounds with seeds derived from the base seed, and the seed
lands in ``race-report.json`` so a failure replays from the manifest.
"""

from __future__ import annotations

import random
import time
from typing import Dict


def derive_seed(base: int, round_index: int) -> int:
    """The seed for fuzz round ``round_index`` (0 = the base seed)."""
    if round_index == 0:
        return base
    # splitmix-style scramble: consecutive rounds get unrelated streams.
    mixed = (base + round_index * 0x9E3779B97F4A7C15) & (2**64 - 1)
    mixed ^= mixed >> 31
    return mixed


class FuzzSchedule:
    """Per-thread seeded yield/sleep decisions at seam boundaries."""

    def __init__(
        self,
        seed: int,
        p_yield: float = 0.35,
        p_sleep: float = 0.08,
        max_sleep_us: int = 200,
    ) -> None:
        self.seed = seed
        self.p_yield = p_yield
        self.p_sleep = p_sleep
        self.max_sleep_us = max_sleep_us
        self._rngs: Dict[int, random.Random] = {}

    def _rng(self, tid: int) -> random.Random:
        rng = self._rngs.get(tid)
        if rng is None:
            # dict insert is atomic under the GIL; last writer wins is
            # fine because both compute the same stream for one tid.
            rng = random.Random((self.seed << 20) ^ tid)
            self._rngs[tid] = rng
        return rng

    def maybe_yield(self, tid: int) -> None:
        """Maybe cede the GIL (yield) or stall briefly (sleep)."""
        rng = self._rng(tid)
        draw = rng.random()
        if draw < self.p_sleep:
            time.sleep(rng.uniform(0.0, self.max_sleep_us) / 1_000_000.0)
        elif draw < self.p_sleep + self.p_yield:
            time.sleep(0)
