"""Traced synchronization primitives and the sanitizer's lock factory.

:class:`TracedLock` / :class:`TracedRLock` wrap the real ``threading``
primitives and report acquire/release to the *active* sanitizer session
-- looked up dynamically per event, so a lock constructed while no
session is running still participates in a later one, and a lock that
outlives a session goes quiet again.  Conditions need no dedicated
wrapper: ``threading.Condition`` drives its lock through plain
``acquire``/``release``, so a condition built over a traced lock emits
the release->reacquire events of ``wait()`` for free.

:class:`SanitizerFactory` plugs all of this into the
:mod:`repro.common.locks` seam, and implements the executor fork/join
protocol: ``wrap_task`` snapshots the submitter's clock into a
:class:`_TracedTask` (fork edge), the worker joins that snapshot before
running and records its finish clock after, and ``join_task`` merges
the finish clock into the collector (join edge).

One bug is promoted from "detect" to "refuse": a thread re-acquiring a
plain (non-reentrant) ``TracedLock`` it already holds would deadlock
the process with certainty, so the wrapper raises
:class:`~repro.common.errors.SanitizerError` instead of hanging the
test run.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from repro.common.errors import SanitizerError
from repro.common.locks import ConditionLike, LockLike
from repro.sanitizer import runtime
from repro.sanitizer.vectorclock import Clock


class TracedLock:
    """A ``threading.Lock`` that reports to the active sanitizer."""

    def __init__(self, name: str = "") -> None:
        self._inner = threading.Lock()
        self.name = name or f"lock@{id(self):#x}"
        #: ident of the holding thread (for self-deadlock detection).
        self._owner: Optional[int] = None

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire, emitting the happens-before/lockset events."""
        sanitizer = runtime.active()
        if sanitizer is not None:
            if blocking and self._owner == threading.get_ident():
                raise SanitizerError(
                    f"thread {threading.current_thread().name!r} re-acquired "
                    f"non-reentrant lock {self.name!r} it already holds "
                    "(certain deadlock)"
                )
            sanitizer.fuzz_point("acquire")
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()  # repro-lint: disable=CONC001
            if sanitizer is not None:
                sanitizer.on_acquire(self, self.name)
        return acquired

    def release(self) -> None:
        """Release, publishing this thread's clock to the lock first."""
        sanitizer = runtime.active()
        if sanitizer is not None:
            sanitizer.on_release(self, self.name)
        self._owner = None  # repro-lint: disable=CONC001
        self._inner.release()

    def locked(self) -> bool:
        """Whether the lock is currently held (by anyone)."""
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TracedLock {self.name!r} locked={self._inner.locked()}>"


class TracedRLock:
    """A ``threading.RLock`` reporting only outermost acquire/release.

    Re-entrant depth is sanitizer bookkeeping, not a happens-before
    event: only the first acquire joins the lock's clock and only the
    final release publishes to it, matching the real mutual-exclusion
    boundary.
    """

    def __init__(self, name: str = "") -> None:
        self._inner = threading.RLock()
        self.name = name or f"rlock@{id(self):#x}"
        self._owner: Optional[int] = None
        self._depth = 0  # repro-lint: disable=CONC001

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire; only the outermost acquire is a sanitizer event."""
        sanitizer = runtime.active()
        if sanitizer is not None and self._owner != threading.get_ident():
            sanitizer.fuzz_point("acquire")
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            ident = threading.get_ident()
            if self._owner == ident:
                self._depth += 1  # repro-lint: disable=CONC001
            else:
                self._owner = ident  # repro-lint: disable=CONC001
                self._depth = 1  # repro-lint: disable=CONC001
                if sanitizer is not None:
                    sanitizer.on_acquire(self, self.name)
        return acquired

    def release(self) -> None:
        """Release; only the final release is a sanitizer event."""
        if self._owner == threading.get_ident() and self._depth == 1:
            sanitizer = runtime.active()
            if sanitizer is not None:
                sanitizer.on_release(self, self.name)
            self._owner = None  # repro-lint: disable=CONC001
            self._depth = 0  # repro-lint: disable=CONC001
        elif self._owner == threading.get_ident():
            self._depth -= 1  # repro-lint: disable=CONC001
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TracedRLock {self.name!r} depth={self._depth}>"


class TracedCondition(threading.Condition):
    """A condition variable over a traced lock.

    All happens-before events come from the underlying traced lock:
    ``wait()`` releases and re-acquires it through the normal
    ``acquire``/``release`` surface, which is exactly the HB edge a
    waiter/notifier pair needs.  The subclass exists to carry the name.
    """

    def __init__(self, lock: Optional[LockLike] = None, name: str = "") -> None:
        inner = lock if lock is not None else TracedLock(name or "condition")
        super().__init__(inner)  # type: ignore[arg-type]
        self.name = name or getattr(inner, "name", "condition")


class _TracedTask:
    """A unit of work crossing threads, carrying its fork/finish clocks."""

    def __init__(self, fn: Callable[..., Any], sanitizer_id: int, fork: Clock) -> None:
        self._fn = fn
        self._sanitizer_id = sanitizer_id
        self._fork = fork
        self._finish: Optional[Clock] = None

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        sanitizer = runtime.active()
        traced = sanitizer is not None and id(sanitizer) == self._sanitizer_id
        if traced and sanitizer is not None:
            sanitizer.join_clock(self._fork)
            sanitizer.fuzz_point("task-start")
        try:
            return self._fn(*args, **kwargs)
        finally:
            if traced and sanitizer is not None:
                self._finish = sanitizer.finish_clock()

    def observe(self) -> None:
        """Merge this task's finish clock into the current thread."""
        sanitizer = runtime.active()
        if (
            sanitizer is not None
            and id(sanitizer) == self._sanitizer_id
            and self._finish is not None
        ):
            sanitizer.join_clock(self._finish)


class SanitizerFactory:
    """The :class:`repro.common.locks.ConcurrencyFactory` that traces."""

    def make_lock(self, name: str) -> LockLike:
        """A :class:`TracedLock` for construction site ``name``."""
        return TracedLock(name)

    def make_rlock(self, name: str) -> LockLike:
        """A :class:`TracedRLock` for construction site ``name``."""
        return TracedRLock(name)

    def make_condition(
        self, lock: Optional[LockLike], name: str
    ) -> ConditionLike:
        """A :class:`TracedCondition` (over ``lock`` when given)."""
        return TracedCondition(lock, name)

    def wrap_task(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        """Snapshot the submitter's clock into the task (fork edge)."""
        sanitizer = runtime.active()
        if sanitizer is None:
            return fn
        return _TracedTask(fn, id(sanitizer), sanitizer.fork_clock())

    def join_task(self, task: Callable[..., Any]) -> None:
        """Merge a finished task's clock into this thread (join edge)."""
        if isinstance(task, _TracedTask):
            task.observe()
