"""Vector-clock primitives for the happens-before engine.

Clocks are plain ``dict[int, int]`` -- thread id to logical timestamp --
mutated in place on the hot path.  The FastTrack observation this engine
borrows: an access can be summarized by its *epoch* ``(tid, stamp)``
(the accessing thread's own component at access time), and the access
happens-before thread ``T``'s current point iff ``T``'s clock covers
that epoch.  Full clocks only live on threads and locks; shadow cells
store epochs, keeping the per-access cost O(1) instead of O(threads).

Thread ids are allocated from one process-global counter, never reused,
so stamps from a previous sanitizer session can never be confused with
a live thread's (a fresh session's cells start empty; stale clock
entries on long-lived locks are keyed by tids no new access carries).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator

Clock = Dict[int, int]

#: Process-global thread-id source (see module docstring on reuse).
_TIDS: Iterator[int] = itertools.count(1)


def fresh_tid() -> int:
    """A never-before-used thread id."""
    return next(_TIDS)


def new_clock(tid: int) -> Clock:
    """A newborn thread's clock: one tick on its own component."""
    return {tid: 1}


def join_into(target: Clock, source: Clock) -> None:
    """Pointwise max, mutating ``target`` (the happens-before join)."""
    for tid, stamp in source.items():
        if target.get(tid, 0) < stamp:
            target[tid] = stamp


def advance(clock: Clock, tid: int) -> None:
    """Tick ``clock``'s own component (after a release or a fork)."""
    clock[tid] = clock.get(tid, 0) + 1


def covers(clock: Clock, tid: int, stamp: int) -> bool:
    """Whether the epoch ``(tid, stamp)`` happens-before ``clock``."""
    return clock.get(tid, 0) >= stamp
