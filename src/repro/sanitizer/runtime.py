"""The sanitizer runtime: happens-before + lockset race detection.

One :class:`Sanitizer` instance is a detection *session*.  It keeps

* a vector clock per participating thread (lazily registered on first
  event, inheriting the forking thread's clock via the ``Thread.start``
  patch or the executor's :func:`repro.common.locks.wrap_task` seam);
* a clock per traced lock, joined on acquire and updated on release --
  the classic release->acquire happens-before edge;
* per-thread *locksets* (which traced locks the thread holds right now);
* a shadow cell per ``(object, attribute)`` recording the last write
  epoch and the last read epoch per thread.

An access pair is reported as a race only when the vector clocks say
*concurrent* (FastTrack epoch check) **and** the locksets are disjoint
(Eraser check).  Pure happens-before detection would flag benign
lock-protected accesses whenever the schedule didn't happen to order
them; pure lockset detection would flag fork/join hand-offs that are
perfectly ordered without locks.  The intersection keeps only pairs
that no lock protects *and* no ordering separates -- which is also what
makes the mutation-acceptance tests deterministic: a missing-lock bug
is detected from the HB *edges* of the schedule, not from physically
colliding timing.

Module-level lifecycle: :func:`enable` / :func:`disable` for the
whole-process mode (``REPRO_SAN=1`` test runs), :func:`sanitized` for a
scoped session (unit tests, ``repro san`` scenarios).  Installing a
session patches ``threading.Thread.start``/``join`` (fork/join edges),
instruments the ``@sanitize_shared`` classes, and installs the traced
lock factory into :mod:`repro.common.locks`.  The factory stays
installed after :func:`disable` -- traced locks consult the *active*
session dynamically and cost one global read when none is -- so locks
constructed between sessions still participate in the next one.
"""

from __future__ import annotations

import os
import sys
import threading
import traceback
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.common import locks as _seam
from repro.common.errors import SanitizerError
from repro.sanitizer.fuzz import FuzzSchedule
from repro.sanitizer.report import AccessWitness, RaceReport, SanitizerReport
from repro.sanitizer.vectorclock import (
    Clock,
    advance,
    covers,
    fresh_tid,
    join_into,
    new_clock,
)

#: Frames from inside this package are never a race's call site.
_PKG_DIR = os.path.dirname(os.path.abspath(__file__))

#: Attribute stashed on Thread objects by the patched ``start``:
#: ``(id(sanitizer), parent clock snapshot)``.
_FORK_ATTR = "_repro_san_fork"
#: Stashed by the run wrapper at thread exit: ``(id(sanitizer), clock)``.
_FINISH_ATTR = "_repro_san_finish"


def _rel(path: str) -> str:
    """Repo-relative path when possible (stable across machines)."""
    try:
        rel = os.path.relpath(path, os.getcwd())
    except ValueError:  # pragma: no cover - different drive on win32
        return path
    return path if rel.startswith("..") else rel


def _call_site() -> Tuple[str, int, str]:
    """The innermost frame *outside* the sanitizer package."""
    frame = sys._getframe(1)
    while frame is not None:
        code = frame.f_code
        if not code.co_filename.startswith(_PKG_DIR):
            return _rel(code.co_filename), frame.f_lineno, code.co_name
        frame = frame.f_back
    return "<unknown>", 0, "<unknown>"  # pragma: no cover


def _capture_stack(limit: int = 12) -> Tuple[str, ...]:
    """Rendered stack of the current thread, sanitizer frames removed."""
    frames = []
    for entry in traceback.extract_stack():
        if entry.filename.startswith(_PKG_DIR):
            continue
        frames.append(f"{_rel(entry.filename)}:{entry.lineno} in {entry.name}")
    return tuple(frames[-limit:])


@dataclass
class _Access:
    """One recorded access, summarized by its FastTrack epoch."""

    tid: int
    stamp: int
    is_write: bool
    op: str
    lockset: FrozenSet[int]
    locks: Tuple[str, ...]
    thread: str
    path: str
    line: int
    function: str

    def witness(self, stack: Tuple[str, ...] = ()) -> AccessWitness:
        return AccessWitness(
            thread=self.thread,
            op=self.op,
            path=self.path,
            line=self.line,
            function=self.function,
            locks=self.locks,
            stack=stack,
        )


@dataclass
class _ShadowCell:
    """Shadow state for one ``(object, attribute)`` pair."""

    cls: str
    owner_ref: Optional["weakref.ref[Any]"]
    write: Optional[_Access] = None
    reads: Dict[int, _Access] = field(default_factory=dict)

    def owns(self, owner: object) -> bool:
        """Guards against ``id()`` reuse after the original owner died."""
        if self.owner_ref is None:
            return True
        return self.owner_ref() is owner


class _ThreadState(threading.local):
    """Per-thread sanitizer state (one instance per Sanitizer).

    ``threading.local`` subclass: each thread touching the same
    ``_ThreadState`` object sees its own attribute namespace, lazily
    initialized by ``__init__`` on first access from that thread.
    """

    def __init__(self) -> None:
        self.tid: int = 0  # 0 = not registered yet
        self.clock: Clock = {}
        #: Stack of currently held traced locks: ``(id(lock), name)``.
        self.held: List[Tuple[int, str]] = []
        #: Re-entrancy guard: sanitizer internals never record events.
        self.suppress: bool = False


class Sanitizer:
    """One race-detection session.  See the module docstring."""

    def __init__(self, seed: int = 0, fuzz: Optional[FuzzSchedule] = None) -> None:
        self.seed = seed
        self.fuzz = fuzz
        self._local = _ThreadState()
        #: Guards cells / races / lock bookkeeping.  A leaf lock: the
        #: sanitizer never calls out while holding it.
        self._mu = threading.Lock()
        self._cells: Dict[Tuple[int, str], _ShadowCell] = {}
        self._races: List[RaceReport] = []
        self._race_keys: Set[Tuple[str, str, str, str, str]] = set()
        self._lock_clocks: Dict[int, Clock] = {}
        #: Acquisition-order edges: (held name, acquired name) -> witness.
        self._lock_edges: Dict[Tuple[str, str], str] = {}
        self._events = 0

    # -- thread registration and fork/join edges ------------------------

    def state(self) -> _ThreadState:
        """This thread's state, registering it on first touch.

        Registration inherits the forking thread's clock snapshot if the
        ``Thread.start`` patch stashed one for this session.
        """
        st = self._local
        if st.tid == 0:
            st.tid = fresh_tid()
            st.clock = new_clock(st.tid)
            fork = getattr(threading.current_thread(), _FORK_ATTR, None)
            if fork is not None and fork[0] == id(self):
                join_into(st.clock, fork[1])
        return st

    def fork_clock(self) -> Clock:
        """Snapshot the current thread's clock and tick it (fork edge)."""
        st = self.state()
        snapshot = dict(st.clock)
        advance(st.clock, st.tid)
        return snapshot

    def join_clock(self, finished: Clock) -> None:
        """Merge a finished unit of work's clock (join edge)."""
        st = self.state()
        join_into(st.clock, finished)

    def finish_clock(self) -> Clock:
        """Snapshot this thread's clock for a joiner, then tick it.

        The tick keeps the thread's *later* work concurrent with
        whatever observes the snapshot -- without it, everything the
        worker does after the hand-off would look ordered too.
        """
        st = self.state()
        snapshot = dict(st.clock)
        advance(st.clock, st.tid)
        return snapshot

    # -- lock events (called by the traced wrappers) --------------------

    def on_acquire(self, lock: object, name: str) -> None:
        """After the inner lock is held: HB join + lockset + order graph."""
        st = self.state()
        if st.suppress:
            return
        st.suppress = True
        try:
            with self._mu:
                self._events += 1
                lock_clock = self._lock_clocks.get(id(lock))
                if lock_clock:
                    join_into(st.clock, lock_clock)
                for _, held_name in st.held:
                    if held_name != name:
                        edge = (held_name, name)
                        if edge not in self._lock_edges:
                            path, line, function = _call_site()
                            self._lock_edges[edge] = (
                                f"{held_name} -> {name} at {path}:{line} in {function}"
                            )
            st.held.append((id(lock), name))
        finally:
            st.suppress = False

    def on_release(self, lock: object, name: str) -> None:
        """Before the inner lock is released: publish the thread's clock."""
        st = self.state()
        if st.suppress:
            return
        st.suppress = True
        try:
            with self._mu:
                self._events += 1
                lock_clock = self._lock_clocks.setdefault(id(lock), {})
                join_into(lock_clock, st.clock)
            advance(st.clock, st.tid)
            for index in range(len(st.held) - 1, -1, -1):
                if st.held[index][0] == id(lock):
                    del st.held[index]
                    break
        finally:
            st.suppress = False

    def fuzz_point(self, kind: str) -> None:
        """A schedule perturbation point (lock/seam boundary)."""
        if self.fuzz is None:
            return
        st = self.state()
        if st.suppress:
            return
        self.fuzz.maybe_yield(st.tid)

    # -- shared-state events (called by the instrumented classes) -------

    def record(
        self,
        owner: object,
        cls_name: str,
        attr: str,
        op: str,
        is_write: bool,
        racy_ok: FrozenSet[str] = frozenset(),
    ) -> None:
        """One access to a tracked attribute (or its container)."""
        st = self.state()
        if st.suppress:
            return
        st.suppress = True
        try:
            path, line, function = _call_site()
            if function in racy_ok and not is_write:
                return
            access = _Access(
                tid=st.tid,
                stamp=st.clock[st.tid],
                is_write=is_write,
                op=op,
                lockset=frozenset(lid for lid, _ in st.held),
                locks=tuple(lname for _, lname in st.held),
                thread=threading.current_thread().name,
                path=path,
                line=line,
                function=function,
            )
            with self._mu:
                self._events += 1
                self._record_locked(owner, cls_name, attr, access, st)
        finally:
            st.suppress = False
        if self.fuzz is not None and is_write:
            self.fuzz_point("write")

    def _record_locked(
        self,
        owner: object,
        cls_name: str,
        attr: str,
        access: _Access,
        st: _ThreadState,
    ) -> None:
        key = (id(owner), attr)
        cell = self._cells.get(key)
        if cell is not None and not cell.owns(owner):
            cell = None  # id() was reused by a new object
        if cell is None:
            try:
                ref: Optional["weakref.ref[Any]"] = weakref.ref(owner)
            except TypeError:  # pragma: no cover - __slots__ without __weakref__
                ref = None
            cell = _ShadowCell(cls=cls_name, owner_ref=ref)
            self._cells[key] = cell
        if access.is_write:
            priors = list(cell.reads.values())
            if cell.write is not None:
                priors.append(cell.write)
            for prior in priors:
                self._check(cell, attr, prior, access, st)
            cell.write = access
            cell.reads.clear()
        else:
            if cell.write is not None:
                self._check(cell, attr, cell.write, access, st)
            cell.reads[access.tid] = access

    def _check(
        self,
        cell: _ShadowCell,
        attr: str,
        prior: _Access,
        current: _Access,
        st: _ThreadState,
    ) -> None:
        if prior.tid == current.tid:
            return
        if covers(st.clock, prior.tid, prior.stamp):
            return  # ordered: prior happens-before this access
        if prior.lockset & current.lockset:
            return  # a common lock protects the pair
        if prior.is_write and current.is_write:
            kind = "write-write"
        elif prior.is_write:
            kind = "write-read"
        else:
            kind = "read-write"
        dedup = (
            cell.cls,
            attr,
            kind,
            f"{prior.path}:{prior.line}",
            f"{current.path}:{current.line}",
        )
        if dedup in self._race_keys:
            return
        self._race_keys.add(dedup)
        self._races.append(
            RaceReport(
                kind=kind,
                cls=cell.cls,
                attr=attr,
                first=prior.witness(),
                second=current.witness(stack=_capture_stack()),
            )
        )

    # -- reporting ------------------------------------------------------

    @property
    def races(self) -> List[RaceReport]:
        with self._mu:
            return list(self._races)

    @property
    def events_traced(self) -> int:
        return self._events

    def lock_order_cycles(self) -> List[Dict[str, Any]]:
        """Cycles in the dynamic acquisition-order graph.

        For every edge ``a -> b``, look for a path ``b ~> a`` (BFS); a
        hit closes a cycle.  Cycles are normalized by rotating the
        smallest lock name first so each distinct loop reports once.
        """
        with self._mu:
            edges = dict(self._lock_edges)
        graph: Dict[str, List[str]] = {}
        for src, dst in edges:
            graph.setdefault(src, []).append(dst)
        seen: Set[Tuple[str, ...]] = set()
        cycles: List[Dict[str, Any]] = []
        for src, dst in edges:
            path = self._shortest_path(graph, dst, src)
            if path is None:
                continue
            loop = [src] + path  # src -> dst -> ... -> src
            rotation = min(range(len(loop) - 1), key=lambda i: loop[i])
            normalized = tuple(
                loop[(rotation + i) % (len(loop) - 1)] for i in range(len(loop) - 1)
            )
            if normalized in seen:
                continue
            seen.add(normalized)
            hops = list(normalized) + [normalized[0]]
            witnesses = [
                edges.get((hops[i], hops[i + 1]), f"{hops[i]} -> {hops[i + 1]}")
                for i in range(len(hops) - 1)
            ]
            cycles.append({"locks": hops, "witnesses": witnesses})
        return cycles

    @staticmethod
    def _shortest_path(
        graph: Dict[str, List[str]], start: str, goal: str
    ) -> Optional[List[str]]:
        frontier: List[List[str]] = [[start]]
        visited = {start}
        while frontier:
            next_frontier: List[List[str]] = []
            for path in frontier:
                if path[-1] == goal:
                    return path
                for neighbor in graph.get(path[-1], []):
                    if neighbor not in visited:
                        visited.add(neighbor)
                        next_frontier.append(path + [neighbor])
            frontier = next_frontier
        return None

    def build_report(
        self,
        source: str = "scenarios",
        scenarios: Optional[List[str]] = None,
        workers: int = 1,
        fuzz_rounds: int = 0,
        duration_seconds: float = 0.0,
    ) -> SanitizerReport:
        """Snapshot this session's races and cycles as a report."""
        return SanitizerReport(
            seed=self.seed,
            workers=workers,
            fuzz_rounds=fuzz_rounds,
            source=source,
            scenarios=list(scenarios or []),
            races=self.races,
            lock_order_cycles=self.lock_order_cycles(),
            events_traced=self.events_traced,
            duration_seconds=duration_seconds,
        )


# -- module lifecycle: the active session and the process patches -------

_ACTIVE: Optional[Sanitizer] = None
_PATCH_DEPTH = 0
_ORIG_START: Any = None
_ORIG_JOIN: Any = None


def active() -> Optional[Sanitizer]:
    """The sanitizer session currently collecting events, if any."""
    return _ACTIVE


def _patched_start(thread: threading.Thread, *args: Any, **kwargs: Any) -> None:
    sanitizer = _ACTIVE
    if sanitizer is not None:
        setattr(thread, _FORK_ATTR, (id(sanitizer), sanitizer.fork_clock()))
        original_run = thread.run

        def run_with_finish_clock() -> None:
            try:
                original_run()
            finally:
                finishing = _ACTIVE
                if finishing is not None:
                    fork = getattr(thread, _FORK_ATTR, None)
                    if fork is not None and fork[0] == id(finishing):
                        setattr(
                            thread,
                            _FINISH_ATTR,
                            (id(finishing), finishing.finish_clock()),
                        )

        thread.run = run_with_finish_clock  # type: ignore[method-assign]
    _ORIG_START(thread, *args, **kwargs)


def _patched_join(
    thread: threading.Thread, timeout: Optional[float] = None
) -> None:
    _ORIG_JOIN(thread, timeout)
    sanitizer = _ACTIVE
    if sanitizer is not None and not thread.is_alive():
        finish = getattr(thread, _FINISH_ATTR, None)
        if finish is not None and finish[0] == id(sanitizer):
            sanitizer.join_clock(finish[1])


def _install_patches() -> None:
    global _PATCH_DEPTH, _ORIG_START, _ORIG_JOIN
    from repro.sanitizer.shared import instrument_all

    if _PATCH_DEPTH == 0:
        from repro.sanitizer.locks import SanitizerFactory

        _ORIG_START = threading.Thread.start
        _ORIG_JOIN = threading.Thread.join
        threading.Thread.start = _patched_start  # type: ignore[method-assign]
        threading.Thread.join = _patched_join  # type: ignore[method-assign]
        # The traced-lock factory stays installed after the session ends
        # (see module docstring): wrappers are inert without a session.
        if not isinstance(_seam.current_factory(), SanitizerFactory):
            _seam.install_factory(SanitizerFactory())
    # Every (re-)enable, not just depth 0: @sanitize_shared classes whose
    # modules were imported since the outer session started must be
    # caught up before this session records anything.
    instrument_all()
    _PATCH_DEPTH += 1


def _uninstall_patches() -> None:
    global _PATCH_DEPTH
    _PATCH_DEPTH -= 1
    if _PATCH_DEPTH == 0:
        from repro.sanitizer.shared import uninstrument_all

        threading.Thread.start = _ORIG_START  # type: ignore[method-assign]
        threading.Thread.join = _ORIG_JOIN  # type: ignore[method-assign]
        uninstrument_all()


def enable(seed: int = 0, fuzz: Optional[FuzzSchedule] = None) -> Sanitizer:
    """Start a process-wide session (``REPRO_SAN=1`` mode).

    Raises :class:`SanitizerError` if one is already active -- use
    :func:`sanitized` for scoped/nested sessions.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise SanitizerError("a sanitizer session is already active")
    _install_patches()
    _ACTIVE = Sanitizer(seed=seed, fuzz=fuzz)
    return _ACTIVE


def disable() -> Sanitizer:
    """End the process-wide session; returns it for report building."""
    global _ACTIVE
    if _ACTIVE is None:
        raise SanitizerError("no sanitizer session is active")
    sanitizer = _ACTIVE
    _ACTIVE = None
    _uninstall_patches()
    return sanitizer


@contextmanager
def sanitized(
    seed: int = 0, fuzz: Optional[FuzzSchedule] = None
) -> Iterator[Sanitizer]:
    """A scoped session; nests inside (and shadows) any active one."""
    global _ACTIVE
    previous = _ACTIVE
    _install_patches()
    _ACTIVE = Sanitizer(seed=seed, fuzz=fuzz)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
        _uninstall_patches()
