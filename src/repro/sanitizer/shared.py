"""Opt-in shared-state instrumentation: ``@sanitize_shared``.

Classes whose instances are shared across threads declare their hot
attributes::

    @sanitize_shared("_entries", "_inflight")
    class BlockCache: ...

Decoration only *registers* the class.  When a sanitizer session is
installed (:func:`instrument_all`), each registered class gets its
``__setattr__`` / ``__getattribute__`` swapped for instrumented
versions that report attribute rebinds and reads of the tracked names
to the active session; :func:`uninstrument_all` restores the originals,
so an idle process pays nothing.

Attribute-level events alone miss the most common sharing pattern in
this codebase: the attribute is a dict that is *mutated in place*
(``self._counters[name] += 1`` reads ``_counters`` but never rebinds
it).  So tracked dict/list values are transparently replaced with
:class:`TracedDict` / :class:`TracedList` proxies whose operations feed
the same shadow cell as the attribute itself, with read/write polarity
per operation -- an unlocked ``popitem`` and a locked ``__setitem__``
on the same dict become a checkable access pair.

``racy_ok`` names methods whose *reads* are deliberately unsynchronized
(diagnostic ``__repr__``-style paths); their read events are dropped so
the unmutated tree stays race-clean without weakening write checking.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
)

import weakref

from repro.sanitizer import runtime

ClassT = TypeVar("ClassT", bound=type)


@dataclass(frozen=True)
class SharedSpec:
    """What to watch on one registered class."""

    tracked: FrozenSet[str]
    racy_ok: FrozenSet[str]


#: Registered classes; instrumentation is installed/removed for all of
#: them together by the runtime lifecycle.
_REGISTRY: Dict[type, SharedSpec] = {}

#: Original ``(__setattr__, __getattribute__)`` per instrumented class;
#: ``None`` marks "was not defined in the class dict" (inherited).
_SAVED: Dict[type, Tuple[Optional[Any], Optional[Any]]] = {}

#: Whether instrumentation is currently installed.  Checked at
#: decoration time: a class whose module is first imported *while* a
#: session is live (e.g. a test importing ``LSMStore`` under the
#: ``REPRO_SAN=1`` leg) must be instrumented on the spot -- the
#: session's ``instrument_all`` already ran and will not run again.
_INSTALLED = False


def sanitize_shared(
    *tracked: str, racy_ok: Iterable[str] = ()
) -> Callable[[ClassT], ClassT]:
    """Class decorator: register ``tracked`` attributes for shadowing."""

    def decorate(cls: ClassT) -> ClassT:
        spec = SharedSpec(frozenset(tracked), frozenset(racy_ok))
        _REGISTRY[cls] = spec
        if _INSTALLED:
            _instrument_class(cls, spec)
        return cls

    return decorate


def registry() -> Dict[type, SharedSpec]:
    """The registered classes (read-only view for tooling/tests)."""
    return dict(_REGISTRY)


# -- traced containers --------------------------------------------------


class _ContainerMeta:
    """Shared-cell identity for a traced container (not a base class)."""

    __slots__ = ("owner_ref", "cls", "attr", "racy_ok")

    def __init__(self, owner: object, cls: str, attr: str, racy_ok: FrozenSet[str]) -> None:
        self.owner_ref = weakref.ref(owner)
        self.cls = cls
        self.attr = attr
        self.racy_ok = racy_ok

    def emit(self, op: str, is_write: bool) -> None:
        sanitizer = runtime.active()
        if sanitizer is None:
            return
        owner = self.owner_ref()
        if owner is None:
            return
        sanitizer.record(owner, self.cls, self.attr, op, is_write, self.racy_ok)


class TracedDict(OrderedDict):  # type: ignore[type-arg]
    """An ``OrderedDict`` whose operations feed the owner's shadow cell.

    Subclassing ``OrderedDict`` (not ``dict``) lets one proxy stand in
    for both: insertion order and ``move_to_end``/``popitem(last=...)``
    keep working for LRU-style users.
    """

    _san: Optional[_ContainerMeta] = None

    @staticmethod
    def wrap(
        value: Any, owner: object, cls: str, attr: str, racy_ok: FrozenSet[str]
    ) -> "TracedDict":
        traced = TracedDict(value)
        traced._san = _ContainerMeta(owner, cls, attr, racy_ok)
        return traced

    def _emit(self, op: str, is_write: bool) -> None:
        meta = self._san
        if meta is not None:
            meta.emit(op, is_write)

    # mutations ---------------------------------------------------------

    def __setitem__(self, key: Any, value: Any) -> None:
        self._emit("dict.setitem", True)
        super().__setitem__(key, value)

    def __delitem__(self, key: Any) -> None:
        self._emit("dict.delitem", True)
        super().__delitem__(key)

    def pop(self, *args: Any) -> Any:
        self._emit("dict.pop", True)
        return super().pop(*args)

    def popitem(self, last: bool = True) -> Tuple[Any, Any]:
        self._emit("dict.popitem", True)
        return super().popitem(last)

    def clear(self) -> None:
        self._emit("dict.clear", True)
        super().clear()

    def update(self, *args: Any, **kwargs: Any) -> None:
        self._emit("dict.update", True)
        super().update(*args, **kwargs)

    def setdefault(self, key: Any, default: Any = None) -> Any:
        self._emit("dict.setdefault", True)
        return super().setdefault(key, default)

    def move_to_end(self, key: Any, last: bool = True) -> None:
        self._emit("dict.move_to_end", True)
        super().move_to_end(key, last)

    # reads -------------------------------------------------------------

    def __getitem__(self, key: Any) -> Any:
        self._emit("dict.getitem", False)
        return super().__getitem__(key)

    def get(self, key: Any, default: Any = None) -> Any:
        self._emit("dict.get", False)
        return super().get(key, default)

    def __contains__(self, key: Any) -> bool:
        self._emit("dict.contains", False)
        return super().__contains__(key)

    def __len__(self) -> int:
        self._emit("dict.len", False)
        return super().__len__()

    def __iter__(self) -> Iterator[Any]:
        self._emit("dict.iter", False)
        return super().__iter__()

    def keys(self) -> Any:
        self._emit("dict.keys", False)
        return super().keys()

    def values(self) -> Any:
        self._emit("dict.values", False)
        return super().values()

    def items(self) -> Any:
        self._emit("dict.items", False)
        return super().items()


class TracedList(list):  # type: ignore[type-arg]
    """A ``list`` whose operations feed the owner's shadow cell."""

    _san: Optional[_ContainerMeta] = None

    @staticmethod
    def wrap(
        value: Any, owner: object, cls: str, attr: str, racy_ok: FrozenSet[str]
    ) -> "TracedList":
        traced = TracedList(value)
        traced._san = _ContainerMeta(owner, cls, attr, racy_ok)
        return traced

    def _emit(self, op: str, is_write: bool) -> None:
        meta = self._san
        if meta is not None:
            meta.emit(op, is_write)

    # mutations ---------------------------------------------------------

    def append(self, item: Any) -> None:
        self._emit("list.append", True)
        super().append(item)

    def extend(self, items: Iterable[Any]) -> None:
        self._emit("list.extend", True)
        super().extend(items)

    def insert(self, index: int, item: Any) -> None:
        self._emit("list.insert", True)
        super().insert(index, item)

    def pop(self, index: int = -1) -> Any:
        self._emit("list.pop", True)
        return super().pop(index)

    def remove(self, item: Any) -> None:
        self._emit("list.remove", True)
        super().remove(item)

    def clear(self) -> None:
        self._emit("list.clear", True)
        super().clear()

    def __setitem__(self, index: Any, value: Any) -> None:
        self._emit("list.setitem", True)
        super().__setitem__(index, value)

    def __delitem__(self, index: Any) -> None:
        self._emit("list.delitem", True)
        super().__delitem__(index)

    # reads -------------------------------------------------------------

    def __getitem__(self, index: Any) -> Any:
        self._emit("list.getitem", False)
        return super().__getitem__(index)

    def __len__(self) -> int:
        self._emit("list.len", False)
        return super().__len__()

    def __iter__(self) -> Iterator[Any]:
        self._emit("list.iter", False)
        return super().__iter__()

    def __contains__(self, item: Any) -> bool:
        self._emit("list.contains", False)
        return super().__contains__(item)


def _wrap_value(
    value: Any, owner: object, cls: str, attr: str, racy_ok: FrozenSet[str]
) -> Any:
    """Replace plain dict/list values with traced proxies.

    Only exact builtin types are wrapped -- a user subclass carries
    behaviour a proxy copy would drop.  ``OrderedDict`` maps to
    :class:`TracedDict`, which preserves its ordering contract.
    """
    if type(value) is dict or type(value) is OrderedDict:
        return TracedDict.wrap(value, owner, cls, attr, racy_ok)
    if type(value) is list:
        return TracedList.wrap(value, owner, cls, attr, racy_ok)
    return value


# -- class instrumentation ---------------------------------------------


def _make_setattr(
    spec: SharedSpec, original: Callable[[Any, str, Any], None]
) -> Callable[[Any, str, Any], None]:
    tracked = spec.tracked
    racy_ok = spec.racy_ok

    def instrumented_setattr(self: Any, name: str, value: Any) -> None:
        if name in tracked:
            sanitizer = runtime.active()
            if sanitizer is not None:
                value = _wrap_value(
                    value, self, type(self).__name__, name, racy_ok
                )
                sanitizer.record(
                    self, type(self).__name__, name, "attr-write", True, racy_ok
                )
        original(self, name, value)

    return instrumented_setattr


def _make_getattribute(
    spec: SharedSpec, original: Callable[[Any, str], Any]
) -> Callable[[Any, str], Any]:
    tracked = spec.tracked
    racy_ok = spec.racy_ok

    def instrumented_getattribute(self: Any, name: str) -> Any:
        value = original(self, name)
        if name in tracked:
            sanitizer = runtime.active()
            if sanitizer is not None:
                # Objects built before the session started still hold
                # plain containers; adopt them into a traced proxy on
                # first sight (object.__setattr__ avoids a write event
                # for what is sanitizer bookkeeping, not program state).
                if type(value) in (dict, OrderedDict, list):
                    value = _wrap_value(
                        value, self, type(self).__name__, name, racy_ok
                    )
                    object.__setattr__(self, name, value)
                sanitizer.record(
                    self, type(self).__name__, name, "attr-read", False, racy_ok
                )
        return value

    return instrumented_getattribute


def _instrument_class(cls: type, spec: SharedSpec) -> None:
    """Swap in instrumented methods on one class (idempotent)."""
    if cls in _SAVED:
        return
    _SAVED[cls] = (
        cls.__dict__.get("__setattr__"),
        cls.__dict__.get("__getattribute__"),
    )
    original_setattr = cls.__setattr__
    original_getattribute = cls.__getattribute__
    cls.__setattr__ = _make_setattr(spec, original_setattr)  # type: ignore[method-assign, assignment]
    cls.__getattribute__ = _make_getattribute(  # type: ignore[method-assign, assignment]
        spec, original_getattribute
    )


def instrument_all() -> None:
    """Swap in instrumented ``__setattr__``/``__getattribute__`` on every
    registered class (idempotent; called by the runtime on install)."""
    global _INSTALLED
    _INSTALLED = True
    for cls, spec in _REGISTRY.items():
        _instrument_class(cls, spec)


def uninstrument_all() -> None:
    """Restore the original methods saved by :func:`instrument_all`."""
    global _INSTALLED
    _INSTALLED = False
    for cls, (saved_setattr, saved_getattribute) in _SAVED.items():
        if saved_setattr is None:
            del cls.__setattr__  # type: ignore[misc]
        else:
            cls.__setattr__ = saved_setattr  # type: ignore[method-assign, assignment]
        if saved_getattribute is None:
            del cls.__getattribute__  # type: ignore[misc]
        else:
            cls.__getattribute__ = saved_getattribute  # type: ignore[method-assign, assignment]
    _SAVED.clear()
