"""repro-san: a dynamic happens-before / lockset race sanitizer.

The static CONC001-004 rules (:mod:`repro.analysis.rules.concurrency`)
prove lock *discipline* -- every write under a lock, no ordering cycles,
no blocking under a lock.  They cannot see data races on lock-free
paths, atomicity violations across a release/reacquire, or bugs that
only exist under some interleavings.  This package is the dynamic
complement, in the FastTrack + Eraser tradition:

* a **happens-before engine** (:mod:`repro.sanitizer.runtime`) keeps a
  vector clock per thread, with edges from lock release -> acquire,
  thread fork/join, and the query executor's task handoffs
  (:func:`repro.common.locks.wrap_task` / ``join_task``);
* **lockset tracking** records which traced locks each thread holds;
  an access pair is a race only when the clocks say *concurrent* AND
  the locksets are *disjoint* -- combining the two kills each one's
  false positives;
* **shadow state** lives per ``(object, attribute)`` on classes that
  opt in with :func:`~repro.sanitizer.shared.sanitize_shared`; both
  attribute rebinds and first-level container operations (dict/list
  reads and mutations) are events;
* the **traced lock seam** (:mod:`repro.sanitizer.locks`) implements
  :class:`~repro.common.locks.ConcurrencyFactory`, so every product
  lock construction routes through it permanently and the sanitizer
  can be switched on at any point in the process lifetime;
* a **schedule fuzzer** (:mod:`repro.sanitizer.fuzz`) perturbs thread
  interleavings at lock/seam boundaries from one seed, flushing out
  schedule-dependent bugs the default schedule never hits.

Entry points: ``repro san`` (CLI, runs the built-in concurrency
scenarios), ``REPRO_SAN=1 pytest`` (whole-suite mode via
``tests/conftest.py``), and ``repro lint --dynamic-witness
race-report.json`` (cross-checks dynamic races against static CONC
findings).  See docs/static-analysis.md for the static<->dynamic
coverage matrix and the race-report runbook.
"""

from __future__ import annotations

from repro.sanitizer.report import AccessWitness, RaceReport, SanitizerReport
from repro.sanitizer.runtime import (
    Sanitizer,
    active,
    disable,
    enable,
    sanitized,
)
from repro.sanitizer.shared import sanitize_shared

__all__ = [
    "AccessWitness",
    "RaceReport",
    "SanitizerReport",
    "Sanitizer",
    "active",
    "disable",
    "enable",
    "sanitized",
    "sanitize_shared",
]
