"""Append-only ledger block files with size-based rollover.

The Fabric peer stores serialized blocks back to back in numbered files
(``blockfile_000000``, ``blockfile_000001``, ...), rolling to a new file
when the current one passes a size threshold.  Reading a block means
seeking to its recorded offset and reading its payload -- the actual disk
IO whose cost the paper's query models are designed to avoid.

Each stored record is ``length:u32`` followed by the payload, so torn
tails can be detected independently of the index.
"""

from __future__ import annotations

import struct
from pathlib import Path

from repro.common.errors import BlockFileError
from repro.storage.blockindex import BlockLocation

_LEN = struct.Struct("<I")
_FILE_PREFIX = "blockfile_"


class BlockFileManager:
    """Manages the directory of append-only block files."""

    def __init__(self, path: str | Path, max_file_bytes: int = 4 * 1024 * 1024) -> None:
        if max_file_bytes <= 0:
            raise ValueError(f"max_file_bytes must be positive, got {max_file_bytes}")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self._max_file_bytes = max_file_bytes
        self._current_num = self._latest_file_num()
        self._writer = open(self._file_path(self._current_num), "ab")

    def _latest_file_num(self) -> int:
        existing = sorted(self.path.glob(f"{_FILE_PREFIX}*"))
        if not existing:
            return 0
        return int(existing[-1].name[len(_FILE_PREFIX):])

    def _file_path(self, file_num: int) -> Path:
        return self.path / f"{_FILE_PREFIX}{file_num:06d}"

    def append(self, payload: bytes) -> BlockLocation:
        """Append one serialized block; returns its location."""
        if not payload:
            raise BlockFileError("refusing to append an empty block payload")
        if self._writer.tell() >= self._max_file_bytes:
            self._roll_over()
        offset = self._writer.tell()
        self._writer.write(_LEN.pack(len(payload)))
        self._writer.write(payload)
        return BlockLocation(
            file_num=self._current_num, offset=offset, length=len(payload)
        )

    def _roll_over(self) -> None:
        self._writer.flush()
        self._writer.close()
        self._current_num += 1
        self._writer = open(self._file_path(self._current_num), "ab")

    def read(self, location: BlockLocation) -> bytes:
        """Read the serialized block payload at ``location``.

        This is a real file open/seek/read so block retrieval has genuine
        IO cost, as on a Fabric peer.
        """
        file_path = self._file_path(location.file_num)
        if not file_path.exists():
            raise BlockFileError(f"block file {file_path.name} does not exist")
        # The write handle buffers; make appended data visible to readers.
        if location.file_num == self._current_num:
            self._writer.flush()
        with open(file_path, "rb") as handle:
            handle.seek(location.offset)
            header = handle.read(_LEN.size)
            if len(header) != _LEN.size:
                raise BlockFileError(
                    f"truncated block header at {file_path.name}:{location.offset}"
                )
            (length,) = _LEN.unpack(header)
            if length != location.length:
                raise BlockFileError(
                    f"length mismatch at {file_path.name}:{location.offset}: "
                    f"index says {location.length}, file says {length}"
                )
            payload = handle.read(length)
        if len(payload) != length:
            raise BlockFileError(
                f"truncated block payload at {file_path.name}:{location.offset}"
            )
        return payload

    def sync(self) -> None:
        self._writer.flush()

    def close(self) -> None:
        if not self._writer.closed:
            self._writer.flush()
            self._writer.close()

    @property
    def current_file_num(self) -> int:
        return self._current_num

    def total_bytes(self) -> int:
        """Total bytes across all block files (for storage-cost reporting)."""
        return sum(f.stat().st_size for f in self.path.glob(f"{_FILE_PREFIX}*"))
