"""Append-only ledger block files with size-based rollover.

The Fabric peer stores serialized blocks back to back in numbered files
(``blockfile_000000``, ``blockfile_000001``, ...), rolling to a new file
when the current one passes a size threshold.  Reading a block means
seeking to its recorded offset and reading its payload -- the actual disk
IO whose cost the paper's query models are designed to avoid.

Each stored record is ``length:u32  crc32:u32`` followed by the payload,
so torn tails *and* silent payload corruption are detected independently
of the index.  :meth:`BlockFileManager.scan_records` walks records
forward from any offset, which is how the block store rebuilds a missing
or torn block index straight from the files.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import Iterator, Tuple

from repro.common.errors import BlockFileError
from repro.faults.fs import REAL_FS, FileSystem
from repro.storage.blockindex import BlockLocation

_HEADER = struct.Struct("<II")
_FILE_PREFIX = "blockfile_"


class BlockFileManager:
    """Manages the directory of append-only block files."""

    def __init__(
        self,
        path: str | Path,
        max_file_bytes: int = 4 * 1024 * 1024,
        fsync: bool = False,
        fs: FileSystem = REAL_FS,
    ) -> None:
        if max_file_bytes <= 0:
            raise ValueError(f"max_file_bytes must be positive, got {max_file_bytes}")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self._max_file_bytes = max_file_bytes
        self._fs = fs
        self._fsync = fsync
        self._current_num = self._latest_file_num()
        self._writer = fs.open(self._file_path(self._current_num), "ab")

    def _latest_file_num(self) -> int:
        existing = sorted(self.path.glob(f"{_FILE_PREFIX}*"))
        if not existing:
            return 0
        return int(existing[-1].name[len(_FILE_PREFIX):])

    def _file_path(self, file_num: int) -> Path:
        return self.path / f"{_FILE_PREFIX}{file_num:06d}"

    def append(self, payload: bytes) -> BlockLocation:
        """Append one serialized block; returns its location."""
        if not payload:
            raise BlockFileError("refusing to append an empty block payload")
        if self._writer.tell() >= self._max_file_bytes:
            self._roll_over()
        offset = self._writer.tell()
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        self._writer.write(_HEADER.pack(len(payload), crc))
        self._writer.write(payload)
        return BlockLocation(
            file_num=self._current_num, offset=offset, length=len(payload)
        )

    def _roll_over(self) -> None:
        self._writer.flush()
        self._writer.close()
        self._current_num += 1
        self._writer = self._fs.open(self._file_path(self._current_num), "ab")

    def read(self, location: BlockLocation) -> bytes:
        """Read the serialized block payload at ``location``.

        This is a real file open/seek/read so block retrieval has genuine
        IO cost, as on a Fabric peer.  The payload is verified against the
        record's CRC32 so a flipped byte surfaces as
        :class:`BlockFileError`, never a silently wrong block.
        """
        file_path = self._file_path(location.file_num)
        if not file_path.exists():
            raise BlockFileError(f"block file {file_path.name} does not exist")
        # The write handle buffers; make appended data visible to readers.
        if location.file_num == self._current_num:
            self._writer.flush()
        handle = None
        try:
            handle = self._fs.open(file_path, "rb")
            handle.seek(location.offset)
            header = handle.read(_HEADER.size)
            if len(header) != _HEADER.size:
                raise BlockFileError(
                    f"truncated block header at {file_path.name}:{location.offset}"
                )
            length, crc = _HEADER.unpack(header)
            if length != location.length:
                raise BlockFileError(
                    f"length mismatch at {file_path.name}:{location.offset}: "
                    f"index says {location.length}, file says {length}"
                )
            payload = handle.read(length)
        except OSError as exc:
            # Injected or genuine read fault (EIO): typed, never a
            # silently wrong block.
            raise BlockFileError(
                f"read failed at {file_path.name}:{location.offset}: {exc}"
            ) from exc
        finally:
            if handle is not None:
                handle.close()
        if len(payload) != length:
            raise BlockFileError(
                f"truncated block payload at {file_path.name}:{location.offset}"
            )
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            raise BlockFileError(
                f"block payload checksum mismatch at "
                f"{file_path.name}:{location.offset}"
            )
        return payload

    # -- recovery ---------------------------------------------------------

    def scan_records(
        self, file_num: int = 0, offset: int = 0
    ) -> Iterator[Tuple[BlockLocation, bytes]]:
        """Walk intact records forward from ``(file_num, offset)``.

        Yields ``(location, payload)`` for every record whose header and
        checksum verify.  A torn or corrupt record *at the tail of the
        last file* ends the scan cleanly (crash-truncation semantics);
        the same damage with data after it raises :class:`BlockFileError`
        because bytes beyond the corruption cannot be trusted.
        """
        self._writer.flush()
        while True:
            file_path = self._file_path(file_num)
            if not file_path.exists():
                return
            data = file_path.read_bytes()
            is_last_file = file_num == self._current_num
            while offset < len(data):
                tail_ok = is_last_file  # only the live tail may be torn
                if offset + _HEADER.size > len(data):
                    if tail_ok:
                        return
                    raise BlockFileError(
                        f"torn record header mid-chain at "
                        f"{file_path.name}:{offset}"
                    )
                length, crc = _HEADER.unpack_from(data, offset)
                end = offset + _HEADER.size + length
                if end > len(data):
                    if tail_ok:
                        return
                    raise BlockFileError(
                        f"torn record payload mid-chain at "
                        f"{file_path.name}:{offset}"
                    )
                payload = data[offset + _HEADER.size : end]
                if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
                    if tail_ok and end == len(data):
                        return  # corrupt final record: crash-torn tail
                    raise BlockFileError(
                        f"record checksum mismatch at {file_path.name}:{offset}"
                    )
                yield (
                    BlockLocation(file_num=file_num, offset=offset, length=length),
                    payload,
                )
                offset = end
            if is_last_file:
                return
            file_num += 1
            offset = 0

    def truncate_tail(self, location: BlockLocation) -> None:
        """Cut the *last* block file back so ``location`` is its next
        append position (drops a torn record left by a crash)."""
        if location.file_num != self._current_num:
            raise BlockFileError(
                f"refusing to truncate non-tail file {location.file_num}"
            )
        self._writer.flush()
        self._writer.close()
        file_path = self._file_path(location.file_num)
        # "r+" passes through the seam untouched (only write/append modes
        # are buffered) but still hits the dead-filesystem check.
        with self._fs.open(file_path, "r+b") as handle:
            handle.truncate(location.offset)
        self._writer = self._fs.open(file_path, "ab")

    def file_size(self, file_num: int) -> int:
        """Current byte size of one block file (0 when absent)."""
        if file_num == self._current_num:
            self._writer.flush()
        file_path = self._file_path(file_num)
        return file_path.stat().st_size if file_path.exists() else 0

    def sync(self) -> None:
        if self._fsync:
            self._fs.fsync(self._writer)
        else:
            self._writer.flush()

    def close(self) -> None:
        if not self._writer.closed:
            self._writer.flush()
            self._writer.close()

    @property
    def current_file_num(self) -> int:
        return self._current_num

    def total_bytes(self) -> int:
        """Total bytes across all block files (for storage-cost reporting)."""
        return sum(f.stat().st_size for f in self.path.glob(f"{_FILE_PREFIX}*"))
