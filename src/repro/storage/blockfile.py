"""Append-only ledger block files with size-based rollover.

The Fabric peer stores serialized blocks back to back in numbered files
(``blockfile_000000``, ``blockfile_000001``, ...), rolling to a new file
when the current one passes a size threshold.  Reading a block means
seeking to its recorded offset and reading its payload -- the actual disk
IO whose cost the paper's query models are designed to avoid.

Each stored record is ``length:u32  crc32:u32`` followed by the payload,
so torn tails *and* silent payload corruption are detected independently
of the index.  :meth:`BlockFileManager.scan_records` walks records
forward from any offset, which is how the block store rebuilds a missing
or torn block index straight from the files.

The manager is shared between the committer thread (appending) and query
worker threads (reading), so every access to the append handle and the
current-file number goes through one lock: the reader-side visibility
flush used to call ``flush()`` on the shared handle with no lock at all,
racing the committer's ``write()`` mid-append.  Reads themselves stay
outside the lock -- each opens its own handle (or consults a per-file
memory map for sealed files when ``mmap_io`` is on), so block IO never
serializes behind the committer.
"""

from __future__ import annotations

import mmap
import struct
import warnings
import zlib
from pathlib import Path
from typing import IO, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import BlockFileError
from repro.common.locks import make_rlock
from repro.faults.fs import REAL_FS, FileSystem
from repro.sanitizer.shared import sanitize_shared
from repro.storage.blockindex import BlockLocation

_HEADER = struct.Struct("<II")
_FILE_PREFIX = "blockfile_"


def _parse_file_num(file: Path) -> Optional[int]:
    """Numeric suffix of a block file name, or ``None`` for a foreign
    entry (``blockfile_backup``, editor droppings...) that merely shares
    the prefix."""
    suffix = file.name[len(_FILE_PREFIX) :]
    if not suffix.isdigit():
        return None
    return int(suffix)


@sanitize_shared("_writer", "_current_num")
class BlockFileManager:
    """Manages the directory of append-only block files."""

    def __init__(
        self,
        path: str | Path,
        max_file_bytes: int = 4 * 1024 * 1024,
        fsync: bool = False,
        fs: FileSystem = REAL_FS,
        mmap_io: bool = False,
    ) -> None:
        if max_file_bytes <= 0:
            raise ValueError(f"max_file_bytes must be positive, got {max_file_bytes}")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self._max_file_bytes = max_file_bytes
        self._fs = fs
        self._fsync = fsync
        #: Serializes every touch of the shared append handle and the
        #: current-file number (committer appends vs reader flushes).
        self._lock = make_rlock("BlockFileManager._lock")
        self._mmap_io = bool(mmap_io) and getattr(fs, "supports_mmap", False)
        #: Sealed-file maps, built lazily per file (only files *below*
        #: the current one are mapped -- the append file still grows).
        self._maps: Dict[int, mmap.mmap] = {}
        self._current_num = self._latest_file_num()
        self._writer = fs.open(self._file_path(self._current_num), "ab")

    def _latest_file_num(self) -> int:
        """Highest *numeric* block file number present (0 when none).

        Parses the suffix instead of trusting lexicographic order --
        ``blockfile_1000000`` sorts before ``blockfile_999999`` as a
        string -- and skips (with a warning) foreign entries that would
        previously have crashed the open with ``ValueError``.
        """
        latest = 0
        for file in self.path.glob(f"{_FILE_PREFIX}*"):
            file_num = _parse_file_num(file)
            if file_num is None:
                warnings.warn(
                    f"ignoring foreign entry {file.name!r} in block file "
                    f"directory {self.path}",
                    stacklevel=2,
                )
                continue
            latest = max(latest, file_num)
        return latest

    def _file_path(self, file_num: int) -> Path:
        return self.path / f"{_FILE_PREFIX}{file_num:06d}"

    def append(self, payload: bytes) -> BlockLocation:
        """Append one serialized block; returns its location."""
        if not payload:
            raise BlockFileError("refusing to append an empty block payload")
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        with self._lock:
            if self._writer.tell() >= self._max_file_bytes:
                self._roll_over()
            offset = self._writer.tell()
            self._writer.write(_HEADER.pack(len(payload), crc))
            self._writer.write(payload)
            return BlockLocation(
                file_num=self._current_num, offset=offset, length=len(payload)
            )

    def _roll_over(self) -> None:
        with self._lock:
            self._writer.flush()
            self._writer.close()
            self._current_num += 1
            self._writer = self._fs.open(self._file_path(self._current_num), "ab")

    def _flush_for_read(self, file_num: int) -> None:
        """Make appended-but-buffered data visible before reading the
        *current* file.  Must hold the lock: the committer may be midway
        through the two writes of one record on the same handle."""
        with self._lock:
            if file_num == self._current_num:
                self._writer.flush()

    def _sealed_map(self, file_num: int) -> Optional[mmap.mmap]:
        """The cached memory map for a *sealed* file, or ``None`` when
        mapping does not apply (mmap off, or the file is still growing)."""
        if not self._mmap_io:
            return None
        with self._lock:
            if file_num >= self._current_num:
                return None
            cached = self._maps.get(file_num)
            if cached is not None:
                return cached
            file_path = self._file_path(file_num)
            try:
                with open(file_path, "rb") as handle:
                    mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except (OSError, ValueError) as exc:
                raise BlockFileError(
                    f"cannot map block file {file_path.name}: {exc}"
                ) from exc
            self._maps[file_num] = mapped
            return mapped

    def _read_mapped(self, mapped: mmap.mmap, location: BlockLocation) -> bytes:
        """Decode and verify one record from a sealed file's map."""
        name = self._file_path(location.file_num).name
        if location.offset + _HEADER.size > len(mapped):
            raise BlockFileError(
                f"truncated block header at {name}:{location.offset}"
            )
        length, crc = _HEADER.unpack_from(mapped, location.offset)
        if length != location.length:
            raise BlockFileError(
                f"length mismatch at {name}:{location.offset}: "
                f"index says {location.length}, file says {length}"
            )
        start = location.offset + _HEADER.size
        payload = bytes(mapped[start : start + length])
        if len(payload) != length:
            raise BlockFileError(
                f"truncated block payload at {name}:{location.offset}"
            )
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            raise BlockFileError(
                f"block payload checksum mismatch at {name}:{location.offset}"
            )
        return payload

    def _read_with_handle(
        self, handle: IO[bytes], file_path: Path, location: BlockLocation
    ) -> bytes:
        """Seek/read/verify one record on an already-open read handle."""
        try:
            handle.seek(location.offset)
            header = handle.read(_HEADER.size)
            if len(header) != _HEADER.size:
                raise BlockFileError(
                    f"truncated block header at {file_path.name}:{location.offset}"
                )
            length, crc = _HEADER.unpack(header)
            if length != location.length:
                raise BlockFileError(
                    f"length mismatch at {file_path.name}:{location.offset}: "
                    f"index says {location.length}, file says {length}"
                )
            payload = handle.read(length)
        except OSError as exc:
            # Injected or genuine read fault (EIO): typed, never a
            # silently wrong block.
            raise BlockFileError(
                f"read failed at {file_path.name}:{location.offset}: {exc}"
            ) from exc
        if len(payload) != length:
            raise BlockFileError(
                f"truncated block payload at {file_path.name}:{location.offset}"
            )
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            raise BlockFileError(
                f"block payload checksum mismatch at "
                f"{file_path.name}:{location.offset}"
            )
        return payload

    def read(self, location: BlockLocation) -> bytes:
        """Read the serialized block payload at ``location``.

        This is a real file open/seek/read (or a sealed-file map
        consultation under ``mmap_io``) so block retrieval has genuine IO
        cost, as on a Fabric peer.  The payload is verified against the
        record's CRC32 so a flipped byte surfaces as
        :class:`BlockFileError`, never a silently wrong block.
        """
        mapped = self._sealed_map(location.file_num)
        if mapped is not None:
            return self._read_mapped(mapped, location)
        file_path = self._file_path(location.file_num)
        if not file_path.exists():
            raise BlockFileError(f"block file {file_path.name} does not exist")
        # The write handle buffers; make appended data visible to readers.
        self._flush_for_read(location.file_num)
        handle = None
        try:
            handle = self._fs.open(file_path, "rb")
            return self._read_with_handle(handle, file_path, location)
        except OSError as exc:
            raise BlockFileError(
                f"read failed at {file_path.name}:{location.offset}: {exc}"
            ) from exc
        finally:
            if handle is not None:
                handle.close()

    def read_many(self, locations: Sequence[BlockLocation]) -> List[bytes]:
        """Read several payloads, coalescing same-file work.

        Locations in the same file share one open handle (or one sealed
        map) and are visited in offset order, so a batch of N history
        reads against one block file costs one open instead of N.
        Results come back in input order; every record is CRC-verified
        exactly as :meth:`read` would.
        """
        results: List[Optional[bytes]] = [None] * len(locations)
        by_file: Dict[int, List[int]] = {}
        for position, location in enumerate(locations):
            by_file.setdefault(location.file_num, []).append(position)
        for file_num in sorted(by_file):
            positions = sorted(
                by_file[file_num], key=lambda p: locations[p].offset
            )
            mapped = self._sealed_map(file_num)
            if mapped is not None:
                for position in positions:
                    results[position] = self._read_mapped(
                        mapped, locations[position]
                    )
                continue
            file_path = self._file_path(file_num)
            if not file_path.exists():
                raise BlockFileError(f"block file {file_path.name} does not exist")
            self._flush_for_read(file_num)
            handle = None
            try:
                handle = self._fs.open(file_path, "rb")
                for position in positions:
                    results[position] = self._read_with_handle(
                        handle, file_path, locations[position]
                    )
            except OSError as exc:
                raise BlockFileError(
                    f"read failed in {file_path.name}: {exc}"
                ) from exc
            finally:
                if handle is not None:
                    handle.close()
        # Every slot was filled or an exception escaped above.
        assert all(payload is not None for payload in results)
        return [payload for payload in results if payload is not None]

    # -- recovery ---------------------------------------------------------

    def scan_records(
        self, file_num: int = 0, offset: int = 0
    ) -> Iterator[Tuple[BlockLocation, bytes]]:
        """Walk intact records forward from ``(file_num, offset)``.

        Yields ``(location, payload)`` for every record whose header and
        checksum verify.  A torn or corrupt record *at the tail of the
        last file* ends the scan cleanly (crash-truncation semantics);
        the same damage with data after it raises :class:`BlockFileError`
        because bytes beyond the corruption cannot be trusted.
        """
        with self._lock:
            self._writer.flush()
            last_file_num = self._current_num
        while True:
            file_path = self._file_path(file_num)
            if not file_path.exists():
                return
            data = file_path.read_bytes()
            is_last_file = file_num == last_file_num
            while offset < len(data):
                tail_ok = is_last_file  # only the live tail may be torn
                if offset + _HEADER.size > len(data):
                    if tail_ok:
                        return
                    raise BlockFileError(
                        f"torn record header mid-chain at "
                        f"{file_path.name}:{offset}"
                    )
                length, crc = _HEADER.unpack_from(data, offset)
                end = offset + _HEADER.size + length
                if end > len(data):
                    if tail_ok:
                        return
                    raise BlockFileError(
                        f"torn record payload mid-chain at "
                        f"{file_path.name}:{offset}"
                    )
                payload = data[offset + _HEADER.size : end]
                if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
                    if tail_ok and end == len(data):
                        return  # corrupt final record: crash-torn tail
                    raise BlockFileError(
                        f"record checksum mismatch at {file_path.name}:{offset}"
                    )
                yield (
                    BlockLocation(file_num=file_num, offset=offset, length=length),
                    payload,
                )
                offset = end
            if is_last_file:
                return
            file_num += 1
            offset = 0

    def truncate_tail(self, location: BlockLocation) -> None:
        """Cut the *last* block file back so ``location`` is its next
        append position (drops a torn record left by a crash)."""
        with self._lock:
            if location.file_num != self._current_num:
                raise BlockFileError(
                    f"refusing to truncate non-tail file {location.file_num}"
                )
            self._writer.flush()
            self._writer.close()
            file_path = self._file_path(location.file_num)
            # "r+" passes through the seam untouched (only write/append
            # modes are buffered) but still hits the dead-filesystem check.
            with self._fs.open(file_path, "r+b") as handle:
                handle.truncate(location.offset)
            self._writer = self._fs.open(file_path, "ab")

    def file_size(self, file_num: int) -> int:
        """Current byte size of one block file (0 when absent)."""
        self._flush_for_read(file_num)
        file_path = self._file_path(file_num)
        return file_path.stat().st_size if file_path.exists() else 0

    def sync(self) -> None:
        with self._lock:
            if self._fsync:
                self._fs.fsync(self._writer)
            else:
                self._writer.flush()

    def close(self) -> None:
        with self._lock:
            if not self._writer.closed:
                self._writer.flush()
                self._writer.close()
            for mapped in self._maps.values():
                mapped.close()
            self._maps.clear()

    @property
    def current_file_num(self) -> int:
        with self._lock:
            return self._current_num

    def total_bytes(self) -> int:
        """Total bytes across all block files (for storage-cost reporting)."""
        return sum(
            f.stat().st_size
            for f in self.path.glob(f"{_FILE_PREFIX}*")
            if _parse_file_num(f) is not None
        )
