"""The state-db backend registry: name -> factory, with capability flags.

The ledger opens its state store through :func:`open_kv_store`, which
dispatches on a backend *name* (``memory``, ``lsm``, ``lsm-mmap``,
``btree``, ...).  Each name maps to a :class:`BackendSpec` describing how
to construct the store and what it guarantees -- whether it needs a
directory (``file_backed``) and whether acknowledged writes survive a
reopen (``durable``, which is what makes a backend eligible for the
crash-point sweeps).

Factories receive one uniform option set (the fields of
:class:`~repro.common.config.StateDbConfig` plus ``metrics`` and ``fs``)
and ignore what they do not use, so the ledger can open *any* backend
without per-backend plumbing.  Registration happens in
:mod:`repro.storage.kv` at import time; this module stays free of backend
imports so it can be imported from anywhere (including config validation)
without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.storage.kv.api import KVStore

#: A factory takes ``(path, **options)`` and returns an open store.
#: ``path`` is ``None`` for purely in-memory backends.
BackendFactory = Callable[..., KVStore]


@dataclass(frozen=True)
class BackendSpec:
    """One registered state-db backend and its capabilities."""

    #: The name used in :class:`~repro.common.config.StateDbConfig` and
    #: the ``REPRO_STATEDB`` environment variable.
    name: str
    #: Constructs the store: ``factory(path=..., **options)``.
    factory: BackendFactory
    #: Whether the backend needs a directory to open.
    file_backed: bool
    #: Whether acknowledged writes survive close + reopen (and therefore
    #: whether the backend belongs in the crash-point sweeps).
    durable: bool
    #: One-line description shown by ``repro-bench`` help and the docs.
    description: str = ""
    #: Option names the factory honours (documentation only; factories
    #: must ignore unknown options rather than reject them).
    options: Tuple[str, ...] = field(default=())


_REGISTRY: Dict[str, BackendSpec] = {}


def register_backend(spec: BackendSpec) -> None:
    """Register ``spec``; re-registering a name replaces it (tests use
    this to inject instrumented backends)."""
    _REGISTRY[spec.name] = spec


def backend_names() -> Tuple[str, ...]:
    """All registered backend names, sorted (for config validation and
    error messages)."""
    return tuple(sorted(_REGISTRY))


def backend_specs() -> Tuple[BackendSpec, ...]:
    """All registered specs, sorted by name (the conformance suite and
    the shootout benchmark parametrize over this)."""
    return tuple(_REGISTRY[name] for name in backend_names())


def get_backend(name: str) -> BackendSpec:
    """Look up one backend; unknown names raise ``ValueError`` listing
    what is available."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown KV backend {name!r}; available: {list(backend_names())}"
        ) from None


def open_kv_store(
    backend: str, path: Optional[Union[str, Path]] = None, **options: Any
) -> KVStore:
    """Open a KV store by backend name.

    Args:
        backend: a registered name (see :func:`backend_names`).
        path: directory for file-backed backends (required for them,
            ignored by in-memory ones).
        **options: the uniform option set (``memtable_limit``,
            ``compaction_trigger``, ``compaction``, ``durability``,
            ``metrics``, ``fs``); each factory picks what it needs.
    """
    spec = get_backend(backend)
    if spec.file_backed and path is None:
        raise ValueError(f"the {backend!r} backend requires a path")
    return spec.factory(path=path, **options)
