"""The key-value store interface shared by all backends.

Keys and values are ``bytes``.  Iteration order is bytewise-lexicographic
on keys, which is what makes composite-key range scans (``GetStateByRange``
in the Fabric layer) work.  Range bounds follow the conventional
half-open ``[start, end)`` contract with ``None`` meaning unbounded.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Optional, Tuple

from repro.common.errors import ClosedStoreError


class KVStore(ABC):
    """A sorted, mutable mapping from byte keys to byte values."""

    _closed: bool = False

    @abstractmethod
    def get(self, key: bytes) -> Optional[bytes]:
        """Return the value for ``key`` or ``None`` if absent."""

    @abstractmethod
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""

    @abstractmethod
    def delete(self, key: bytes) -> None:
        """Remove ``key``.  Deleting an absent key is a no-op."""

    @abstractmethod
    def scan(
        self, start: Optional[bytes] = None, end: Optional[bytes] = None
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Yield ``(key, value)`` pairs with ``start <= key < end``, sorted.

        The iterator reflects the store's contents at the time each item is
        produced; mutating the store while scanning is undefined behaviour
        (as it is in LevelDB without an explicit snapshot).
        """

    @abstractmethod
    def close(self) -> None:
        """Release resources.  Further operations raise :class:`ClosedStoreError`."""

    # -- shared helpers ------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ClosedStoreError(f"{type(self).__name__} is closed")

    @staticmethod
    def _check_key(key: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)):
            raise TypeError(f"key must be bytes, got {type(key).__name__}")
        if not key:
            raise ValueError("key must be non-empty")

    @staticmethod
    def _check_value(value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError(f"value must be bytes, got {type(value).__name__}")

    def __enter__(self) -> "KVStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- quarantine (corruption isolation) -----------------------------
    #
    # Backends with on-disk structure (the LSM store) override these to
    # isolate files that fail integrity checks instead of serving from
    # them.  The defaults describe a backend with nothing to quarantine.

    def quarantined_tables(self) -> Tuple[str, ...]:
        """Names of storage units isolated after failing integrity checks.

        Non-empty means reads raise
        :class:`~repro.common.errors.QuarantinedError` until a recovery
        layer calls :meth:`acknowledge_quarantine` and rebuilds the lost
        range from an authoritative source (the block chain).
        """
        return ()

    def acknowledge_quarantine(self) -> Tuple[str, ...]:
        """Accept the data loss and resume serving; returns what was lost.

        Only a caller that can rebuild the missing entries (e.g. the
        ledger replaying the chain) should acknowledge.
        """
        return ()

    def scrub(self) -> Tuple[str, ...]:
        """Re-verify on-disk integrity; returns names newly quarantined."""
        return ()

    # -- convenience ----------------------------------------------------

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Scan the entire store."""
        return self.scan(None, None)

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None


#: Sentinel byte prepended to SSTable/WAL records to mark deletions.  Kept
#: here so the memtable, WAL and SSTable modules agree on the encoding.
OP_PUT = 0
OP_DELETE = 1
