"""A sorted in-memory KV backend with optional WAL + checkpoint durability.

The store keeps the whole key set in memory (a dict plus a bisect-sorted
key list -- the flat cousin of a B-tree at our scale), so every read is a
single in-process lookup with no SSTable consultation at all.  That makes
it the natural baseline in the state-db shootout: it shows what the LSM
store's layered read path costs.

Durability, when a ``path`` is given, follows the classic pattern:

* every mutation is appended to a write-ahead log *before* the in-memory
  structures change;
* every ``checkpoint_interval`` mutations (and on close) the full sorted
  state is written to ``btree-checkpoint.sst`` -- reusing the SSTable
  format, staged + atomically renamed -- and the WAL is truncated;
* reopen loads the checkpoint, replays the WAL on top, and converges no
  matter where in that sequence a crash landed (replay is idempotent).

A checkpoint that fails its CRC at open is moved to ``quarantine/`` and
reads raise :class:`~repro.common.errors.QuarantinedError` until the
owner (the ledger, replaying the chain) acknowledges the loss -- the same
scrub-and-quarantine contract as the LSM store.

Without a ``path`` the store is purely in-memory (still registered, used
when durability is not under test).
"""

from __future__ import annotations

import bisect
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.common import metrics as metric_names
from repro.common.errors import QuarantinedError, SSTableError
from repro.common.locks import make_rlock
from repro.common.metrics import NULL_REGISTRY, MetricsRegistry
from repro.faults.crashpoints import (
    BTREE_POST_CHECKPOINT,
    BTREE_PRE_CHECKPOINT,
    crash_point,
)
from repro.faults.fs import REAL_FS, FileSystem
from repro.sanitizer.shared import sanitize_shared
from repro.storage.kv.api import OP_PUT, KVStore
from repro.storage.kv.sstable import TMP_SUFFIX, SSTableReader, write_sstable
from repro.storage.kv.wal import WriteAheadLog, replay

_WAL_NAME = "btree.wal"
_CHECKPOINT_NAME = "btree-checkpoint.sst"

#: Subdirectory a corrupt checkpoint is moved into (same contract as the
#: LSM store's quarantine).
QUARANTINE_DIR = "quarantine"


@sanitize_shared("_values", "_sorted_keys", "_dirty", "_quarantined")
class BTreeStore(KVStore):
    """Sorted in-memory store with optional WAL-backed durability.

    All operations -- including reads -- take the instance lock: the
    structures are mutated in place (unlike the LSM store's rebind-only
    snapshots), so a lock-free reader could watch ``_sorted_keys`` shift
    under a scan.  Scans therefore materialize their result under the
    lock and yield outside it.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        checkpoint_interval: int = 8192,
        metrics: MetricsRegistry = NULL_REGISTRY,
        durability: str = "flush",
        fs: FileSystem = REAL_FS,
    ) -> None:
        if checkpoint_interval <= 0:
            raise ValueError(
                f"checkpoint_interval must be positive, got {checkpoint_interval}"
            )
        if durability not in ("flush", "fsync"):
            raise ValueError(
                f"durability must be 'flush' or 'fsync', got {durability!r}"
            )
        self._lock = make_rlock("BTreeStore._lock")
        self._values: Dict[bytes, bytes] = {}
        self._sorted_keys: List[bytes] = []
        self._checkpoint_interval = checkpoint_interval
        self._dirty = 0  # mutations since the last durable checkpoint
        self._metrics = metrics
        self._fs = fs
        self._fsync = durability == "fsync"
        self._quarantined: List[str] = []
        self.path = Path(path) if path is not None else None
        self._wal: Optional[WriteAheadLog] = None
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
            with self._lock:
                self._load_checkpoint_locked()
                self._wal = WriteAheadLog(
                    self.path / _WAL_NAME, fsync=self._fsync, fs=fs
                )
                self._replay_wal_locked()

    # -- startup ---------------------------------------------------------

    def _checkpoint_path(self) -> Path:
        assert self.path is not None
        return self.path / _CHECKPOINT_NAME

    def _load_checkpoint_locked(self) -> None:
        checkpoint = self._checkpoint_path()
        stray = checkpoint.with_name(checkpoint.name + TMP_SUFFIX)
        # A crash mid-checkpoint left a staged file that was never renamed
        # live; the WAL still holds everything, so drop it.
        stray.unlink(missing_ok=True)
        if not checkpoint.exists():
            return
        try:
            reader = SSTableReader(checkpoint, fs=self._fs)
        except SSTableError:
            self._quarantine_checkpoint_locked(checkpoint)
            return
        for key, value in reader.scan(None, None):
            if value is None:
                continue  # checkpoints are full snapshots; no tombstones
            self._values[key] = value
            self._sorted_keys.append(key)
        self._sorted_keys.sort()

    def _quarantine_checkpoint_locked(self, checkpoint: Path) -> None:
        assert self.path is not None
        quarantine = self.path / QUARANTINE_DIR
        quarantine.mkdir(exist_ok=True)
        checkpoint.rename(quarantine / checkpoint.name)
        self._quarantined.append(checkpoint.name)

    def _replay_wal_locked(self) -> None:
        assert self.path is not None
        for op, key, value in replay(self.path / _WAL_NAME):
            if op == OP_PUT:
                assert value is not None
                self._set_locked(key, value)
            else:
                self._drop_locked(key)

    def _check_quarantine_locked(self) -> None:
        if self._quarantined:
            raise QuarantinedError(
                f"store has a quarantined checkpoint {sorted(self._quarantined)}; "
                "rebuild from the authoritative source and call "
                "acknowledge_quarantine() before reading",
                tables=tuple(self._quarantined),
            )

    # -- in-memory primitives (call with the lock held) -------------------

    def _set_locked(self, key: bytes, value: bytes) -> None:
        if key not in self._values:
            bisect.insort(self._sorted_keys, key)
        self._values[key] = value

    def _drop_locked(self, key: bytes) -> None:
        if key in self._values:
            del self._values[key]
            index = bisect.bisect_left(self._sorted_keys, key)
            del self._sorted_keys[index]

    # -- write path -------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        self._check_key(key)
        self._check_value(value)
        key, value = bytes(key), bytes(value)
        with self._lock:
            if self._wal is not None:
                self._wal.append_put(key, value)
                self._metrics.increment(metric_names.WAL_RECORDS)
            self._metrics.increment(metric_names.KV_WRITES)
            self._set_locked(key, value)
            self._dirty += 1
            self._maybe_checkpoint_locked()

    def delete(self, key: bytes) -> None:
        self._check_open()
        self._check_key(key)
        key = bytes(key)
        with self._lock:
            if self._wal is not None:
                self._wal.append_delete(key)
                self._metrics.increment(metric_names.WAL_RECORDS)
            self._metrics.increment(metric_names.KV_WRITES)
            self._drop_locked(key)
            self._dirty += 1
            self._maybe_checkpoint_locked()

    def _maybe_checkpoint_locked(self) -> None:
        if self._wal is not None and self._dirty >= self._checkpoint_interval:
            self.checkpoint()

    def checkpoint(self) -> None:
        """Write the full state to the checkpoint table, then truncate the
        WAL.

        Ordering is the recovery invariant (the WAL is synced first, the
        snapshot is atomically renamed live, only then is the WAL cut):
        a crash before the rename replays the whole WAL over the *old*
        checkpoint; a crash after it replays the same records over the
        *new* one -- replay is idempotent, so both converge.
        """
        with self._lock:
            if self._wal is None or not self._dirty:
                return
            self._wal.sync()
            crash_point(BTREE_PRE_CHECKPOINT)
            write_sstable(
                self._checkpoint_path(),
                ((key, self._values[key]) for key in self._sorted_keys),
                fs=self._fs,
                fsync=self._fsync,
            )
            crash_point(BTREE_POST_CHECKPOINT)
            self._wal.truncate()
            self._dirty = 0
            self._metrics.increment(metric_names.KV_CHECKPOINTS)

    # -- read path ---------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        self._check_open()
        self._check_key(key)
        self._metrics.increment(metric_names.KV_READS)
        with self._lock:
            self._check_quarantine_locked()
            return self._values.get(bytes(key))

    def scan(
        self, start: Optional[bytes] = None, end: Optional[bytes] = None
    ) -> Iterator[Tuple[bytes, bytes]]:
        self._check_open()
        with self._lock:
            self._check_quarantine_locked()
            lo = (
                0
                if start is None
                else bisect.bisect_left(self._sorted_keys, bytes(start))
            )
            hi = (
                len(self._sorted_keys)
                if end is None
                else bisect.bisect_left(self._sorted_keys, bytes(end))
            )
            pairs = [
                (key, self._values[key]) for key in self._sorted_keys[lo:hi]
            ]
        return iter(pairs)

    # -- quarantine --------------------------------------------------------

    def quarantined_tables(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._quarantined)

    def acknowledge_quarantine(self) -> Tuple[str, ...]:
        with self._lock:
            lost = tuple(self._quarantined)
            self._quarantined = []
            return lost

    def scrub(self) -> Tuple[str, ...]:
        """Re-verify the on-disk checkpoint; quarantine it on failure.

        Same contract as the LSM store's scrub: a failure isolates the
        corrupt file and blocks reads with ``QuarantinedError`` until the
        owner acknowledges the loss.  Writes stay open -- the rebuild
        path (and the next checkpoint) writes the state back.
        """
        if self.path is None:
            return ()
        with self._lock:
            checkpoint = self._checkpoint_path()
            if not checkpoint.exists():
                return ()
            try:
                SSTableReader(checkpoint, fs=self._fs)
            except SSTableError:
                self._quarantine_checkpoint_locked(checkpoint)
                # Everything surviving in memory must reach a fresh
                # checkpoint before the WAL can be trusted alone.
                self._dirty = max(self._dirty, 1)
                return (checkpoint.name,)
            return ()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            if self._wal is not None:
                self.checkpoint()
                self._wal.close()
            self._closed = True

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)
