"""The LevelDB-like LSM key-value store.

Write path: WAL append -> memtable insert; when the memtable exceeds its
entry limit it is flushed to a new immutable SSTable and the WAL is
truncated.  Read path: memtable first, then SSTables newest-first.  Range
scans merge all sources with newest-wins semantics and tombstone
suppression.  When the number of SSTables reaches ``compaction_trigger``,
a full compaction merges them into one table and drops dead entries.

On reopen, surviving WAL records are replayed into a fresh memtable, so a
process crash between flushes loses no acknowledged writes.  Crash
recovery also sweeps leftover ``.tmp`` table files (a crash mid-flush)
-- the atomic rename in :func:`~repro.storage.kv.sstable.write_sstable`
guarantees they were never visible as live tables.

The live table set is recorded in a ``MANIFEST.json`` sibling (written
via the same staged-rename discipline) after every table-set change.  On
open, the manifest is authoritative: listed tables load, ``.sst`` files
*not* listed are deleted as strays.  That matters because compaction no
longer unlinks its victims inline -- lock-free readers may still hold a
snapshot that references them (and in mmap mode they re-open the file by
path on every read), so victims are retired via a GC finalizer that
deletes the file only once the last reader reference drains.  If the
process dies before a finalizer runs, the orphaned victim would
resurrect deleted keys on a glob-based reopen; the manifest makes it a
stray instead.  Directories from before the manifest existed load by
glob and gain a manifest on first open.
"""

from __future__ import annotations

import heapq
import json
import weakref
from pathlib import Path
from typing import Iterator, List, Optional, Set, Tuple

from repro.common import metrics as metric_names
from repro.common.errors import QuarantinedError, SSTableError, StorageError
from repro.common.locks import make_rlock
from repro.common.metrics import NULL_REGISTRY, MetricsRegistry
from repro.sanitizer.shared import sanitize_shared
from repro.faults.crashpoints import LSM_POST_SSTABLE, LSM_PRE_SSTABLE, crash_point
from repro.faults.fs import REAL_FS, FileSystem
from repro.storage.kv.api import OP_PUT, KVStore
from repro.storage.kv.memtable import Memtable
from repro.storage.kv.sstable import TMP_SUFFIX, SSTableReader, write_sstable
from repro.storage.kv.wal import WriteAheadLog, replay

_SST_PREFIX = "sst-"
_SST_SUFFIX = ".sst"
_WAL_NAME = "wal.log"
_MANIFEST_NAME = "MANIFEST.json"


def _unlink_retired(path: Path, pending: Set[Path]) -> None:
    """Finalizer for a compacted-away SSTable reader: delete the file now
    that no reader snapshot can reference it.  Module-level (not a bound
    method) so the finalizer does not keep the store alive."""
    path.unlink(missing_ok=True)
    pending.discard(path)

#: Subdirectory corrupt tables are moved into.  Keeping the bytes (rather
#: than deleting) preserves forensic evidence and keeps the quarantined
#: file out of the live-table glob, so a reopen does not re-trip on it.
QUARANTINE_DIR = "quarantine"


@sanitize_shared("_memtable", "_tables", "_next_sequence", "_quarantined")
class LSMStore(KVStore):
    """File-backed sorted KV store (memtable + WAL + SSTables).

    Readers never hold the lock across I/O: :meth:`get` and :meth:`scan`
    take it only long enough to snapshot the memtable reference, the
    table list and the quarantine state, then read from the snapshot.
    :meth:`flush` *rebinds* a fresh memtable instead of clearing the old
    one in place, so a reader's snapshot stays internally consistent (it
    sees either the pre-flush memtable with the old table list, or --
    on its next operation -- the fresh pair); the previous check-then-act
    pattern (unlocked reads of ``_memtable``/``_tables`` racing the
    flush's ``clear()``) could observe an empty memtable *and* miss the
    not-yet-appended table, dropping acknowledged writes from a read.
    """

    def __init__(
        self,
        path: str | Path,
        memtable_limit: int = 8192,
        compaction_trigger: int = 6,
        compaction: str = "full",
        metrics: MetricsRegistry = NULL_REGISTRY,
        durability: str = "flush",
        fs: FileSystem = REAL_FS,
        mmap_io: bool = False,
    ) -> None:
        """``compaction`` picks the strategy once ``compaction_trigger``
        SSTables accumulate:

        * ``"full"`` -- merge every table into one and drop dead entries
          (lowest read amplification, highest write amplification);
        * ``"tiered"`` -- merge only the newest half of the tables;
          tombstones survive unless the merge happens to include the
          oldest table (size-tiered trade-off: cheaper compactions, more
          tables to consult on reads).

        ``mmap_io`` serves SSTable data sections through per-operation
        memory maps instead of resident copies (see
        :class:`~repro.storage.kv.sstable.SSTableReader`); it is ignored
        on filesystems that cannot map (``fs.supports_mmap`` false).
        """
        if memtable_limit <= 0:
            raise ValueError(f"memtable_limit must be positive, got {memtable_limit}")
        if compaction_trigger <= 1:
            raise ValueError(
                f"compaction_trigger must be > 1, got {compaction_trigger}"
            )
        if compaction not in ("full", "tiered"):
            raise ValueError(
                f"compaction must be 'full' or 'tiered', got {compaction!r}"
            )
        if durability not in ("flush", "fsync"):
            raise ValueError(
                f"durability must be 'flush' or 'fsync', got {durability!r}"
            )
        # One store instance serves concurrent readers and writers
        # (parallel ingestion); the reentrant lock serializes every
        # structural mutation (memtable swap, table list, sequences).
        self._lock = make_rlock("LSMStore._lock")
        self._compaction = compaction
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self._memtable_limit = memtable_limit
        self._compaction_trigger = compaction_trigger
        self._metrics = metrics
        self._fs = fs
        self._fsync = durability == "fsync"
        self._mmap_io = bool(mmap_io)
        self._memtable = Memtable()
        self._tables: List[Tuple[int, SSTableReader]] = []  # newest last
        self._next_sequence = 0
        self._quarantined: List[str] = []
        #: Paths of compacted-away tables whose deletion is deferred
        #: until their last reader reference drains (see
        #: :func:`_unlink_retired`); ``close`` force-deletes leftovers.
        self._pending_unlinks: Set[Path] = set()
        with self._lock:
            self._load_tables_locked()
        self._wal = WriteAheadLog(self.path / _WAL_NAME, fsync=self._fsync, fs=fs)
        self._replay_wal()

    # -- startup ---------------------------------------------------------

    def _manifest_path(self) -> Path:
        return self.path / _MANIFEST_NAME

    def _read_manifest(self) -> Optional[List[int]]:
        """The manifest's live sequence list, or ``None`` for a legacy or
        unreadable manifest (the caller falls back to a glob load)."""
        manifest = self._manifest_path()
        if not manifest.exists():
            return None
        try:
            payload = json.loads(manifest.read_text())
            sequences = payload["tables"]
            if not isinstance(sequences, list):
                return None
            return sorted(int(sequence) for sequence in sequences)
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def _write_manifest_locked(self) -> None:
        """Record the current live table set, staged + atomically renamed
        (same durability discipline as the tables themselves)."""
        payload = json.dumps(
            {"tables": [sequence for sequence, _ in self._tables]}
        ).encode("ascii")
        manifest = self._manifest_path()
        tmp = manifest.with_name(manifest.name + TMP_SUFFIX)
        handle = self._fs.open(tmp, "wb")
        try:
            handle.write(payload)
            if self._fsync:
                self._fs.fsync(handle)
        finally:
            handle.close()
        self._fs.replace(tmp, manifest)

    def _load_tables_locked(self) -> None:
        for stray in self.path.glob(f"*{TMP_SUFFIX}"):
            # A crash mid-flush (or mid-manifest-write) left a staged file
            # that was never renamed live; drop it.
            stray.unlink()
        listed = self._read_manifest()
        if listed is None:
            # Legacy directory (or unreadable manifest): trust the glob,
            # then write the manifest this directory never had.
            candidates = [
                (int(file.name[len(_SST_PREFIX) : -len(_SST_SUFFIX)]), file)
                for file in sorted(self.path.glob(f"{_SST_PREFIX}*{_SST_SUFFIX}"))
            ]
        else:
            candidates = [
                (sequence, self._table_path(sequence)) for sequence in listed
            ]
            known = {path.name for _, path in candidates}
            for file in sorted(self.path.glob(f"{_SST_PREFIX}*{_SST_SUFFIX}")):
                # Not in the manifest: either a flushed table whose WAL
                # was never truncated (records replay from the WAL) or a
                # compaction victim whose deferred unlink never ran.
                # Loading it would resurrect deleted keys.  A *healthy*
                # stray is safe to delete (its records live in the WAL or
                # the merged table); a corrupt one is evidence of a fault
                # -- bit rot, torn write -- and is quarantined so the
                # damage is surfaced, exactly as a corrupt live table
                # would be.
                if file.name in known:
                    continue
                sequence = int(file.name[len(_SST_PREFIX) : -len(_SST_SUFFIX)])
                self._next_sequence = max(self._next_sequence, sequence + 1)
                try:
                    SSTableReader(file, fs=self._fs)
                except SSTableError:
                    self._quarantine_file_locked(file)
                    continue
                file.unlink()
        for sequence, file in candidates:
            self._next_sequence = max(self._next_sequence, sequence + 1)
            if not file.exists():
                # Listed but gone: the data is lost outside our control
                # (nothing to move to quarantine/), so record the loss and
                # block reads exactly like corruption would.
                self._quarantined.append(file.name)
                continue
            try:
                reader = SSTableReader(file, fs=self._fs, mmap_io=self._mmap_io)
            except SSTableError:
                # Scrub-and-quarantine: a table failing its CRC (bit rot,
                # torn bytes, injected flip) is isolated rather than
                # served from or silently dropped.  Reads raise
                # QuarantinedError until a recovery layer that can
                # rebuild the range acknowledges the loss.
                self._quarantine_file_locked(file)
                continue
            self._tables.append((sequence, reader))
        self._tables.sort(key=lambda pair: pair[0])
        self._write_manifest_locked()

    def _quarantine_file_locked(self, file: Path) -> None:
        quarantine = self.path / QUARANTINE_DIR
        quarantine.mkdir(exist_ok=True)
        file.rename(quarantine / file.name)
        self._quarantined.append(file.name)

    def _check_quarantine(self) -> None:
        if self._quarantined:
            raise QuarantinedError(
                f"store has quarantined tables {sorted(self._quarantined)}; "
                "rebuild from the authoritative source and call "
                "acknowledge_quarantine() before reading",
                tables=tuple(self._quarantined),
            )

    def _replay_wal(self) -> None:
        for op, key, value in replay(self.path / _WAL_NAME):
            if op == OP_PUT:
                assert value is not None
                self._memtable.put(key, value)
            else:
                self._memtable.mark_deleted(key)

    # -- write path -------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        self._check_key(key)
        self._check_value(value)
        key, value = bytes(key), bytes(value)
        with self._lock:
            self._wal.append_put(key, value)
            self._metrics.increment(metric_names.WAL_RECORDS)
            self._metrics.increment(metric_names.KV_WRITES)
            self._memtable.put(key, value)
            self._maybe_flush()

    def delete(self, key: bytes) -> None:
        self._check_open()
        self._check_key(key)
        key = bytes(key)
        with self._lock:
            self._wal.append_delete(key)
            self._metrics.increment(metric_names.WAL_RECORDS)
            self._metrics.increment(metric_names.KV_WRITES)
            self._memtable.mark_deleted(key)
            self._maybe_flush()

    def _maybe_flush(self) -> None:
        if len(self._memtable) >= self._memtable_limit:
            self.flush()

    def flush(self) -> None:
        """Flush the memtable to a new SSTable and truncate the WAL.

        Ordering is the recovery invariant: the WAL is synced first (so a
        crash before the table lands replays everything), the table is
        atomically finalized, and only then is the WAL truncated.  A
        crash between the last two steps leaves the same records in both
        places -- replay is idempotent, so reopen converges.
        """
        with self._lock:
            if not len(self._memtable):
                return
            self._wal.sync()
            sequence = self._next_sequence
            self._next_sequence += 1
            table_path = self._table_path(sequence)
            crash_point(LSM_PRE_SSTABLE)
            write_sstable(
                table_path, self._memtable.entries_sorted(),
                fs=self._fs, fsync=self._fsync,
            )
            crash_point(LSM_POST_SSTABLE)
            # Append-then-rebind: a reader snapshotting between these
            # statements sees the new table *and* the old memtable --
            # duplicated entries are harmless (newest-wins), a window
            # where the records exist nowhere would not be.
            self._tables = self._tables + [
                (sequence, SSTableReader(table_path, fs=self._fs,
                                         mmap_io=self._mmap_io))
            ]
            self._memtable = Memtable()
            # Manifest before WAL truncation: a crash in between leaves
            # the records both listed and replayable -- idempotent.  The
            # reverse order could truncate the WAL while the manifest
            # still omits the table, deleting it as a stray on reopen.
            self._write_manifest_locked()
            self._wal.truncate()
            if len(self._tables) >= self._compaction_trigger:
                self._compact_locked()

    def _table_path(self, sequence: int) -> Path:
        return self.path / f"{_SST_PREFIX}{sequence:08d}{_SST_SUFFIX}"

    def _compact_locked(self) -> None:
        if self._compaction == "full":
            self._merge_tables_locked(victims=self._tables)
        else:
            # Tiered: merge the newest half (at least two tables).  The
            # merged table takes a fresh (highest) sequence number, which
            # is consistent with its precedence: it replaced exactly the
            # newest run.
            count = max(2, len(self._tables) // 2)
            self._merge_tables_locked(victims=self._tables[-count:])

    def _merge_tables_locked(self, victims: List[Tuple[int, SSTableReader]]) -> None:
        """Merge ``victims`` (a suffix of the table list, newest last)
        into one table.  Tombstones can be dropped only when no older
        table survives to be shadowed.

        Victim files are *not* deleted here: a lock-free reader may hold
        a pre-compaction snapshot that still consults them (fatally so in
        mmap mode, where every read re-opens the file by path).  Each
        victim is instead scheduled for deletion when its reader object
        is garbage-collected -- i.e. once the table-list rebind below and
        every outstanding snapshot have dropped their references.  The
        manifest already omits the victims, so a crash before a deferred
        unlink runs leaves only a stray that reopen deletes.
        """
        self._metrics.increment(metric_names.KV_COMPACTIONS)
        survivors = self._tables[: len(self._tables) - len(victims)]
        merged = self._merged_entries(
            sources=[reader for _, reader in victims],
            memtable=None,
            start=None,
            end=None,
            keep_tombstones=bool(survivors),
        )
        sequence = self._next_sequence
        self._next_sequence += 1
        table_path = self._table_path(sequence)
        write_sstable(table_path, merged, fs=self._fs, fsync=self._fsync)
        retired = list(victims)
        self._tables = survivors + [
            (sequence, SSTableReader(table_path, fs=self._fs,
                                     mmap_io=self._mmap_io))
        ]
        self._write_manifest_locked()
        for _, reader in retired:
            self._pending_unlinks.add(reader.path)
            weakref.finalize(reader, _unlink_retired, reader.path,
                             self._pending_unlinks)

    # -- read path ---------------------------------------------------------

    def _read_snapshot(self) -> Tuple[Memtable, Tuple[SSTableReader, ...]]:
        """A consistent ``(memtable, tables)`` pair, captured under the
        lock.  Reads then proceed lock-free against the snapshot: the
        memtable object is never cleared in place (flush rebinds a fresh
        one) and table lists are rebound, never mutated, so the snapshot
        stays coherent however many flushes land mid-read."""
        with self._lock:
            self._check_quarantine()
            return self._memtable, tuple(reader for _, reader in self._tables)

    def get(self, key: bytes) -> Optional[bytes]:
        self._check_open()
        self._check_key(key)
        key = bytes(key)
        self._metrics.increment(metric_names.KV_READS)
        memtable, tables = self._read_snapshot()
        found, value = memtable.lookup(key)
        if found:
            return value
        for reader in reversed(tables):  # newest first
            if not reader.may_contain(key):
                # Bloom says definitely absent: skip the table without
                # touching its data section (the common case for point
                # lookups once compaction has layered the key space).
                self._metrics.increment(metric_names.KV_BLOOM_NEGATIVES)
                continue
            self._metrics.increment(metric_names.KV_SSTABLE_READS)
            found, value = reader.lookup(key)
            if found:
                return value
        return None

    def scan(
        self, start: Optional[bytes] = None, end: Optional[bytes] = None
    ) -> Iterator[Tuple[bytes, bytes]]:
        self._check_open()
        memtable, tables = self._read_snapshot()
        yield from (
            (key, value)
            for key, value in self._merged_entries(
                sources=list(tables),
                memtable=memtable,
                start=start,
                end=end,
                keep_tombstones=False,
            )
            if value is not None
        )

    def _merged_entries(
        self,
        sources: List[SSTableReader],
        memtable: Optional[Memtable],
        start: Optional[bytes],
        end: Optional[bytes],
        keep_tombstones: bool,
    ) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        """K-way merge with newest-wins on duplicate keys.

        Source priority: memtable beats any SSTable; later SSTables beat
        earlier ones.  The heap orders by ``(key, -priority)`` so for equal
        keys the newest source surfaces first and older duplicates are
        skipped.
        """
        iterators: List[Tuple[int, Iterator[Tuple[bytes, Optional[bytes]]]]] = []
        for priority, reader in enumerate(sources):
            iterators.append((priority, reader.scan(start, end)))
        if memtable is not None:
            iterators.append((len(sources), memtable.scan(start, end)))

        heap: List[Tuple[bytes, int, Optional[bytes], int]] = []
        for priority, iterator in iterators:
            for key, value in iterator:
                heap.append((key, -priority, value, priority))
                break  # only the first item; rest pulled lazily below
        # Rebuild with live iterators: store iterator index to pull next.
        live = {priority: iterator for priority, iterator in iterators}
        heapq.heapify(heap)
        last_key: Optional[bytes] = None
        while heap:
            key, neg_priority, value, priority = heapq.heappop(heap)
            iterator = live[priority]
            for next_key, next_value in iterator:
                heapq.heappush(heap, (next_key, -priority, next_value, priority))
                break
            if key == last_key:
                continue  # older duplicate, already emitted newest
            last_key = key
            if value is None and not keep_tombstones:
                continue
            yield key, value

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self.flush()
            self._wal.close()
            self._closed = True
            # Backstop for deferred compaction-victim deletion: any
            # finalizer that has not fired yet (a snapshot tuple kept a
            # reader alive, or a reference cycle delayed collection) is
            # forced now -- the store owns the directory and no new
            # readers can start after close.
            for retired in list(self._pending_unlinks):
                retired.unlink(missing_ok=True)
            self._pending_unlinks.clear()

    # -- quarantine --------------------------------------------------------

    def quarantined_tables(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._quarantined)

    def acknowledge_quarantine(self) -> Tuple[str, ...]:
        """Accept the loss of quarantined tables and resume serving.

        The caller owns rebuilding the lost entries from an
        authoritative source (the ledger replays the block chain); the
        store itself cannot conjure them back.  Returns the names that
        were quarantined.
        """
        with self._lock:
            lost = tuple(self._quarantined)
            self._quarantined = []
            return lost

    def scrub(self) -> Tuple[str, ...]:
        """Re-verify every live table's checksum; quarantine failures.

        Returns the names newly quarantined (empty when all tables are
        healthy).  A non-empty result leaves the store in the same
        read-blocked state as corruption found at open.
        """
        with self._lock:
            healthy: List[Tuple[int, SSTableReader]] = []
            newly: List[str] = []
            for sequence, reader in self._tables:
                try:
                    healthy.append(
                        (sequence, SSTableReader(reader.path, fs=self._fs,
                                                 mmap_io=self._mmap_io))
                    )
                except SSTableError:
                    self._quarantine_file_locked(reader.path)
                    newly.append(reader.path.name)
            self._tables = healthy
            if newly:
                self._write_manifest_locked()
            return tuple(newly)

    @property
    def sstable_count(self) -> int:
        """Number of live SSTables (exposed for tests and ablations)."""
        with self._lock:
            return len(self._tables)

    @property
    def memtable_size(self) -> int:
        with self._lock:
            return len(self._memtable)

    def verify_integrity(self) -> None:
        """Cheap invariant check used by tests: scan yields sorted keys."""
        previous: Optional[bytes] = None
        for key, _ in self.scan():
            if previous is not None and key <= previous:
                raise StorageError(
                    f"scan order violated: {previous!r} then {key!r}"
                )
            previous = key
