"""A from-scratch Bloom filter for SSTable key lookups.

Point lookups in an LSM store consult SSTables newest-first; most tables
don't contain the key, and each miss costs an index search plus a stride
scan.  A per-table Bloom filter answers "definitely absent" from memory
first, as in LevelDB.

Double hashing (Kirsch-Mitzenmacher): the i-th probe position is
``h1 + i*h2 mod m`` with two independent checksums, which preserves the
asymptotic false-positive rate of k independent hash functions.  The
encoding is stable across processes (no reliance on ``hash()``), so
filters persist inside SSTable files.
"""

from __future__ import annotations

import math
import struct
import zlib
from typing import Iterable

_HEADER = struct.Struct("<II")  # hash_count, bit_count


class BloomFilter:
    """An immutable-after-build Bloom filter over byte keys."""

    def __init__(self, bits: bytearray, bit_count: int, hash_count: int) -> None:
        if bit_count <= 0 or hash_count <= 0:
            raise ValueError("bit_count and hash_count must be positive")
        self._bits = bits
        self._bit_count = bit_count
        self._hash_count = hash_count

    # -- construction -----------------------------------------------------

    @classmethod
    def build(cls, keys: Iterable[bytes], bits_per_key: int = 10) -> "BloomFilter":
        """Build a filter sized for ``keys`` at ``bits_per_key``.

        10 bits/key with the optimal hash count (~7) gives ~1% false
        positives, LevelDB's default trade-off.
        """
        key_list = list(keys)
        bit_count = max(64, len(key_list) * bits_per_key)
        hash_count = max(1, min(30, round(bits_per_key * math.log(2))))
        bits = bytearray((bit_count + 7) // 8)
        bloom = cls(bits, bit_count, hash_count)
        for key in key_list:
            bloom._insert(key)
        return bloom

    def _probe_positions(self, key: bytes) -> Iterable[int]:
        h1 = zlib.crc32(key) & 0xFFFFFFFF
        h2 = zlib.adler32(key) & 0xFFFFFFFF
        # A zero step would probe the same bit k times.
        if h2 % self._bit_count == 0:
            h2 = 0x5BD1E995
        for i in range(self._hash_count):
            yield (h1 + i * h2) % self._bit_count

    def _insert(self, key: bytes) -> None:
        for position in self._probe_positions(key):
            self._bits[position >> 3] |= 1 << (position & 7)

    # -- queries ----------------------------------------------------------

    def may_contain(self, key: bytes) -> bool:
        """False means *definitely absent*; True means "probably present"."""
        return all(
            self._bits[position >> 3] & (1 << (position & 7))
            for position in self._probe_positions(key)
        )

    # -- persistence ------------------------------------------------------

    def to_bytes(self) -> bytes:
        return _HEADER.pack(self._hash_count, self._bit_count) + bytes(self._bits)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "BloomFilter":
        hash_count, bit_count = _HEADER.unpack_from(payload, 0)
        bits = bytearray(payload[_HEADER.size:])
        expected = (bit_count + 7) // 8
        if len(bits) != expected:
            raise ValueError(
                f"bloom payload has {len(bits)} bytes, expected {expected}"
            )
        return cls(bits, bit_count, hash_count)

    @property
    def bit_count(self) -> int:
        return self._bit_count

    @property
    def hash_count(self) -> int:
        return self._hash_count
