"""The sorted in-memory table at the front of the LSM store.

A memtable holds the most recent writes, including *tombstones* (deletion
markers) which must shadow older values living in SSTables.  Internally it
keeps a dict for O(1) point lookups and a sorted key list (maintained with
``bisect``) for ordered scans.
"""

from __future__ import annotations

import bisect
from typing import Iterator, Optional, Tuple

#: Internal marker distinguishing "deleted" from "absent".
TOMBSTONE = object()


class Memtable:
    """A mutable sorted map supporting tombstones.

    Entries map key -> value-bytes or :data:`TOMBSTONE`.  ``approximate_bytes``
    tracks the memory footprint used for flush decisions.
    """

    def __init__(self) -> None:
        self._entries: dict[bytes, object] = {}
        self._sorted_keys: list[bytes] = []
        self.approximate_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, key: bytes, value: bytes) -> None:
        self._insert(key, bytes(value))
        self.approximate_bytes += len(key) + len(value)

    def mark_deleted(self, key: bytes) -> None:
        """Record a tombstone for ``key`` (shadows SSTable values)."""
        self._insert(key, TOMBSTONE)
        self.approximate_bytes += len(key)

    def _insert(self, key: bytes, value: object) -> None:
        key = bytes(key)
        if key not in self._entries:
            bisect.insort(self._sorted_keys, key)
        self._entries[key] = value

    def lookup(self, key: bytes) -> Tuple[bool, Optional[bytes]]:
        """Return ``(found, value)``.

        ``(True, None)`` means a tombstone: the key is *known deleted* and
        older SSTables must not be consulted.  ``(False, None)`` means the
        memtable has no opinion.
        """
        entry = self._entries.get(bytes(key))
        if entry is None and bytes(key) not in self._entries:
            return False, None
        if entry is TOMBSTONE:
            return True, None
        return True, entry  # type: ignore[return-value]

    def scan(
        self, start: Optional[bytes], end: Optional[bytes]
    ) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        """Yield ``(key, value-or-None)`` in key order within ``[start, end)``.

        Tombstones are yielded with value ``None`` so the LSM merge can
        suppress shadowed SSTable entries.
        """
        lo = 0 if start is None else bisect.bisect_left(self._sorted_keys, bytes(start))
        hi = (
            len(self._sorted_keys)
            if end is None
            else bisect.bisect_left(self._sorted_keys, bytes(end))
        )
        for index in range(lo, hi):
            key = self._sorted_keys[index]
            entry = self._entries[key]
            yield key, (None if entry is TOMBSTONE else entry)  # type: ignore[misc]

    def entries_sorted(self) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        """All entries (tombstones as ``None``) in key order, for flushing."""
        return self.scan(None, None)

    def clear(self) -> None:
        """Drop every entry (after a flush to an SSTable)."""
        self._entries.clear()
        self._sorted_keys.clear()
        self.approximate_bytes = 0
