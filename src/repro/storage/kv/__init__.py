"""A from-scratch sorted key-value store.

Two interchangeable backends implement :class:`~repro.storage.kv.api.KVStore`:

* :class:`~repro.storage.kv.lsm.LSMStore` -- file-backed, LevelDB-like:
  writes go to a write-ahead log and a sorted memtable; full memtables are
  flushed to immutable SSTables; reads consult memtable then SSTables
  newest-first; background-style compaction merges SSTables.
* :class:`~repro.storage.kv.memstore.MemStore` -- an in-memory sorted map
  with the same semantics, used when durability is not under test.
"""

from pathlib import Path
from typing import Any, Optional, Union

from repro.storage.kv.api import KVStore
from repro.storage.kv.lsm import LSMStore
from repro.storage.kv.memstore import MemStore


def open_kv_store(
    backend: str, path: Optional[Union[str, Path]] = None, **kwargs: Any
) -> KVStore:
    """Open a KV store by backend name (``lsm`` or ``memory``).

    Args:
        backend: ``"lsm"`` (requires ``path``) or ``"memory"``.
        path: directory for the LSM backend's files.
        **kwargs: backend-specific options (e.g. ``memtable_limit``).
    """
    if backend == "memory":
        return MemStore()
    if backend == "lsm":
        if path is None:
            raise ValueError("the 'lsm' backend requires a path")
        return LSMStore(path, **kwargs)
    raise ValueError(f"unknown KV backend {backend!r}")


__all__ = ["KVStore", "LSMStore", "MemStore", "open_kv_store"]
