"""A from-scratch sorted key-value store with pluggable backends.

Every backend implements :class:`~repro.storage.kv.api.KVStore` and is
reached by name through the registry (:func:`open_kv_store`):

* ``lsm`` -- :class:`~repro.storage.kv.lsm.LSMStore`, file-backed,
  LevelDB-like: writes go to a write-ahead log and a sorted memtable;
  full memtables are flushed to immutable SSTables; reads consult
  memtable then SSTables newest-first (Bloom filters skip tables that
  definitely lack the key); compaction merges SSTables under a manifest.
* ``lsm-mmap`` -- the same store serving SSTable data sections through
  per-operation memory maps instead of resident copies.
* ``btree`` -- :class:`~repro.storage.kv.btree.BTreeStore`, a sorted
  in-memory map with WAL + checkpoint durability: every read is one
  in-process lookup, at the cost of holding the whole state in memory.
* ``memory`` -- :class:`~repro.storage.kv.memstore.MemStore`, an
  in-memory sorted map with the same semantics and no durability, used
  when the state-db is not the variable under test.

Factories accept one uniform option set (``memtable_limit``,
``compaction_trigger``, ``compaction``, ``durability``, ``metrics``,
``fs``) and each picks what it needs, so the ledger opens any backend
without per-backend plumbing.  New backends register a
:class:`~repro.storage.kv.registry.BackendSpec` via
:func:`register_backend`.
"""

from pathlib import Path
from typing import Any, Optional, Union

from repro.storage.kv.api import KVStore
from repro.storage.kv.btree import BTreeStore
from repro.storage.kv.lsm import LSMStore
from repro.storage.kv.memstore import MemStore
from repro.storage.kv.registry import (
    BackendSpec,
    backend_names,
    backend_specs,
    get_backend,
    open_kv_store,
    register_backend,
)

#: Option names shared by the LSM variants (documentation on the spec).
_LSM_OPTIONS = (
    "memtable_limit",
    "compaction_trigger",
    "compaction",
    "durability",
    "metrics",
    "fs",
)


def _make_memory(path: Optional[Union[str, Path]] = None, **_: Any) -> KVStore:
    """``memory`` ignores the path and every durability option."""
    return MemStore()


def _make_lsm(
    path: Optional[Union[str, Path]] = None, mmap_io: bool = False, **options: Any
) -> KVStore:
    assert path is not None  # registry enforces file_backed
    kwargs = {name: options[name] for name in _LSM_OPTIONS if name in options}
    return LSMStore(path, mmap_io=mmap_io, **kwargs)


def _make_lsm_mmap(
    path: Optional[Union[str, Path]] = None, **options: Any
) -> KVStore:
    options.pop("mmap_io", None)
    return _make_lsm(path, mmap_io=True, **options)


def _make_btree(path: Optional[Union[str, Path]] = None, **options: Any) -> KVStore:
    kwargs: dict[str, Any] = {}
    if "memtable_limit" in options:
        # The knob that means "mutations between durability events" maps
        # onto the btree's checkpoint cadence.
        kwargs["checkpoint_interval"] = options["memtable_limit"]
    for name in ("durability", "metrics", "fs"):
        if name in options:
            kwargs[name] = options[name]
    return BTreeStore(path, **kwargs)


register_backend(
    BackendSpec(
        name="memory",
        factory=_make_memory,
        file_backed=False,
        durable=False,
        description="sorted in-memory map, no durability (fast baseline)",
    )
)
register_backend(
    BackendSpec(
        name="lsm",
        factory=_make_lsm,
        file_backed=True,
        durable=True,
        description="LevelDB-like WAL + memtable + SSTables with compaction",
        options=_LSM_OPTIONS,
    )
)
register_backend(
    BackendSpec(
        name="lsm-mmap",
        factory=_make_lsm_mmap,
        file_backed=True,
        durable=True,
        description="LSM store with zero-copy mmap'd SSTable reads",
        options=_LSM_OPTIONS,
    )
)
register_backend(
    BackendSpec(
        name="btree",
        factory=_make_btree,
        file_backed=True,
        durable=True,
        description="sorted in-memory map with WAL + checkpoint durability",
        options=("memtable_limit", "durability", "metrics", "fs"),
    )
)

__all__ = [
    "BTreeStore",
    "BackendSpec",
    "KVStore",
    "LSMStore",
    "MemStore",
    "backend_names",
    "backend_specs",
    "get_backend",
    "open_kv_store",
    "register_backend",
]
