"""In-memory KV backend with the same semantics as the LSM store.

Used for experiments where state-db durability is not the variable under
test; keeps benchmark setup fast while preserving ordering semantics.
"""

from __future__ import annotations

import bisect
from typing import Iterator, Optional, Tuple

from repro.common.locks import make_lock
from repro.storage.kv.api import KVStore


class MemStore(KVStore):
    """A sorted in-memory map implementing :class:`KVStore`.

    Writes are serialized by an internal lock so the store can back
    concurrent ingestion; scans still materialize their key slice, so a
    racing writer fails a scan loudly instead of corrupting it.
    """

    def __init__(self) -> None:
        self._lock = make_lock("MemStore._lock")
        self._values: dict[bytes, bytes] = {}
        self._sorted_keys: list[bytes] = []

    def get(self, key: bytes) -> Optional[bytes]:
        self._check_open()
        self._check_key(key)
        return self._values.get(bytes(key))

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        self._check_key(key)
        self._check_value(value)
        key = bytes(key)
        with self._lock:
            if key not in self._values:
                bisect.insort(self._sorted_keys, key)
            self._values[key] = bytes(value)

    def delete(self, key: bytes) -> None:
        self._check_open()
        self._check_key(key)
        key = bytes(key)
        with self._lock:
            if key in self._values:
                del self._values[key]
                index = bisect.bisect_left(self._sorted_keys, key)
                del self._sorted_keys[index]

    def scan(
        self, start: Optional[bytes] = None, end: Optional[bytes] = None
    ) -> Iterator[Tuple[bytes, bytes]]:
        self._check_open()
        lo = 0 if start is None else bisect.bisect_left(self._sorted_keys, bytes(start))
        hi = (
            len(self._sorted_keys)
            if end is None
            else bisect.bisect_left(self._sorted_keys, bytes(end))
        )
        # Materialize the key slice so concurrent mutation during iteration
        # fails loudly (KeyError) instead of corrupting the scan silently.
        for key in self._sorted_keys[lo:hi]:
            yield key, self._values[key]

    def close(self) -> None:
        with self._lock:
            self._closed = True

    def __len__(self) -> int:
        return len(self._values)
