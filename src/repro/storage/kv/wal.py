"""Write-ahead log for the LSM store.

Every mutation is appended to the WAL before it touches the memtable, so a
crash between a write and the next SSTable flush loses nothing.  On open,
:func:`replay` feeds surviving records back into the memtable.

Record layout (all little-endian):

```
+----------------+----------------+------------------------+
| length: u32    | crc32: u32     | payload: length bytes  |
+----------------+----------------+------------------------+
payload := op:u8  key_len:uvarint  key  [value_len:uvarint  value]
```

A torn final record (truncated by a crash mid-append) is tolerated and
dropped, matching LevelDB's behaviour; a checksum mismatch anywhere else
raises :class:`~repro.common.errors.WalCorruptionError`.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Iterator, Optional, Tuple

from repro.common.codec import read_uvarint, write_uvarint
from repro.common.errors import WalCorruptionError
from repro.faults.fs import REAL_FS, FileSystem
from repro.storage.kv.api import OP_DELETE, OP_PUT

_HEADER = struct.Struct("<II")


def _encode_payload(op: int, key: bytes, value: Optional[bytes]) -> bytes:
    out = bytearray()
    out.append(op)
    write_uvarint(len(key), out)
    out.extend(key)
    if op == OP_PUT:
        assert value is not None
        write_uvarint(len(value), out)
        out.extend(value)
    return bytes(out)


def _decode_payload(payload: bytes) -> Tuple[int, bytes, Optional[bytes]]:
    if not payload:
        raise WalCorruptionError("empty WAL payload")
    op = payload[0]
    key_len, offset = read_uvarint(payload, 1)
    key = payload[offset : offset + key_len]
    offset += key_len
    if op == OP_PUT:
        value_len, offset = read_uvarint(payload, offset)
        value = payload[offset : offset + value_len]
        offset += value_len
    elif op == OP_DELETE:
        value = None
    else:
        raise WalCorruptionError(f"unknown WAL op {op}")
    if offset != len(payload):
        raise WalCorruptionError("WAL payload has trailing bytes")
    return op, key, value


class WriteAheadLog:
    """Append-only durability log with per-record CRC32 checksums.

    ``fsync=True`` (the ``fsync`` durability level) makes :meth:`sync`
    force records to the device; the default only flushes to the OS,
    which survives a process kill but not power loss.
    """

    def __init__(
        self,
        path: str | Path,
        fsync: bool = False,
        fs: FileSystem = REAL_FS,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fs = fs
        self._fsync = fsync
        self._file = fs.open(self.path, "ab")
        self.record_count = 0

    def append_put(self, key: bytes, value: bytes) -> None:
        """Log one put before it reaches the memtable."""
        self._append(_encode_payload(OP_PUT, key, value))

    def append_delete(self, key: bytes) -> None:
        """Log one deletion before it reaches the memtable."""
        self._append(_encode_payload(OP_DELETE, key, None))

    def _append(self, payload: bytes) -> None:
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        self._file.write(_HEADER.pack(len(payload), crc))
        self._file.write(payload)
        self.record_count += 1

    def sync(self) -> None:
        """Make appended records durable.

        Always flushes to the OS (survives a process kill); with the
        ``fsync`` durability level additionally calls ``os.fsync`` so the
        records survive power loss.
        """
        if self._fsync:
            self._fs.fsync(self._file)
        else:
            self._file.flush()

    def truncate(self) -> None:
        """Discard all records (called after a successful memtable flush)."""
        self._file.close()
        self._file = self._fs.open(self.path, "wb")
        self.record_count = 0

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    @property
    def size_bytes(self) -> int:
        self._file.flush()
        return os.path.getsize(self.path)


def replay(path: str | Path) -> Iterator[Tuple[int, bytes, Optional[bytes]]]:
    """Yield ``(op, key, value)`` for every intact record in the log.

    A truncated final record is silently dropped; a corrupt record followed
    by more data raises :class:`WalCorruptionError`.
    """
    path = Path(path)
    if not path.exists():
        return
    with open(path, "rb") as handle:
        data = handle.read()
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _HEADER.size > total:
            return  # torn header at tail
        length, crc = _HEADER.unpack_from(data, offset)
        body_start = offset + _HEADER.size
        body_end = body_start + length
        if body_end > total:
            return  # torn payload at tail
        payload = data[body_start:body_end]
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            if body_end == total:
                return  # corrupt tail record: drop it
            raise WalCorruptionError(
                f"WAL checksum mismatch at offset {offset} in {path}"
            )
        yield _decode_payload(payload)
        offset = body_end
