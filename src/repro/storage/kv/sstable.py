"""Immutable sorted-string-table files for the LSM store.

An SSTable holds a sorted run of ``(key, op, value)`` entries flushed from
a memtable (or produced by compaction).  The file layout is:

```
+-------------------+      entry := key_len:uvarint  key  op:u8
|   data section    |               [value_len:uvarint  value]   (op == PUT)
|   (sorted entries)|
+-------------------+      index entry := key_len:uvarint  key  offset:uvarint
|   sparse index    |
+-------------------+
|   bloom filter    |      (hash_count:u32  bit_count:u32  bits)
+-------------------+      footer := index_offset:u64  bloom_offset:u64
|   footer (36 B)   |                entry_count:u64  crc32:u32  magic:u64
+-------------------+
```

The sparse index records every ``INDEX_STRIDE``-th key with its byte offset
into the data section.  Readers keep the sparse index and the Bloom
filter in memory; a point lookup consults the Bloom filter first
("definitely absent" answers never touch the data section), then
binary-searches the index and scans forward at most one stride.
Tombstones are stored so newer tables can shadow older ones.

Durability: tables are written to a ``.tmp`` sibling and atomically
renamed into place, so a crash mid-write can never leave a torn ``.sst``
visible -- only a stray temp file the LSM store deletes on open.  The
footer's CRC32 covers every byte before it, so any surviving corruption
(bit rot, tampering) is caught at open as a typed
:class:`~repro.common.errors.SSTableError`.
"""

from __future__ import annotations

import bisect
import struct
import zlib
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.common.codec import read_uvarint, write_uvarint
from repro.common.errors import SSTableError
from repro.faults.fs import REAL_FS, FileSystem
from repro.storage.kv.api import OP_DELETE, OP_PUT
from repro.storage.kv.bloom import BloomFilter

MAGIC = 0x53535442_52455054  # "SSTB" "REPT" (v3: content CRC in footer)
INDEX_STRIDE = 16
BLOOM_BITS_PER_KEY = 10
_FOOTER = struct.Struct("<QQQIQ")

#: Suffix of in-progress table writes; never loaded, deleted on open.
TMP_SUFFIX = ".tmp"


def write_sstable(
    path: str | Path,
    entries: Iterator[Tuple[bytes, Optional[bytes]]],
    fs: FileSystem = REAL_FS,
    fsync: bool = False,
) -> int:
    """Write sorted ``(key, value-or-None)`` entries to ``path``.

    ``None`` values become tombstones.  Returns the number of entries
    written.  Keys must arrive in strictly increasing order.  The table
    is staged as ``path + ".tmp"`` and renamed into place, optionally
    fsynced first, so ``path`` either has the complete old content or the
    complete new content -- never a torn mix.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = bytearray()
    index: List[Tuple[bytes, int]] = []
    all_keys: List[bytes] = []
    count = 0
    previous_key: Optional[bytes] = None
    for key, value in entries:
        if previous_key is not None and key <= previous_key:
            raise SSTableError(
                f"keys out of order while writing {path.name}: "
                f"{previous_key!r} then {key!r}"
            )
        previous_key = key
        all_keys.append(key)
        if count % INDEX_STRIDE == 0:
            index.append((key, len(data)))
        write_uvarint(len(key), data)
        data.extend(key)
        if value is None:
            data.append(OP_DELETE)
        else:
            data.append(OP_PUT)
            write_uvarint(len(value), data)
            data.extend(value)
        count += 1

    index_offset = len(data)
    for key, offset in index:
        write_uvarint(len(key), data)
        data.extend(key)
        write_uvarint(offset, data)
    bloom_offset = len(data)
    data.extend(BloomFilter.build(all_keys, bits_per_key=BLOOM_BITS_PER_KEY).to_bytes())
    crc = zlib.crc32(data) & 0xFFFFFFFF
    data.extend(_FOOTER.pack(index_offset, bloom_offset, count, crc, MAGIC))
    tmp_path = path.with_name(path.name + TMP_SUFFIX)
    handle = fs.open(tmp_path, "wb")
    try:
        handle.write(data)
        if fsync:
            fs.fsync(handle)
    finally:
        handle.close()
    fs.replace(tmp_path, path)
    return count


class SSTableReader:
    """Read-only view over one SSTable file.

    The whole file is read into memory on open (tables are bounded by the
    memtable flush limit, so this mirrors LevelDB's block cache at our
    scale) but only the sparse index is parsed eagerly.
    """

    def __init__(self, path: str | Path, fs: FileSystem = REAL_FS) -> None:
        self.path = Path(path)
        handle = None
        try:
            handle = fs.open(self.path, "rb")
            self._raw = handle.read()
        except OSError as exc:
            # An injected or genuine I/O fault (EIO) while loading the
            # table surfaces as the same typed error as corruption: the
            # caller's quarantine/degrade handling covers both.
            raise SSTableError(f"{self.path.name}: read failed: {exc}") from exc
        finally:
            if handle is not None:
                handle.close()
        if len(self._raw) < _FOOTER.size:
            raise SSTableError(f"{self.path.name}: file too small for footer")
        index_offset, bloom_offset, count, crc, magic = _FOOTER.unpack_from(
            self._raw, len(self._raw) - _FOOTER.size
        )
        if magic != MAGIC:
            raise SSTableError(f"{self.path.name}: bad magic {magic:#x}")
        body = self._raw[: len(self._raw) - _FOOTER.size]
        if (zlib.crc32(body) & 0xFFFFFFFF) != crc:
            raise SSTableError(
                f"{self.path.name}: content checksum mismatch (corrupt table)"
            )
        if not index_offset <= bloom_offset <= len(self._raw) - _FOOTER.size:
            raise SSTableError(f"{self.path.name}: section offsets out of range")
        self.entry_count = count
        self._data_end = index_offset
        self._index_keys: List[bytes] = []
        self._index_offsets: List[int] = []
        self._parse_index(index_offset, bloom_offset)
        try:
            self.bloom = BloomFilter.from_bytes(
                self._raw[bloom_offset : len(self._raw) - _FOOTER.size]
            )
        except (ValueError, struct.error) as exc:
            raise SSTableError(f"{self.path.name}: bad bloom section: {exc}") from exc

    def _parse_index(self, index_offset: int, end: int) -> None:
        offset = index_offset
        while offset < end:
            key_len, offset = read_uvarint(self._raw, offset)
            key = self._raw[offset : offset + key_len]
            offset += key_len
            data_offset, offset = read_uvarint(self._raw, offset)
            self._index_keys.append(key)
            self._index_offsets.append(data_offset)

    # -- entry decoding --------------------------------------------------

    def _read_entry(self, offset: int) -> Tuple[bytes, Optional[bytes], int]:
        """Decode the entry at ``offset``; return ``(key, value, next_offset)``."""
        key_len, offset = read_uvarint(self._raw, offset)
        key = self._raw[offset : offset + key_len]
        offset += key_len
        op = self._raw[offset]
        offset += 1
        if op == OP_PUT:
            value_len, offset = read_uvarint(self._raw, offset)
            value: Optional[bytes] = self._raw[offset : offset + value_len]
            offset += value_len
        elif op == OP_DELETE:
            value = None
        else:
            raise SSTableError(f"{self.path.name}: unknown op {op} at {offset}")
        return key, value, offset

    def _seek_offset(self, key: bytes) -> int:
        """Data offset of the last index entry with key <= ``key`` (or 0)."""
        if not self._index_keys:
            return self._data_end  # empty table: start == end
        position = bisect.bisect_right(self._index_keys, key) - 1
        if position < 0:
            return self._index_offsets[0]
        return self._index_offsets[position]

    # -- public API -------------------------------------------------------

    def lookup(self, key: bytes) -> Tuple[bool, Optional[bytes]]:
        """Return ``(found, value)``; ``(True, None)`` means a tombstone."""
        if not self.bloom.may_contain(key):
            return False, None  # definitely absent, no data access
        if not self._index_keys or key < self._index_keys[0]:
            return False, None
        offset = self._seek_offset(key)
        while offset < self._data_end:
            entry_key, value, offset = self._read_entry(offset)
            if entry_key == key:
                return True, value
            if entry_key > key:
                return False, None
        return False, None

    def scan(
        self, start: Optional[bytes], end: Optional[bytes]
    ) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        """Yield ``(key, value-or-tombstone-None)`` within ``[start, end)``."""
        offset = 0 if start is None else self._seek_offset(start)
        while offset < self._data_end:
            key, value, offset = self._read_entry(offset)
            if start is not None and key < start:
                continue
            if end is not None and key >= end:
                return
            yield key, value

    @property
    def smallest_key(self) -> Optional[bytes]:
        return self._index_keys[0] if self._index_keys else None
