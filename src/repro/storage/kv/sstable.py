"""Immutable sorted-string-table files for the LSM store.

An SSTable holds a sorted run of ``(key, op, value)`` entries flushed from
a memtable (or produced by compaction).  The file layout is:

```
+-------------------+      entry := key_len:uvarint  key  op:u8
|   data section    |               [value_len:uvarint  value]   (op == PUT)
|   (sorted entries)|
+-------------------+      index entry := key_len:uvarint  key  offset:uvarint
|   sparse index    |
+-------------------+
|   bloom filter    |      (hash_count:u32  bit_count:u32  bits)
+-------------------+      footer := index_offset:u64  bloom_offset:u64
|   footer (36 B)   |                entry_count:u64  crc32:u32  magic:u64
+-------------------+
```

The sparse index records every ``INDEX_STRIDE``-th key with its byte offset
into the data section.  Readers keep the sparse index and the Bloom
filter in memory; a point lookup consults the Bloom filter first
("definitely absent" answers never touch the data section), then
binary-searches the index and scans forward at most one stride.
Tombstones are stored so newer tables can shadow older ones.

Durability: tables are written to a ``.tmp`` sibling and atomically
renamed into place, so a crash mid-write can never leave a torn ``.sst``
visible -- only a stray temp file the LSM store deletes on open.  The
footer's CRC32 covers every byte before it, so any surviving corruption
(bit rot, tampering) is caught at open as a typed
:class:`~repro.common.errors.SSTableError`.
"""

from __future__ import annotations

import bisect
import mmap
import struct
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, cast

from repro.common.codec import read_uvarint, write_uvarint
from repro.common.errors import SSTableError
from repro.faults.fs import REAL_FS, FileSystem
from repro.storage.kv.api import OP_DELETE, OP_PUT
from repro.storage.kv.bloom import BloomFilter

MAGIC = 0x53535442_52455054  # "SSTB" "REPT" (v3: content CRC in footer)
INDEX_STRIDE = 16
BLOOM_BITS_PER_KEY = 10
_FOOTER = struct.Struct("<QQQIQ")

#: Suffix of in-progress table writes; never loaded, deleted on open.
TMP_SUFFIX = ".tmp"


def write_sstable(
    path: str | Path,
    entries: Iterator[Tuple[bytes, Optional[bytes]]],
    fs: FileSystem = REAL_FS,
    fsync: bool = False,
) -> int:
    """Write sorted ``(key, value-or-None)`` entries to ``path``.

    ``None`` values become tombstones.  Returns the number of entries
    written.  Keys must arrive in strictly increasing order.  The table
    is staged as ``path + ".tmp"`` and renamed into place, optionally
    fsynced first, so ``path`` either has the complete old content or the
    complete new content -- never a torn mix.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = bytearray()
    index: List[Tuple[bytes, int]] = []
    all_keys: List[bytes] = []
    count = 0
    previous_key: Optional[bytes] = None
    for key, value in entries:
        if previous_key is not None and key <= previous_key:
            raise SSTableError(
                f"keys out of order while writing {path.name}: "
                f"{previous_key!r} then {key!r}"
            )
        previous_key = key
        all_keys.append(key)
        if count % INDEX_STRIDE == 0:
            index.append((key, len(data)))
        write_uvarint(len(key), data)
        data.extend(key)
        if value is None:
            data.append(OP_DELETE)
        else:
            data.append(OP_PUT)
            write_uvarint(len(value), data)
            data.extend(value)
        count += 1

    index_offset = len(data)
    for key, offset in index:
        write_uvarint(len(key), data)
        data.extend(key)
        write_uvarint(offset, data)
    bloom_offset = len(data)
    data.extend(BloomFilter.build(all_keys, bits_per_key=BLOOM_BITS_PER_KEY).to_bytes())
    crc = zlib.crc32(data) & 0xFFFFFFFF
    data.extend(_FOOTER.pack(index_offset, bloom_offset, count, crc, MAGIC))
    tmp_path = path.with_name(path.name + TMP_SUFFIX)
    handle = fs.open(tmp_path, "wb")
    try:
        handle.write(data)
        if fsync:
            fs.fsync(handle)
    finally:
        handle.close()
    fs.replace(tmp_path, path)
    return count


class SSTableReader:
    """Read-only view over one SSTable file.

    Two data-access modes share one verification pass (the whole file is
    read once at open so the CRC covers every byte either way):

    * **eager** (default): the raw bytes stay in memory and every lookup
      or scan decodes from them -- LevelDB's block cache at our scale.
    * **mmap** (``mmap_io=True`` on a filesystem that supports it): only
      the sparse index and the Bloom filter are kept; the data section is
      memory-mapped *per operation*, so resident memory is the index and
      the OS page cache serves the data pages without a userspace copy.
      Each lookup maps for the duration of the call; each scan maps for
      the lifetime of its iterator.  The map is opened by path, so the
      file must still exist when the read starts -- which is exactly why
      the LSM store defers deleting compacted tables until every reader
      that might still consult them has drained.
    """

    def __init__(
        self, path: str | Path, fs: FileSystem = REAL_FS, mmap_io: bool = False
    ) -> None:
        self.path = Path(path)
        self._fs = fs
        self.mmap_io = bool(mmap_io) and getattr(fs, "supports_mmap", False)
        handle = None
        try:
            handle = fs.open(self.path, "rb")
            raw = handle.read()
        except OSError as exc:
            # An injected or genuine I/O fault (EIO) while loading the
            # table surfaces as the same typed error as corruption: the
            # caller's quarantine/degrade handling covers both.
            raise SSTableError(f"{self.path.name}: read failed: {exc}") from exc
        finally:
            if handle is not None:
                handle.close()
        if len(raw) < _FOOTER.size:
            raise SSTableError(f"{self.path.name}: file too small for footer")
        index_offset, bloom_offset, count, crc, magic = _FOOTER.unpack_from(
            raw, len(raw) - _FOOTER.size
        )
        if magic != MAGIC:
            raise SSTableError(f"{self.path.name}: bad magic {magic:#x}")
        body = raw[: len(raw) - _FOOTER.size]
        if (zlib.crc32(body) & 0xFFFFFFFF) != crc:
            raise SSTableError(
                f"{self.path.name}: content checksum mismatch (corrupt table)"
            )
        if not index_offset <= bloom_offset <= len(raw) - _FOOTER.size:
            raise SSTableError(f"{self.path.name}: section offsets out of range")
        self.entry_count = count
        self._data_end = index_offset
        self._index_keys: List[bytes] = []
        self._index_offsets: List[int] = []
        self._parse_index(raw, index_offset, bloom_offset)
        try:
            self.bloom = BloomFilter.from_bytes(
                raw[bloom_offset : len(raw) - _FOOTER.size]
            )
        except (ValueError, struct.error) as exc:
            raise SSTableError(f"{self.path.name}: bad bloom section: {exc}") from exc
        # In mmap mode the verified bytes are dropped: data pages come
        # from per-operation maps, index and bloom stay parsed above.
        self._raw: Optional[bytes] = None if self.mmap_io else raw

    def _parse_index(self, raw: bytes, index_offset: int, end: int) -> None:
        offset = index_offset
        while offset < end:
            key_len, offset = read_uvarint(raw, offset)
            key = raw[offset : offset + key_len]
            offset += key_len
            data_offset, offset = read_uvarint(raw, offset)
            self._index_keys.append(key)
            self._index_offsets.append(data_offset)

    @contextmanager
    def _buffer(self) -> Iterator[bytes]:
        """The data section as a readable buffer.

        Eager mode yields the in-memory bytes; mmap mode opens the file
        and maps it for the duration of the ``with`` block.  A missing or
        unreadable file (e.g. the table was deleted after this reader was
        snapshotted) raises :class:`SSTableError` at entry.
        """
        if self._raw is not None:
            yield self._raw
            return
        handle = None
        mapped: Optional[mmap.mmap] = None
        try:
            handle = self._fs.open(self.path, "rb")
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as exc:
            if handle is not None:
                handle.close()
            raise SSTableError(f"{self.path.name}: read failed: {exc}") from exc
        try:
            # mmap quacks like bytes for every operation the decoders
            # use (indexing, slicing, len).
            yield cast(bytes, mapped)
        finally:
            mapped.close()
            handle.close()

    # -- entry decoding --------------------------------------------------

    def _read_entry(
        self, buf: bytes, offset: int
    ) -> Tuple[bytes, Optional[bytes], int]:
        """Decode the entry at ``offset``; return ``(key, value, next_offset)``."""
        key_len, offset = read_uvarint(buf, offset)
        key = buf[offset : offset + key_len]
        offset += key_len
        op = buf[offset]
        offset += 1
        if op == OP_PUT:
            value_len, offset = read_uvarint(buf, offset)
            value: Optional[bytes] = buf[offset : offset + value_len]
            offset += value_len
        elif op == OP_DELETE:
            value = None
        else:
            raise SSTableError(f"{self.path.name}: unknown op {op} at {offset}")
        return key, value, offset

    def _seek_offset(self, key: bytes) -> int:
        """Data offset of the last index entry with key <= ``key`` (or 0)."""
        if not self._index_keys:
            return self._data_end  # empty table: start == end
        position = bisect.bisect_right(self._index_keys, key) - 1
        if position < 0:
            return self._index_offsets[0]
        return self._index_offsets[position]

    # -- public API -------------------------------------------------------

    def may_contain(self, key: bytes) -> bool:
        """Bloom pre-check: ``False`` means definitely absent (no data
        access needed); ``True`` means the data section must be consulted."""
        return self.bloom.may_contain(key)

    def lookup(self, key: bytes) -> Tuple[bool, Optional[bytes]]:
        """Return ``(found, value)``; ``(True, None)`` means a tombstone."""
        if not self.bloom.may_contain(key):
            return False, None  # definitely absent, no data access
        if not self._index_keys or key < self._index_keys[0]:
            return False, None
        with self._buffer() as buf:
            offset = self._seek_offset(key)
            while offset < self._data_end:
                entry_key, value, offset = self._read_entry(buf, offset)
                if entry_key == key:
                    return True, value
                if entry_key > key:
                    return False, None
        return False, None

    def scan(
        self, start: Optional[bytes], end: Optional[bytes]
    ) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        """Yield ``(key, value-or-tombstone-None)`` within ``[start, end)``.

        In mmap mode the map is established when iteration *starts* (the
        generator body runs on the first ``next()``) and held until the
        iterator is exhausted or closed.
        """
        with self._buffer() as buf:
            offset = 0 if start is None else self._seek_offset(start)
            while offset < self._data_end:
                key, value, offset = self._read_entry(buf, offset)
                if start is not None and key < start:
                    continue
                if end is not None and key >= end:
                    return
                yield bytes(key), None if value is None else bytes(value)

    @property
    def smallest_key(self) -> Optional[bytes]:
        return self._index_keys[0] if self._index_keys else None
