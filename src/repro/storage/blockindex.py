"""Block-location index: block number -> (file, offset, length).

Fabric's peer keeps a LevelDB "block index" so a block can be fetched
without scanning block files.  Ours is an append-only index file with
fixed-size records, rebuilt into memory on open.

Record layout (little-endian): ``block_num:u64  file_num:u32  offset:u64
length:u32  crc32:u32`` -- 28 bytes per block, the CRC covering the
first 24.  A torn or corrupt *final* record is dropped on load (crash
mid-append); damage anywhere else raises
:class:`~repro.common.errors.BlockFileError`, which the block store
answers by rebuilding the index from the block files themselves -- the
index is entirely derived data.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from repro.common.errors import BlockFileError
from repro.faults.fs import REAL_FS, FileSystem

_BODY = struct.Struct("<QIQI")
_RECORD_SIZE = _BODY.size + 4  # body + crc32


@dataclass(frozen=True)
class BlockLocation:
    """Where a serialized block lives on the simulated file system."""

    file_num: int
    offset: int
    length: int


class BlockIndex:
    """Persistent, append-only mapping of block number to location.

    Block numbers are dense (0, 1, 2, ...) because the chain only appends,
    so the in-memory form is a plain list.
    """

    def __init__(
        self,
        path: str | Path,
        fsync: bool = False,
        fs: FileSystem = REAL_FS,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fs = fs
        self._fsync = fsync
        self._locations: List[BlockLocation] = []
        self._load()
        self._file = fs.open(self.path, "ab")

    def _load(self) -> None:
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        offset = 0
        while offset + _RECORD_SIZE <= len(data):
            body = data[offset : offset + _BODY.size]
            (stored_crc,) = struct.unpack_from(
                "<I", data, offset + _BODY.size
            )
            is_tail = offset + _RECORD_SIZE == len(data)
            if (zlib.crc32(body) & 0xFFFFFFFF) != stored_crc:
                if is_tail:
                    break  # crash-torn final record: drop it
                raise BlockFileError(
                    f"block index checksum mismatch at offset {offset}"
                )
            block_num, file_num, block_offset, length = _BODY.unpack(body)
            if block_num != len(self._locations):
                raise BlockFileError(
                    f"block index out of sequence: expected {len(self._locations)}, "
                    f"found {block_num}"
                )
            self._locations.append(BlockLocation(file_num, block_offset, length))
            offset += _RECORD_SIZE
        # Trailing partial record (< _RECORD_SIZE bytes) is a torn tail:
        # silently ignored, the caller re-appends from the block files.

    def _encode(self, block_num: int, location: BlockLocation) -> bytes:
        body = _BODY.pack(
            block_num, location.file_num, location.offset, location.length
        )
        return body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)

    def append(self, location: BlockLocation) -> int:
        """Record the location of the next block; returns its block number."""
        block_num = len(self._locations)
        self._locations.append(location)
        self._file.write(self._encode(block_num, location))
        return block_num

    def lookup(self, block_num: int) -> Optional[BlockLocation]:
        """Location of ``block_num`` or ``None`` beyond the index."""
        if 0 <= block_num < len(self._locations):
            return self._locations[block_num]
        return None

    @property
    def height(self) -> int:
        """Number of indexed blocks (== chain height)."""
        return len(self._locations)

    def truncate_to(self, height: int) -> None:
        """Drop every record past ``height`` (index got ahead of the block
        files in a crash).  Rewritten atomically via a temp file."""
        if height > len(self._locations):
            raise BlockFileError(
                f"cannot truncate index to {height}, only {len(self._locations)} "
                "records present"
            )
        if height == len(self._locations):
            return
        self._file.flush()
        self._file.close()
        self._locations = self._locations[:height]
        tmp_path = self.path.with_name(self.path.name + ".tmp")
        handle = self._fs.open(tmp_path, "wb")
        try:
            for block_num, location in enumerate(self._locations):
                handle.write(self._encode(block_num, location))
            if self._fsync:
                self._fs.fsync(handle)
        finally:
            handle.close()
        self._fs.replace(tmp_path, self.path)
        self._file = self._fs.open(self.path, "ab")

    def sync(self) -> None:
        if self._fsync:
            self._fs.fsync(self._file)
        else:
            self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()
