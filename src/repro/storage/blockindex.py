"""Block-location index: block number -> (file, offset, length).

Fabric's peer keeps a LevelDB "block index" so a block can be fetched
without scanning block files.  Ours is an append-only index file with
fixed-size records, rebuilt into memory on open.

Record layout (little-endian): ``block_num:u64  file_num:u32  offset:u64
length:u32`` -- 24 bytes per block.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from repro.common.errors import BlockFileError

_RECORD = struct.Struct("<QIQI")


@dataclass(frozen=True)
class BlockLocation:
    """Where a serialized block lives on the simulated file system."""

    file_num: int
    offset: int
    length: int


class BlockIndex:
    """Persistent, append-only mapping of block number to location.

    Block numbers are dense (0, 1, 2, ...) because the chain only appends,
    so the in-memory form is a plain list.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._locations: List[BlockLocation] = []
        self._load()
        self._file = open(self.path, "ab")

    def _load(self) -> None:
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        usable = len(data) - (len(data) % _RECORD.size)  # drop torn tail
        for offset in range(0, usable, _RECORD.size):
            block_num, file_num, block_offset, length = _RECORD.unpack_from(
                data, offset
            )
            if block_num != len(self._locations):
                raise BlockFileError(
                    f"block index out of sequence: expected {len(self._locations)}, "
                    f"found {block_num}"
                )
            self._locations.append(BlockLocation(file_num, block_offset, length))

    def append(self, location: BlockLocation) -> int:
        """Record the location of the next block; returns its block number."""
        block_num = len(self._locations)
        self._locations.append(location)
        self._file.write(
            _RECORD.pack(block_num, location.file_num, location.offset, location.length)
        )
        return block_num

    def lookup(self, block_num: int) -> Optional[BlockLocation]:
        """Location of ``block_num`` or ``None`` beyond the index."""
        if 0 <= block_num < len(self._locations):
            return self._locations[block_num]
        return None

    @property
    def height(self) -> int:
        """Number of indexed blocks (== chain height)."""
        return len(self._locations)

    def sync(self) -> None:
        self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()
