"""Storage substrate: a from-scratch sorted KV store and ledger block files.

Fabric keeps its state database in LevelDB (or CouchDB) and its blocks in
append-only files on the peer's file system.  This subpackage provides both
substrates:

* :mod:`repro.storage.kv` -- pluggable state-db backends behind one
  registry: a LevelDB-like LSM store (memtable, write-ahead log,
  SSTables, compaction; optionally with mmap'd reads), a checkpointing
  sorted in-memory store, and a plain in-memory backend, all behind the
  same interface.
* :mod:`repro.storage.blockfile` / :mod:`repro.storage.blockindex` --
  append-only block files with size-based rollover and a block-location
  index, mirroring the peer's block storage.
"""

from repro.storage.blockfile import BlockFileManager
from repro.storage.blockindex import BlockIndex, BlockLocation
from repro.storage.kv import (
    BackendSpec,
    BTreeStore,
    KVStore,
    LSMStore,
    MemStore,
    backend_names,
    backend_specs,
    get_backend,
    open_kv_store,
    register_backend,
)

__all__ = [
    "BTreeStore",
    "BackendSpec",
    "BlockFileManager",
    "BlockIndex",
    "BlockLocation",
    "KVStore",
    "LSMStore",
    "MemStore",
    "backend_names",
    "backend_specs",
    "get_backend",
    "open_kv_store",
    "register_backend",
]
