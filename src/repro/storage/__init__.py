"""Storage substrate: a from-scratch sorted KV store and ledger block files.

Fabric keeps its state database in LevelDB (or CouchDB) and its blocks in
append-only files on the peer's file system.  This subpackage provides both
substrates:

* :mod:`repro.storage.kv` -- a LevelDB-like LSM key-value store (memtable,
  write-ahead log, SSTables, compaction) plus an in-memory backend behind
  the same interface.
* :mod:`repro.storage.blockfile` / :mod:`repro.storage.blockindex` --
  append-only block files with size-based rollover and a block-location
  index, mirroring the peer's block storage.
"""

from repro.storage.blockfile import BlockFileManager
from repro.storage.blockindex import BlockIndex, BlockLocation
from repro.storage.kv import KVStore, LSMStore, MemStore, open_kv_store

__all__ = [
    "BlockFileManager",
    "BlockIndex",
    "BlockLocation",
    "KVStore",
    "LSMStore",
    "MemStore",
    "open_kv_store",
]
