"""Ingestion strategies: SE and ME (Section IV-2).

Events are sorted on time and inserted sequentially:

* **SE (single event)** -- one event per transaction.
* **ME (multiple events)** -- each transaction takes the *maximal* batch of
  consecutive events in which no two events share a key.  The constraint
  exists because one Fabric transaction persists only one state per key
  (Section II); batches therefore carry at most one event per shipment or
  container.

Both strategies submit through the real gateway, so ingestion exercises
the full endorse / order / validate / commit pipeline and its costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.common.errors import WorkloadError
from repro.common.timeutils import Stopwatch
from repro.fabric.gateway import Gateway
from repro.temporal.events import Event


@dataclass
class IngestionReport:
    """What one ingestion run did."""

    strategy: str
    events: int
    transactions: int
    seconds: float


def batch_events_me(events: List[Event]) -> Iterator[List[Event]]:
    """Split time-ordered events into maximal batches of distinct keys.

    Greedy and order-preserving: a batch ends at the first event whose key
    already appears in it (maximality), then a new batch starts there.
    """
    batch: List[Event] = []
    seen: set[str] = set()
    for event in events:
        if event.key in seen:
            yield batch
            batch = []
            seen = set()
        batch.append(event)
        seen.add(event.key)
    if batch:
        yield batch


def ingest(
    gateway: Gateway,
    events: List[Event],
    chaincode: str,
    strategy: str = "me",
) -> IngestionReport:
    """Ingest ``events`` through ``gateway`` with the given strategy.

    ``events`` must already be sorted on time (the paper sorts before
    ingesting); out-of-order input is rejected rather than silently
    re-sorted, because ingestion order is what gives histories their
    temporal order.
    """
    _require_sorted(events)
    watch = Stopwatch().start()
    transactions = 0
    if strategy == "se":
        for event in events:
            gateway.submit_transaction(
                chaincode,
                "record_event",
                [event.key, event.other, event.time, event.kind],
                timestamp=event.time,
            )
            transactions += 1
    elif strategy == "me":
        for batch in batch_events_me(events):
            gateway.submit_transaction(
                chaincode,
                "record_events",
                [[e.key, e.other, e.time, e.kind] for e in batch],
                timestamp=batch[-1].time,
            )
            transactions += 1
    else:
        raise WorkloadError(f"unknown ingestion strategy {strategy!r}")
    gateway.flush()
    return IngestionReport(
        strategy=strategy,
        events=len(events),
        transactions=transactions,
        seconds=watch.stop(),
    )


def ingest_checked(
    gateway: Gateway,
    events: List[Event],
    chaincode: str,
    flush_each: bool = True,
) -> IngestionReport:
    """Ingest with *checked* recording: every transaction reads the
    entity's current state before writing (the read-write workload the
    paper's conclusion earmarks).

    Because each transaction reads the key it writes, a transaction
    endorsed before its predecessor commits simulates against stale
    state; ``flush_each`` therefore commits every transaction in its own
    block.  Passing ``flush_each=False`` demonstrates the failure: an
    unload endorsed before its load commits is rejected by the business
    rule at endorsement time (and duplicate writers that do pass
    endorsement are invalidated by MVCC at commit).
    """
    _require_sorted(events)
    watch = Stopwatch().start()
    transactions = 0
    for event in events:
        gateway.submit_transaction(
            chaincode,
            "record_event_checked",
            [event.key, event.other, event.time, event.kind],
            timestamp=event.time,
        )
        transactions += 1
        if flush_each:
            gateway.flush()
    gateway.flush()
    return IngestionReport(
        strategy="checked",
        events=len(events),
        transactions=transactions,
        seconds=watch.stop(),
    )


def _require_sorted(events: List[Event]) -> None:
    for previous, current in zip(events, events[1:]):
        if current.time < previous.time:
            raise WorkloadError(
                "events must be sorted on time before ingestion "
                f"({previous.time} then {current.time})"
            )
