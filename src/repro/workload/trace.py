"""Event-trace persistence: save and replay workloads as CSV.

Lets users run the benchmark harness over their own traces (e.g. real
supply-chain event logs) instead of the synthetic generator, and makes
generated workloads reproducible artifacts.

Format: a header row then ``time,key,other,kind`` per event, sorted by
time (the ingestion contract).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List

from repro.common.errors import TemporalQueryError, WorkloadError
from repro.temporal.events import Event

_FIELDS = ["time", "key", "other", "kind"]


def save_trace(events: List[Event], path: str | Path) -> int:
    """Write ``events`` to ``path`` as CSV; returns the row count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_FIELDS)
        for event in events:
            writer.writerow([event.time, event.key, event.other, event.kind])
    return len(events)


def load_trace(path: str | Path) -> List[Event]:
    """Read a CSV trace; validates the schema and the sort order."""
    path = Path(path)
    if not path.exists():
        raise WorkloadError(f"trace file {path} does not exist")
    events: List[Event] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _FIELDS:
            raise WorkloadError(
                f"bad trace header in {path.name}: expected {_FIELDS}, got {header}"
            )
        for line_number, row in enumerate(reader, start=2):
            if len(row) != len(_FIELDS):
                raise WorkloadError(
                    f"{path.name}:{line_number}: expected {len(_FIELDS)} columns, "
                    f"got {len(row)}"
                )
            time_raw, key, other, kind = row
            try:
                time = int(time_raw)
            except ValueError:
                raise WorkloadError(
                    f"{path.name}:{line_number}: non-integer time {time_raw!r}"
                ) from None
            try:
                events.append(Event(time=time, key=key, other=other, kind=kind))
            except (TemporalQueryError, ValueError, TypeError) as exc:
                raise WorkloadError(f"{path.name}:{line_number}: {exc}") from exc
    for previous, current in zip(events, events[1:]):
        if current.time < previous.time:
            raise WorkloadError(
                f"{path.name}: trace not sorted on time "
                f"({previous.time} then {current.time})"
            )
    return events
