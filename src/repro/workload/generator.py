"""The synthetic event generator (Section IV-2).

Parameters match the paper: entity counts ``(nS, nC, nTr)``, events per
key ``nEv``, load-time distribution ``dEv`` and timeline length
``t_max``.  For each key:

1. ``nEv / 2`` load times are drawn from the distribution, then repaired
   to be strictly increasing with room for an unload between consecutive
   loads;
2. each unload time is "randomly chosen at any point before the start of
   the next load event" (the last one anywhere before ``t_max``];
3. every load/unload pair names a random counterpart -- a container for
   shipment keys, a truck for container keys.

The generator guarantees the invariants the join logic and the tests rely
on: per key, events strictly increase in time and alternate load/unload
with matching counterparts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.errors import WorkloadError
from repro.temporal.events import LOAD, UNLOAD, Event
from repro.workload import model
from repro.workload.distributions import make_sampler


@dataclass(frozen=True)
class WorkloadConfig:
    """Generator parameters (the paper's ``nS, nC, nTr, nEv, dEv, t_max``)."""

    name: str
    n_shipments: int
    n_containers: int
    n_trucks: int
    events_per_key: int
    t_max: int
    distribution: str = "uniform"
    seed: int = 7
    #: Ingestion strategy the dataset is meant to be loaded with
    #: ("se" or "me"); carried here because the paper fixes it per dataset.
    ingestion: str = "me"

    def __post_init__(self) -> None:
        for label, value in (
            ("n_shipments", self.n_shipments),
            ("n_containers", self.n_containers),
            ("n_trucks", self.n_trucks),
            ("events_per_key", self.events_per_key),
            ("t_max", self.t_max),
        ):
            if value <= 0:
                raise WorkloadError(f"{label} must be positive, got {value}")
        if self.events_per_key % 2:
            raise WorkloadError(
                f"events_per_key must be even (load/unload pairs), "
                f"got {self.events_per_key}"
            )
        if self.distribution not in ("uniform", "zipf", "burst"):
            raise WorkloadError(f"unknown distribution {self.distribution!r}")
        if self.ingestion not in ("se", "me"):
            raise WorkloadError(f"ingestion must be 'se' or 'me', got {self.ingestion!r}")
        # Each pair needs at least 2 timeline slots (load < unload).
        if self.t_max < self.events_per_key * 2:
            raise WorkloadError(
                f"t_max={self.t_max} too small for {self.events_per_key} "
                f"events per key"
            )

    @property
    def key_count(self) -> int:
        """Keys carrying events: shipments + containers (trucks only appear
        as values)."""
        return self.n_shipments + self.n_containers

    @property
    def total_events(self) -> int:
        return self.key_count * self.events_per_key


@dataclass
class WorkloadData:
    """A generated workload: the global time-ordered event stream."""

    config: WorkloadConfig
    events: List[Event]
    shipments: List[str] = field(default_factory=list)
    containers: List[str] = field(default_factory=list)
    trucks: List[str] = field(default_factory=list)

    def events_for_key(self, key: str) -> List[Event]:
        """This key's events, in time order."""
        return [event for event in self.events if event.key == key]

    def events_by_key(self) -> Dict[str, List[Event]]:
        """All events grouped per key, preserving time order."""
        grouped: Dict[str, List[Event]] = {}
        for event in self.events:
            grouped.setdefault(event.key, []).append(event)
        return grouped


def generate(config: WorkloadConfig) -> WorkloadData:
    """Generate the full event stream for ``config``, sorted by time."""
    rng = random.Random(config.seed)
    shipments = [model.shipment_id(i) for i in range(config.n_shipments)]
    containers = [model.container_id(i) for i in range(config.n_containers)]
    trucks = [model.truck_id(i) for i in range(config.n_trucks)]

    events: List[Event] = []
    for shipment in shipments:
        events.extend(_events_for_key(config, rng, shipment, containers))
    for container in containers:
        events.extend(_events_for_key(config, rng, container, trucks))
    events.sort()
    return WorkloadData(
        config=config,
        events=events,
        shipments=shipments,
        containers=containers,
        trucks=trucks,
    )


def _events_for_key(
    config: WorkloadConfig,
    rng: random.Random,
    key: str,
    counterparts: List[str],
) -> List[Event]:
    pair_count = config.events_per_key // 2
    load_times = _draw_load_times(config, rng, pair_count)
    events: List[Event] = []
    for index, load_time in enumerate(load_times):
        # Unload anywhere strictly after the load and strictly before the
        # next load (the last pair may run until t_max).
        if index + 1 < len(load_times):
            unload_bound = load_times[index + 1] - 1
        else:
            unload_bound = config.t_max
        unload_time = rng.randint(load_time + 1, max(load_time + 1, unload_bound))
        other = rng.choice(counterparts)
        events.append(Event(time=load_time, key=key, other=other, kind=LOAD))
        events.append(Event(time=unload_time, key=key, other=other, kind=UNLOAD))
    return events


def _draw_load_times(
    config: WorkloadConfig, rng: random.Random, pair_count: int
) -> List[int]:
    """Draw load times from ``dEv`` and repair them to leave room for an
    unload between consecutive loads (gap >= 2)."""
    sampler = make_sampler(config.distribution, rng, config.t_max)
    # Loads may not start at t_max (the unload needs a later slot).
    times = sorted(min(sampler.sample(), config.t_max - 1) for _ in range(pair_count))
    repaired: List[int] = []
    previous = -1
    for time in times:
        time = max(time, previous + 2)
        repaired.append(time)
        previous = time
    if repaired and repaired[-1] >= config.t_max:
        # The repair pushed the tail past the timeline; re-space the
        # overflowing suffix backwards from t_max - 1.
        limit = config.t_max - 1
        for index in range(len(repaired) - 1, -1, -1):
            if repaired[index] > limit:
                repaired[index] = limit
            limit = repaired[index] - 2
            if limit < 1 and index > 0:
                raise WorkloadError(
                    f"cannot fit {pair_count} load/unload pairs for key into "
                    f"t_max={config.t_max}"
                )
    return repaired
