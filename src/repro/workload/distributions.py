"""Event-time samplers: uniform and zipf (Section IV-2).

DS1/DS3 draw load times uniformly over ``(0, t_max]``.  DS2 draws them
zipf-distributed: "for each key, the zipf parameter is chosen randomly
between 0 and 1", which skews events toward the start of the timeline
(the paper observes "more than half the events occur within interval
(0-10K]" for DS1's geometry).

The zipf sampler discretizes the timeline into ranked buckets with
probability proportional to ``1 / rank**a`` (rank 1 = earliest bucket),
then samples uniformly inside the chosen bucket.
"""

from __future__ import annotations

import bisect
import random
from abc import ABC, abstractmethod
from typing import List

from repro.common.errors import WorkloadError


class TimeSampler(ABC):
    """Draws logical timestamps in ``1..t_max``."""

    def __init__(self, rng: random.Random, t_max: int) -> None:
        if t_max < 1:
            raise WorkloadError(f"t_max must be >= 1, got {t_max}")
        self._rng = rng
        self.t_max = t_max

    @abstractmethod
    def sample(self) -> int:
        """One timestamp in ``[1, t_max]``."""


class UniformSampler(TimeSampler):
    """Uniform over ``[1, t_max]``."""

    def sample(self) -> int:
        return self._rng.randint(1, self.t_max)


class ZipfSampler(TimeSampler):
    """Zipf-ranked bucket sampler with exponent ``a`` in ``[0, 1]``.

    ``a = 0`` degenerates to uniform; ``a = 1`` is strongly front-loaded.
    """

    #: Number of timeline buckets the rank distribution is defined over.
    BUCKETS = 512

    def __init__(self, rng: random.Random, t_max: int, a: float) -> None:
        super().__init__(rng, t_max)
        if not 0.0 <= a <= 1.0:
            raise WorkloadError(f"zipf exponent must be in [0, 1], got {a}")
        self.a = a
        bucket_count = min(self.BUCKETS, t_max)
        weights = [1.0 / (rank**a) for rank in range(1, bucket_count + 1)]
        self._cumulative: List[float] = []
        total = 0.0
        for weight in weights:
            total += weight
            self._cumulative.append(total)
        self._total = total
        self._bucket_count = bucket_count

    def sample(self) -> int:
        point = self._rng.random() * self._total
        bucket = bisect.bisect_left(self._cumulative, point)
        bucket = min(bucket, self._bucket_count - 1)
        low = bucket * self.t_max // self._bucket_count + 1
        high = (bucket + 1) * self.t_max // self._bucket_count
        if high < low:
            high = low
        return self._rng.randint(low, high)


class BurstSampler(TimeSampler):
    """Periodic bursts: most probability mass inside narrow windows.

    Beyond the paper's uniform/zipf: models shift-based operations
    (loading happens during work shifts, not around the clock).  The
    timeline splits into ``periods`` equal periods; within each, a burst
    occupying ``burst_fraction`` of the period receives
    ``burst_weight`` of the probability.
    """

    def __init__(
        self,
        rng: random.Random,
        t_max: int,
        periods: int = 8,
        burst_fraction: float = 0.2,
        burst_weight: float = 0.9,
    ) -> None:
        super().__init__(rng, t_max)
        if periods < 1:
            raise WorkloadError(f"periods must be >= 1, got {periods}")
        if not 0 < burst_fraction <= 1:
            raise WorkloadError(
                f"burst_fraction must be in (0, 1], got {burst_fraction}"
            )
        if not 0 <= burst_weight <= 1:
            raise WorkloadError(
                f"burst_weight must be in [0, 1], got {burst_weight}"
            )
        self.periods = min(periods, t_max)
        self.burst_fraction = burst_fraction
        self.burst_weight = burst_weight

    def sample(self) -> int:
        period_length = self.t_max / self.periods
        period = self._rng.randrange(self.periods)
        period_start = period * period_length
        if self._rng.random() < self.burst_weight:
            span = max(1.0, period_length * self.burst_fraction)
            offset = self._rng.random() * span
        else:
            offset = self._rng.random() * period_length
        timestamp = int(period_start + offset) + 1
        return min(timestamp, self.t_max)


def make_sampler(
    distribution: str, rng: random.Random, t_max: int
) -> TimeSampler:
    """Build the sampler for one key.

    For ``zipf`` the exponent is drawn fresh per call, matching the paper's
    per-key random parameter.
    """
    if distribution == "uniform":
        return UniformSampler(rng, t_max)
    if distribution == "zipf":
        return ZipfSampler(rng, t_max, a=rng.random())
    if distribution == "burst":
        return BurstSampler(rng, t_max)
    raise WorkloadError(
        f"unknown distribution {distribution!r}; expected 'uniform', 'zipf' "
        f"or 'burst'"
    )
