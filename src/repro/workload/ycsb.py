"""YCSB-style key-value workloads against the Fabric simulator.

The paper's related work ([8], BLOCKBENCH) benchmarks Fabric against
database workloads; the paper itself covers only temporal workloads.
This module fills in the classic side so the simulator can be exercised
the way BLOCKBENCH exercises real Fabric: the standard YCSB mixes A-F
over a uniform or zipfian key space.

=========  =============================  ==========================
workload   mix                            example system
=========  =============================  ==========================
A          50% read / 50% update          session store
B          95% read / 5% update           photo tagging
C          100% read                      user-profile cache
D          95% read / 5% insert           user-status updates
E          95% scan / 5% insert           threaded conversations
F          50% read / 50% read-modify-    user database
           write
=========  =============================  ==========================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.common.errors import WorkloadError
from repro.common.timeutils import Stopwatch
from repro.fabric.chaincode import Chaincode, ChaincodeStub
from repro.fabric.gateway import Gateway

OPERATIONS = ("read", "update", "insert", "scan", "rmw")


class YCSBChaincode(Chaincode):
    """The YCSB table as a chaincode: one state per record."""

    name = "ycsb"

    def invoke(self, stub: ChaincodeStub, fn: str, args: List[Any]) -> Any:
        if fn == "read":
            (key,) = args
            return stub.get_state(key)
        if fn in ("update", "insert"):
            key, value = args
            stub.put_state(key, value)
            return {"key": key}
        if fn == "scan":
            start_key, count = args
            result = []
            for key, value in stub.get_state_by_range(start_key, "ycsb~"):
                result.append(key)
                if len(result) >= count:
                    break
            return result
        if fn == "rmw":
            key, field_name, delta = args
            record = stub.get_state(key) or {}
            record[field_name] = record.get(field_name, 0) + delta
            stub.put_state(key, record)
            return record[field_name]
        raise WorkloadError(f"unknown YCSB op {fn!r}")


@dataclass(frozen=True)
class YCSBConfig:
    """One workload's shape."""

    name: str
    record_count: int = 200
    operation_count: int = 500
    #: Operation proportions; must sum to 1 (within rounding).
    proportions: Dict[str, float] = field(default_factory=dict)
    #: ``uniform`` or ``zipfian`` request distribution over keys.
    request_distribution: str = "uniform"
    value_fields: int = 4
    scan_length: int = 10
    seed: int = 42

    def __post_init__(self) -> None:
        if self.record_count <= 0 or self.operation_count <= 0:
            raise WorkloadError("record_count and operation_count must be positive")
        if self.request_distribution not in ("uniform", "zipfian"):
            raise WorkloadError(
                f"unknown request distribution {self.request_distribution!r}"
            )
        unknown = set(self.proportions) - set(OPERATIONS)
        if unknown:
            raise WorkloadError(f"unknown operations in mix: {sorted(unknown)}")
        total = sum(self.proportions.values())
        if abs(total - 1.0) > 1e-6:
            raise WorkloadError(f"operation proportions sum to {total}, not 1")


def workload_a(**overrides) -> YCSBConfig:
    """YCSB A: 50% read / 50% update (session store)."""
    return _preset("A", {"read": 0.5, "update": 0.5}, **overrides)


def workload_b(**overrides) -> YCSBConfig:
    """YCSB B: 95% read / 5% update (photo tagging)."""
    return _preset("B", {"read": 0.95, "update": 0.05}, **overrides)


def workload_c(**overrides) -> YCSBConfig:
    """YCSB C: 100% read (profile cache)."""
    return _preset("C", {"read": 1.0}, **overrides)


def workload_d(**overrides) -> YCSBConfig:
    """YCSB D: 95% read / 5% insert (status updates)."""
    return _preset("D", {"read": 0.95, "insert": 0.05}, **overrides)


def workload_e(**overrides) -> YCSBConfig:
    """YCSB E: 95% scan / 5% insert (threaded conversations)."""
    return _preset("E", {"scan": 0.95, "insert": 0.05}, **overrides)


def workload_f(**overrides) -> YCSBConfig:
    """YCSB F: 50% read / 50% read-modify-write (user database)."""
    return _preset("F", {"read": 0.5, "rmw": 0.5}, **overrides)


def _preset(name: str, proportions: Dict[str, float], **overrides) -> YCSBConfig:
    params = dict(name=name, proportions=proportions)
    params.update(overrides)
    return YCSBConfig(**params)


@dataclass
class YCSBReport:
    """Run results: per-operation counts and overall throughput."""

    config: YCSBConfig
    load_seconds: float
    run_seconds: float
    operation_counts: Dict[str, int]

    @property
    def throughput(self) -> float:
        """Operations per second during the run phase."""
        if self.run_seconds == 0:
            return float("inf")
        return sum(self.operation_counts.values()) / self.run_seconds


class YCSBDriver:
    """Loads records and drives one workload through a gateway."""

    def __init__(self, gateway: Gateway, config: YCSBConfig) -> None:
        self._gateway = gateway
        self.config = config
        self._rng = random.Random(config.seed)
        self._inserted = config.record_count

    @staticmethod
    def record_key(index: int) -> str:
        return f"ycsb-{index:08d}"

    def _record_value(self) -> Dict[str, Any]:
        return {
            f"field{i}": self._rng.randrange(1_000_000)
            for i in range(self.config.value_fields)
        }

    def _pick_key_index(self) -> int:
        if self.config.request_distribution == "uniform":
            return self._rng.randrange(self._inserted)
        # Zipfian-by-rank: key popularity follows 1/rank, with ranks
        # shuffled over the key space as YCSB does.
        rank = int(self._inserted ** self._rng.random()) - 1
        return min(self._inserted - 1, max(0, rank))

    # -- phases ------------------------------------------------------------

    def load(self) -> float:
        """The YCSB load phase: insert every record."""
        watch = Stopwatch().start()
        for index in range(self.config.record_count):
            self._gateway.submit_transaction(
                YCSBChaincode.name,
                "insert",
                [self.record_key(index), self._record_value()],
            )
        self._gateway.flush()
        return watch.stop()

    def run(self) -> YCSBReport:
        """The YCSB run phase: execute the configured operation mix."""
        operations = list(self.config.proportions.items())
        counts = {op: 0 for op, _ in operations}
        load_seconds = 0.0  # filled by the caller when it ran load()
        watch = Stopwatch().start()
        for _ in range(self.config.operation_count):
            op = self._choose_operation(operations)
            counts[op] += 1
            self._execute(op)
        self._gateway.flush()
        return YCSBReport(
            config=self.config,
            load_seconds=load_seconds,
            run_seconds=watch.stop(),
            operation_counts=counts,
        )

    def _choose_operation(self, operations) -> str:
        point = self._rng.random()
        cumulative = 0.0
        for op, proportion in operations:
            cumulative += proportion
            if point < cumulative:
                return op
        return operations[-1][0]

    def _execute(self, op: str) -> None:
        if op == "read":
            self._gateway.evaluate_transaction(
                YCSBChaincode.name, "read", [self.record_key(self._pick_key_index())]
            )
        elif op == "update":
            self._gateway.submit_transaction(
                YCSBChaincode.name,
                "update",
                [self.record_key(self._pick_key_index()), self._record_value()],
            )
        elif op == "insert":
            self._gateway.submit_transaction(
                YCSBChaincode.name,
                "insert",
                [self.record_key(self._inserted), self._record_value()],
            )
            self._inserted += 1
        elif op == "scan":
            self._gateway.evaluate_transaction(
                YCSBChaincode.name,
                "scan",
                [self.record_key(self._pick_key_index()), self.config.scan_length],
            )
        elif op == "rmw":
            # Read-modify-write races with itself under MVCC; commit each
            # one before the next is endorsed (as a real client would
            # serialize or retry).
            self._gateway.submit_transaction(
                YCSBChaincode.name,
                "rmw",
                [self.record_key(self._pick_key_index()), "field0", 1],
            )
            self._gateway.flush()
        else:  # pragma: no cover - guarded by config validation
            raise WorkloadError(f"unknown op {op!r}")
