"""The synthetic supply-chain workload of Section IV.

* :mod:`repro.workload.model` -- entity id conventions (shipments,
  containers, trucks).
* :mod:`repro.workload.distributions` -- uniform and zipf event-time
  samplers.
* :mod:`repro.workload.generator` -- the event generator with the paper's
  parameters ``(nS, nC, nTr, nEv, dEv, t_max)`` and its invariants.
* :mod:`repro.workload.datasets` -- the DS1 / DS2 / DS3 configurations.
* :mod:`repro.workload.ingest` -- the SE (single event per transaction)
  and ME (maximal multi-event batches) ingestion strategies.
"""

from repro.workload.datasets import ds1, ds2, ds3
from repro.workload.generator import WorkloadConfig, WorkloadData, generate
from repro.workload.ingest import IngestionReport, ingest

__all__ = [
    "IngestionReport",
    "WorkloadConfig",
    "WorkloadData",
    "ds1",
    "ds2",
    "ds3",
    "generate",
    "ingest",
]
