"""The paper's datasets DS1, DS2 and DS3 (Section IV-2), with scaling.

Full-scale parameters:

=====  =====  ====  =====  ======  =========  ========  =========
name   nS     nC    nTr    nEv     dEv        t_max     ingestion
=====  =====  ====  =====  ======  =========  ========  =========
DS1    400    100   20     2000    uniform    150K      ME
DS2    400    100   20     2000    zipf       150K      ME
DS3    15     5     2      2000    uniform    150K      SE
=====  =====  ====  =====  ======  =========  ========  =========

Two scale knobs keep laptop benchmarks tractable while preserving the
paper's geometry:

* ``scale`` multiplies ``nEv`` and ``t_max`` together (interval lengths
  ``u`` and query windows must be scaled identically by the caller --
  the bench harness does);
* ``entity_scale`` multiplies the entity counts (the paper's GHFK call
  counts are proportional to the key count, so scaled counts follow).

``REPRO_SCALE`` sets the default ``scale`` (0.1 unless overridden);
``REPRO_SCALE=1`` gives the paper's full-size datasets.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.common.config import default_scale
from repro.common.errors import ConfigError
from repro.workload.generator import WorkloadConfig

ENTITY_SCALE_ENV_VAR = "REPRO_ENTITY_SCALE"

#: Full-scale timeline length shared by all three datasets.
FULL_T_MAX = 150_000
#: Full-scale events per key.
FULL_EVENTS_PER_KEY = 2_000


def default_entity_scale() -> float:
    """Entity-count scale from ``REPRO_ENTITY_SCALE`` (default 0.1)."""
    raw = os.environ.get(ENTITY_SCALE_ENV_VAR, "0.1")
    try:
        scale = float(raw)
    except ValueError:
        raise ConfigError(
            f"{ENTITY_SCALE_ENV_VAR} must be a float, got {raw!r}"
        ) from None
    if scale <= 0 or scale > 1:
        raise ConfigError(f"{ENTITY_SCALE_ENV_VAR} must be in (0, 1], got {scale}")
    return scale


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, round(value * scale))


def _scaled_t_max(scale: float, minimum: int) -> int:
    """Timeline length rounded to a multiple of 150.

    The paper's interval lengths are 150K/75 (u=2K), 150K/15 (10K),
    150K/6 (25K), 150K/3 (50K) and 150K/2 (75K); keeping ``t_max``
    divisible by 150 keeps every scaled ``u`` integral and every indexing
    range u-aligned.
    """
    t_max = max(minimum, round(FULL_T_MAX * scale))
    return max(150, round(t_max / 150) * 150)


def _build(
    name: str,
    n_shipments: int,
    n_containers: int,
    n_trucks: int,
    distribution: str,
    ingestion: str,
    scale: Optional[float],
    entity_scale: Optional[float],
    seed: int,
) -> WorkloadConfig:
    scale = default_scale() if scale is None else scale
    entity_scale = default_entity_scale() if entity_scale is None else entity_scale
    events_per_key = _scaled(FULL_EVENTS_PER_KEY, scale, minimum=2)
    if events_per_key % 2:
        events_per_key += 1
    return WorkloadConfig(
        name=name,
        n_shipments=_scaled(n_shipments, entity_scale),
        n_containers=_scaled(n_containers, entity_scale),
        n_trucks=_scaled(n_trucks, entity_scale),
        events_per_key=events_per_key,
        t_max=_scaled_t_max(scale, minimum=events_per_key * 2),
        distribution=distribution,
        ingestion=ingestion,
        seed=seed,
    )


def ds1(
    scale: Optional[float] = None,
    entity_scale: Optional[float] = None,
    seed: int = 11,
) -> WorkloadConfig:
    """DS1: 400/100/20 entities, uniform events, ME ingestion."""
    return _build("DS1", 400, 100, 20, "uniform", "me", scale, entity_scale, seed)


def ds2(
    scale: Optional[float] = None,
    entity_scale: Optional[float] = None,
    seed: int = 23,
) -> WorkloadConfig:
    """DS2: like DS1 but zipf-distributed load times."""
    return _build("DS2", 400, 100, 20, "zipf", "me", scale, entity_scale, seed)


def ds3(
    scale: Optional[float] = None,
    entity_scale: Optional[float] = None,
    seed: int = 37,
) -> WorkloadConfig:
    """DS3: 15/5/2 entities, uniform events, SE ingestion.

    Entity counts are already small; ``entity_scale`` defaults to 1 here
    (the paper's DS3 is itself the small dataset).
    """
    if entity_scale is None:
        entity_scale = 1.0
    return _build("DS3", 15, 5, 2, "uniform", "se", scale, entity_scale, seed)
