"""Entity id conventions for the supply-chain workload.

Shipments, containers and trucks get fixed-width prefixed ids so that

* a state-db range scan over one prefix enumerates one entity class
  (TQF's first step), and
* ids never contain the ``\\x00`` byte reserved by composite interval keys.
"""

from __future__ import annotations

from repro.temporal.engine import EntityNamespace

#: The default namespace shared by workload generation and query engines.
NAMESPACE = EntityNamespace(shipment_prefix="S", container_prefix="C", truck_prefix="T")

_WIDTH = 5


def shipment_id(index: int) -> str:
    """The ledger key of shipment ``index`` (e.g. ``S00042``)."""
    return f"{NAMESPACE.shipment_prefix}{index:0{_WIDTH}d}"


def container_id(index: int) -> str:
    """The ledger key of container ``index`` (e.g. ``C00007``)."""
    return f"{NAMESPACE.container_prefix}{index:0{_WIDTH}d}"


def truck_id(index: int) -> str:
    """The id of truck ``index`` (appears only inside event values)."""
    return f"{NAMESPACE.truck_prefix}{index:0{_WIDTH}d}"


def is_shipment(key: str) -> bool:
    """True when ``key`` names a shipment."""
    return key.startswith(NAMESPACE.shipment_prefix)


def is_container(key: str) -> bool:
    """True when ``key`` names a container."""
    return key.startswith(NAMESPACE.container_prefix)


def is_truck(key: str) -> bool:
    """True when ``key`` names a truck."""
    return key.startswith(NAMESPACE.truck_prefix)
