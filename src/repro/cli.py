"""Command-line entry point regenerating the paper's tables.

Examples::

    python -m repro.cli table1 --dataset ds1
    python -m repro.cli table1 --dataset ds2 --scale 0.05
    python -m repro.cli table2
    python -m repro.cli table3
    python -m repro.cli table4
    python -m repro.cli all            # every table at the default scale

``--scale 1 --entity-scale 1`` reproduces the paper's full-size datasets
(slow: DS1 alone ingests one million events).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import experiments, tables


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="event/timeline scale (default: REPRO_SCALE or 0.1; 1 = paper size)",
    )
    parser.add_argument(
        "--entity-scale",
        type=float,
        default=None,
        help="entity-count scale (default: REPRO_ENTITY_SCALE or 0.1)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="additionally write the structured result as JSON to PATH",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="query-executor threads (default: REPRO_QUERY_WORKERS or 1 = "
        "serial; >1 fans per-key fetches out across a thread pool)",
    )
    parser.add_argument(
        "--cache-blocks",
        type=int,
        default=None,
        help="shared decoded-block LRU capacity (default: 0 = off, the "
        "paper's cost model; see docs/temporal-models.md on accounting)",
    )
    parser.add_argument(
        "--statedb",
        default=None,
        metavar="BACKEND",
        help="state-db backend: memory, lsm, lsm-mmap or btree "
        "(default: REPRO_STATEDB or memory; backends change speed, "
        "never query results)",
    )


def _write_json(results: list, path: str) -> None:
    """Serialize experiment result dataclasses to a JSON file."""
    import dataclasses
    import json

    def jsonable(value):
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return {
                field.name: jsonable(getattr(value, field.name))
                for field in dataclasses.fields(value)
            }
        if isinstance(value, dict):
            return {str(key): jsonable(item) for key, item in value.items()}
        if isinstance(value, (list, tuple)):
            return [jsonable(item) for item in value]
        return value

    with open(path, "w") as handle:
        json.dump([jsonable(result) for result in results], handle, indent=2)


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (one subcommand per paper table)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the tables of 'Efficiently Processing "
        "Temporal Queries on Hyperledger Fabric' (ICDE 2018)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table1 = subparsers.add_parser("table1", help="join performance: M1 vs TQF vs M2")
    table1.add_argument(
        "--dataset", choices=["ds1", "ds2", "ds3"], default="ds1"
    )
    _add_scale_args(table1)

    table2 = subparsers.add_parser("table2", help="M1 join time vs u")
    _add_scale_args(table2)

    table3 = subparsers.add_parser("table3", help="periodic index construction cost")
    table3.add_argument("--invocations", type=int, default=6)
    _add_scale_args(table3)

    table4 = subparsers.add_parser("table4", help="GetState-Base / GHFK-Base cost")
    table4.add_argument("--get-state-calls", type=int, default=None)
    table4.add_argument("--ghfk-calls", type=int, default=None)
    table4.add_argument(
        "--now-factor",
        type=float,
        default=1.02,
        help="probe clock as a multiple of t_max (see EXPERIMENTS.md)",
    )
    _add_scale_args(table4)

    everything = subparsers.add_parser("all", help="run every table")
    _add_scale_args(everything)

    verify = subparsers.add_parser(
        "verify",
        help="cross-check that TQF, M1 and M2 return identical join rows",
    )
    verify.add_argument("--seed", type=int, default=1234)
    _add_scale_args(verify)

    inspect = subparsers.add_parser(
        "inspect", help="summarize an existing ledger directory"
    )
    inspect.add_argument("path", help="ledger directory (FabricNetwork path)")

    audit = subparsers.add_parser(
        "audit", help="cross-check a ledger's derived structures against its chain"
    )
    audit.add_argument("path", help="ledger directory (FabricNetwork path)")

    doctor = subparsers.add_parser(
        "doctor",
        help="check a (possibly crashed) ledger directory for damage: "
        "WAL/SSTable checksums, hash chain, state replay, M1 indexes",
    )
    doctor.add_argument("path", help="ledger directory (FabricNetwork path)")
    doctor.add_argument(
        "--backend",
        choices=["auto", "memory", "lsm", "lsm-mmap", "btree"],
        default="auto",
        help="state-db backend of the ledger (default: detect from files)",
    )
    doctor.add_argument(
        "--manifest",
        default=None,
        help="path of the M1 indexer's run manifest, if one is in use",
    )
    doctor.add_argument(
        "--soak-manifest",
        default=None,
        help="path of a chaos-soak manifest to summarize alongside the "
        "ledger checks (exit is non-zero if any soak invariant failed)",
    )

    lint = subparsers.add_parser(
        "lint",
        help="repro-lint: AST & dataflow analysis "
        "(chaincode determinism incl. interprocedural taint, M1 ingest "
        "invariants, lock discipline, seam-handle lifetimes, "
        "FileSystem-seam bypasses, fsync-before-rename, crash-point "
        "coverage, swallowed exceptions)",
        description="Run the repro-lint static analyzer.",
        epilog="exit codes: 0 = clean (or all findings baselined), "
        "1 = new findings, 2 = usage error (unknown rule, bad path)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (json is machine-readable, for CI annotation)",
    )
    lint.add_argument(
        "--baseline",
        default="lint-baseline.json",
        metavar="PATH",
        help="baseline file of grandfathered findings "
        "(default: lint-baseline.json; a missing file means empty)",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file and report every finding",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings as the new baseline and exit 0",
    )
    lint.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids or prefixes to run, e.g. "
        "'DET002' or 'DET,TEMP' (default: all; an entry matching no "
        "rule is a usage error, exit 2)",
    )
    lint.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="project root for relative paths and the tests/ cross-checks "
        "(default: nearest directory with a pyproject.toml)",
    )
    lint.add_argument(
        "--explain",
        default=None,
        metavar="RULE",
        help="print a rule's full documentation and exit",
    )
    lint.add_argument(
        "--call-graph",
        default=None,
        choices=["dot", "json"],
        metavar="{dot,json}",
        help="emit the project call graph (dot: class-level digraph for "
        "rendering; json: full function-level edges) instead of findings",
    )
    lint.add_argument(
        "--lock-graph",
        default=None,
        choices=["dot", "json"],
        metavar="{dot,json}",
        help="emit the lock-acquisition-order graph the CONC002-004 "
        "rules check (dot: digraph with witness file:line edge labels; "
        "json: full edges, witnesses and cycles) instead of findings",
    )
    lint.add_argument(
        "--footprint",
        default=None,
        choices=["json", "dot"],
        metavar="{json,dot}",
        help="emit the inferred per-entry-point chaincode key footprints "
        "(json: the machine-readable report the parallel validator "
        "loads; dot: bipartite entry-point/namespace graph) instead of "
        "findings",
    )
    lint.add_argument(
        "--cache",
        default=".repro-lint-cache.json",
        metavar="PATH",
        help="mtime+SHA result cache so an unchanged tree replays the "
        "previous run (default: .repro-lint-cache.json)",
    )
    lint.add_argument(
        "--no-cache",
        action="store_true",
        help="always analyze from scratch, ignoring and not writing the cache",
    )
    lint.add_argument(
        "--scheme-report",
        default=None,
        metavar="PATH",
        help="run the symbolic scheme verifier (TEMP002-004) plus the "
        "seeded property-based fuzzer over the analyzed tree, write the "
        "combined scheme-report JSON artifact to PATH, and print the "
        "static-vs-fuzz bridge verdicts; exits 1 on any conviction",
    )
    lint.add_argument(
        "--scheme-fuzz-rounds",
        type=int,
        default=None,
        metavar="N",
        help="random (u, window, events) rounds per scheme/planner class "
        "for --scheme-report (default: 40; seed comes from REPRO_SEED)",
    )
    lint.add_argument(
        "--dynamic-witness",
        default=None,
        metavar="REPORT",
        help="cross-check a race-report.json from 'repro san' (or a "
        "REPRO_SAN=1 test run) against the CONC rules: classifies each "
        "race as confirming a static finding or statically invisible, "
        "and each finding as witnessed or not; exits 1 on any race",
    )

    san = subparsers.add_parser(
        "san",
        help="repro-san: dynamic happens-before/lockset race sanitizer "
        "(runs canned concurrency scenarios over the instrumented "
        "classes and reports data races and lock-order cycles)",
        description="Run the dynamic race sanitizer's scenario suite.",
        epilog="exit codes: 0 = race-free, 1 = races or lock-order "
        "cycles found, 2 = usage error (unknown scenario)",
    )
    san.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="scenario to run (repeatable; default: all; see --list)",
    )
    san.add_argument(
        "--workers",
        type=int,
        default=8,
        help="threads per scenario (default: 8)",
    )
    san.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base seed for fuzzed interleavings "
        "(default: REPRO_SEED or 0)",
    )
    san.add_argument(
        "--fuzz",
        type=int,
        default=0,
        metavar="ROUNDS",
        help="extra rounds with seeded schedule perturbation (default: 0)",
    )
    san.add_argument(
        "--json",
        default="race-report.json",
        metavar="PATH",
        help="where to write the race report (default: race-report.json)",
    )
    san.add_argument(
        "--list",
        action="store_true",
        help="list available scenarios and exit",
    )

    return parser


def _run_table1(args: argparse.Namespace):
    result = experiments.run_table1(
        dataset=args.dataset,
        scale=args.scale,
        entity_scale=args.entity_scale,
        workers=args.workers,
        cache_blocks=args.cache_blocks,
        statedb=args.statedb,
    )
    return result, tables.render_table1(result)


def _run_table2(args: argparse.Namespace):
    result = experiments.run_table2(
        scale=args.scale,
        entity_scale=args.entity_scale,
        workers=args.workers,
        cache_blocks=args.cache_blocks,
        statedb=args.statedb,
    )
    return result, tables.render_table2(result)


def _run_table3(args: argparse.Namespace):
    result = experiments.run_table3(
        scale=args.scale,
        entity_scale=args.entity_scale,
        invocations=args.invocations,
    )
    return result, tables.render_table3(result)


def _run_table4(args: argparse.Namespace):
    result = experiments.run_table4(
        scale=args.scale,
        entity_scale=args.entity_scale,
        get_state_calls=args.get_state_calls,
        ghfk_calls=args.ghfk_calls,
        now_factor=args.now_factor,
    )
    return result, tables.render_table4(result)


def _run_verify(args: argparse.Namespace) -> str:
    """Run the cross-model equivalence check on a fresh random workload."""
    import dataclasses

    from repro.bench.experiments import query_fabric_config, table1_windows, u_small
    from repro.bench.runner import ExperimentRunner
    from repro.workload.datasets import ds1

    config = dataclasses.replace(
        ds1(scale=args.scale, entity_scale=args.entity_scale), seed=args.seed
    )
    fabric_config = query_fabric_config(
        args.workers, args.cache_blocks, statedb=args.statedb
    )
    u = u_small(config.t_max)
    lines = [f"verify: {config.key_count} keys, {config.total_events} events, seed={args.seed}"]
    with ExperimentRunner.build(config, "plain", fabric_config=fabric_config) as plain:
        plain.ingest()
        plain.build_m1_index(u=u)
        with ExperimentRunner.build(
            plain.data, "m2", m2_u=u, fabric_config=fabric_config
        ) as m2:
            m2.ingest()
            for window in table1_windows(config.t_max):
                rows_tqf = plain.run_join("tqf", window).rows
                rows_m1 = plain.run_join("m1", window).rows
                rows_m2 = m2.run_join("m2", window).rows
                status = "OK" if rows_tqf == rows_m1 == rows_m2 else "MISMATCH"
                lines.append(f"  {str(window):>16}: {len(rows_tqf):>5} rows  {status}")
                if status == "MISMATCH":
                    lines.append("  !! models disagree; see tests/temporal/test_equivalence.py")
                    return "\n".join(lines)
    lines.append("all models agree on every window")
    return "\n".join(lines)


def _run_inspect(args: argparse.Namespace) -> str:
    from repro.fabric.inspect import summarize_chain
    from repro.fabric.ledger import Ledger

    ledger = Ledger(args.path)
    try:
        return summarize_chain(ledger).render()
    finally:
        ledger.close()


def _run_audit(args: argparse.Namespace) -> str:
    from repro.fabric.audit import audit_ledger
    from repro.fabric.ledger import Ledger

    ledger = Ledger(args.path)
    try:
        return audit_ledger(ledger).render()
    finally:
        ledger.close()


def _run_doctor(args: argparse.Namespace) -> tuple[str, bool]:
    import dataclasses

    from repro.common.config import FabricConfig
    from repro.faults.doctor import detect_backend, run_doctor

    backend = args.backend
    if backend == "auto":
        backend = detect_backend(args.path)
    config = FabricConfig()
    config = dataclasses.replace(
        config, state_db=dataclasses.replace(config.state_db, backend=backend)
    )
    report = run_doctor(args.path, config=config, manifest_path=args.manifest)
    rendered, healthy = report.render(), report.ok
    if args.soak_manifest is not None:
        from repro.faults.doctor import check_soak_manifest

        soak = check_soak_manifest(args.soak_manifest)
        rendered = f"{rendered}\n{soak.render()}"
        healthy = healthy and soak.ok
    return rendered, healthy


def _run_san(args: argparse.Namespace) -> int:
    """The ``san`` subcommand: run scenarios, write the race report."""
    from repro.common.config import repro_seed
    from repro.common.errors import ConfigError
    from repro.sanitizer.scenarios import SCENARIOS, run_scenarios

    if args.list:
        for name, scenario in sorted(SCENARIOS.items()):
            summary = (scenario.__doc__ or "").strip().splitlines()[0]
            print(f"{name:12} {summary}")
        return 0
    seed = args.seed if args.seed is not None else repro_seed(0)
    try:
        report = run_scenarios(
            names=args.scenario,
            workers=args.workers,
            seed=seed,
            fuzz_rounds=args.fuzz,
        )
    except ConfigError as exc:
        print(f"repro san: {exc}", file=sys.stderr)
        return 2
    report.save(args.json)
    print(report.render())
    print(f"(race report written to {args.json})")
    return 0 if report.ok else 1


def _run_dynamic_witness(args: argparse.Namespace) -> int:
    """``lint --dynamic-witness``: join a race report with the CONC rules."""
    from pathlib import Path

    from repro.analysis.dynamic_witness import cross_check

    baseline_path = None if args.no_baseline else Path(args.baseline)
    try:
        result = cross_check(
            args.dynamic_witness,
            [Path(path) for path in args.paths],
            root=Path(args.root) if args.root else None,
            baseline_path=baseline_path,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    print(
        result.render_json()
        if args.format == "json"
        else result.render_text()
    )
    return 0 if result.ok else 1


def _run_scheme_report(args: argparse.Namespace) -> int:
    """``lint --scheme-report``: symbolic verification + seeded fuzzing."""
    from pathlib import Path

    from repro.analysis.project import build_project
    from repro.analysis.symbolic import bridge, render_scheme_report
    from repro.analysis.symbolic.fuzz import DEFAULT_ROUNDS

    try:
        project = build_project(
            [Path(path) for path in args.paths],
            root=Path(args.root) if args.root else None,
        )
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    rounds = (
        args.scheme_fuzz_rounds
        if args.scheme_fuzz_rounds is not None
        else DEFAULT_ROUNDS
    )
    result = bridge(project, rounds=rounds)
    Path(args.scheme_report).write_text(
        render_scheme_report(result) + "\n", encoding="utf-8"
    )
    print(result.render_text())
    print(f"(scheme report written to {args.scheme_report})")
    clean = result.verification.ok and not result.fuzz.witnesses
    return 0 if clean else 1


def _run_lint(args: argparse.Namespace) -> int:
    """The ``lint`` subcommand; returns the process exit code directly
    (0 clean, 1 findings, 2 usage error)."""
    import inspect
    from pathlib import Path

    from repro.analysis import all_rules, run_lint

    if args.dynamic_witness:
        return _run_dynamic_witness(args)

    if args.scheme_report:
        return _run_scheme_report(args)

    if args.explain:
        rules = all_rules()
        rule = rules.get(args.explain)
        if rule is None:
            print(f"unknown rule {args.explain!r}; known: {', '.join(sorted(rules))}")
            return 2
        module_doc = inspect.getmodule(rule).__doc__ or ""
        print(f"{rule.rule_id}: {(rule.__doc__ or '').strip()}\n\n{module_doc.strip()}")
        return 0

    if args.call_graph:
        from repro.analysis.dataflow import CallGraph, SymbolTable
        from repro.analysis.project import build_project

        try:
            project = build_project(
                [Path(path) for path in args.paths],
                root=Path(args.root) if args.root else None,
            )
        except FileNotFoundError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        graph = CallGraph.build(SymbolTable.build(project))
        print(graph.to_dot() if args.call_graph == "dot" else graph.to_json())
        return 0

    if args.footprint:
        import json as json_module

        from repro.analysis.footprint import footprint_for
        from repro.analysis.footprint.export import footprint_dot, footprint_json
        from repro.analysis.project import build_project

        try:
            project = build_project(
                [Path(path) for path in args.paths],
                root=Path(args.root) if args.root else None,
            )
        except FileNotFoundError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        analysis = footprint_for(project)
        if args.footprint == "dot":
            print(footprint_dot(analysis), end="")
        else:
            print(json_module.dumps(footprint_json(analysis), indent=2))
        return 0

    if args.lock_graph:
        from repro.analysis.cfg import lockset_for
        from repro.analysis.project import build_project

        try:
            project = build_project(
                [Path(path) for path in args.paths],
                root=Path(args.root) if args.root else None,
            )
        except FileNotFoundError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        order = lockset_for(project).order
        print(order.to_dot() if args.lock_graph == "dot" else order.to_json())
        return 0

    # `--select ""` must reach the validator (blank selection is a usage
    # error), so test against None, not truthiness.
    select = (
        [part.strip() for part in args.select.split(",")]
        if args.select is not None
        else []
    )
    baseline_path = None if args.no_baseline else Path(args.baseline)
    cache_path = None if args.no_cache else Path(args.cache)
    try:
        result = run_lint(
            [Path(path) for path in args.paths],
            root=Path(args.root) if args.root else None,
            baseline_path=baseline_path,
            select=select,
            write_baseline=args.write_baseline,
            cache_path=cache_path,
        )
    except (FileNotFoundError, KeyError, ValueError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    print(result.render_json() if args.format == "json" else result.render_text())
    if args.write_baseline:
        if args.format == "text":
            print(f"(baseline written to {baseline_path})")
        return 0
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    outputs: List[str] = []
    results: List[object] = []

    def record(pair) -> None:
        result, rendered = pair
        results.append(result)
        outputs.append(rendered)

    if args.command == "table1":
        record(_run_table1(args))
    elif args.command == "table2":
        record(_run_table2(args))
    elif args.command == "table3":
        record(_run_table3(args))
    elif args.command == "table4":
        record(_run_table4(args))
    elif args.command == "verify":
        outputs.append(_run_verify(args))
    elif args.command == "inspect":
        outputs.append(_run_inspect(args))
    elif args.command == "audit":
        outputs.append(_run_audit(args))
    elif args.command == "doctor":
        rendered, healthy = _run_doctor(args)
        print(rendered)
        return 0 if healthy else 1
    elif args.command == "lint":
        return _run_lint(args)
    elif args.command == "san":
        return _run_san(args)
    elif args.command == "all":
        for dataset in ("ds1", "ds2", "ds3"):
            args.dataset = dataset
            record(_run_table1(args))
        record(_run_table2(args))
        args.invocations = 6
        record(_run_table3(args))
        args.get_state_calls = None
        args.ghfk_calls = None
        args.now_factor = 1.02
        record(_run_table4(args))
    if getattr(args, "json", None) and results:
        _write_json(results, args.json)
        outputs.append(f"(structured results written to {args.json})")
    print("\n\n".join(outputs))
    return 0


if __name__ == "__main__":
    sys.exit(main())
