"""Off-chain analytics: the alternative the paper argues against.

Related work [11]-[13] in the paper takes blockchain data *out* and
analyzes it in a database; the paper's goal is on-chain processing.  This
subpackage implements the off-chain baseline so the trade-off can be
measured rather than asserted: an ETL pass scans the whole chain once
into an in-memory event warehouse with per-key time indexes, after which
temporal queries are cheap -- at the cost of the ETL itself, the extra
storage copy, and staleness (the warehouse must be re-synced as blocks
arrive).
"""

from repro.offchain.warehouse import EventWarehouse, WarehouseQueryEngine

__all__ = ["EventWarehouse", "WarehouseQueryEngine"]
