"""An in-memory event warehouse fed by ETL from the ledger.

The warehouse keeps, per key, events sorted by time with a bisectable
time column -- the textbook temporal index the on-chain models cannot
have.  Window retrieval is two binary searches plus a slice; the costs
live elsewhere:

* the **ETL pass** deserializes every block once (and again for every
  re-sync window after new commits);
* the warehouse is a **second copy** of the data, outside the trust
  domain of the ledger (no hash chain protects it);
* results are only as fresh as the last sync.

``WarehouseQueryEngine`` adapts the warehouse to the same interface the
on-chain engines implement, so it can join and be benchmarked
identically.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List

from repro.common import metrics as metric_names
from repro.common.metrics import NULL_REGISTRY, MetricsRegistry
from repro.common.timeutils import Stopwatch
from repro.fabric.block import VALID
from repro.fabric.ledger import Ledger
from repro.temporal.events import Event
from repro.temporal.intervals import TimeInterval
from repro.temporal.keys import is_interval_key


@dataclass
class SyncReport:
    """One ETL pass: blocks scanned and time spent."""

    blocks_scanned: int
    events_loaded: int
    seconds: float


class EventWarehouse:
    """Per-key, time-sorted event store synced from a ledger."""

    def __init__(self) -> None:
        self._events: Dict[str, List[Event]] = {}
        self._times: Dict[str, List[int]] = {}
        self._synced_height = 0

    @property
    def synced_height(self) -> int:
        """Chain height the warehouse has absorbed."""
        return self._synced_height

    def key_count(self) -> int:
        return len(self._events)

    def event_count(self) -> int:
        """Total events stored across all keys."""
        return sum(len(events) for events in self._events.values())

    # -- ETL ---------------------------------------------------------------

    def sync(self, ledger: Ledger) -> SyncReport:
        """Absorb blocks committed since the last sync.

        Deserializes each new block once (counted through the ledger's
        metrics), extracting every valid write that parses as a
        supply-chain event.  Index-bundle and directory writes (composite
        keys, non-event values) are skipped: the warehouse models the ETL
        of the *business* data.
        """
        watch = Stopwatch().start()
        blocks = 0
        loaded = 0
        for block in ledger.block_store.iter_blocks(start=self._synced_height):
            blocks += 1
            for tx in block.transactions:
                if tx.validation_code != VALID:
                    continue
                for key, write in tx.rw_set.writes.items():
                    if write.is_delete or is_interval_key(key) or key.startswith("\x02"):
                        continue
                    value = write.value
                    if not isinstance(value, dict) or {"o", "t", "e"} - set(value):
                        continue
                    self._insert(Event.from_value(key, value))
                    loaded += 1
            self._synced_height = block.number + 1
        return SyncReport(
            blocks_scanned=blocks, events_loaded=loaded, seconds=watch.stop()
        )

    def _insert(self, event: Event) -> None:
        times = self._times.setdefault(event.key, [])
        events = self._events.setdefault(event.key, [])
        # Ingestion order is time order, so appends dominate; fall back to
        # a sorted insert for out-of-order histories.
        if not times or event.time >= times[-1]:
            times.append(event.time)
            events.append(event)
        else:
            index = bisect.bisect_right(times, event.time)
            times.insert(index, event.time)
            events.insert(index, event)

    # -- queries -------------------------------------------------------------

    def events_in_window(self, key: str, window: TimeInterval) -> List[Event]:
        """Events of ``key`` inside ``(start, end]`` -- two bisects + slice."""
        times = self._times.get(key)
        if not times:
            return []
        lo = bisect.bisect_right(times, window.start)
        hi = bisect.bisect_right(times, window.end)
        return self._events[key][lo:hi]

    def keys_with_prefix(self, prefix: str) -> List[str]:
        """Sorted keys starting with ``prefix`` (entity enumeration)."""
        return sorted(key for key in self._events if key.startswith(prefix))


class WarehouseQueryEngine:
    """The off-chain engine behind the common query-model interface."""

    model = "offchain"

    def __init__(
        self, warehouse: EventWarehouse, metrics: MetricsRegistry = NULL_REGISTRY
    ) -> None:
        self._warehouse = warehouse
        self._metrics = metrics

    def list_keys(self, prefix: str) -> List[str]:
        return self._warehouse.keys_with_prefix(prefix)

    def fetch_events(self, key: str, window: TimeInterval) -> List[Event]:
        with self._metrics.timed(metric_names.GHFK_SECONDS):
            return self._warehouse.events_in_window(key, window)
