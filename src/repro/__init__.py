"""repro: a reproduction of "Efficiently Processing Temporal Queries on
Hyperledger Fabric" (Gupta et al., ICDE 2018).

The package provides:

* :mod:`repro.fabric` -- a Hyperledger-Fabric-like ledger simulator
  (endorse / order / validate / commit, state-db, history-db, block files).
* :mod:`repro.temporal` -- the paper's contribution: the TQF baseline and
  temporal-index models M1 and M2, plus the supply-chain temporal join.
* :mod:`repro.workload` -- the synthetic supply-chain workload generator
  (datasets DS1/DS2/DS3) and the SE/ME ingestion strategies.
* :mod:`repro.bench` -- the experiment harness regenerating the paper's
  Tables I-IV.

Quickstart::

    from repro.bench.runner import ExperimentRunner
    from repro.temporal.intervals import TimeInterval
    from repro.workload.datasets import ds3

    runner = ExperimentRunner.build(ds3(scale=0.25))
    runner.ingest()
    runner.build_m1_index(u=500)
    result = runner.run_join("m1", TimeInterval(0, 2_500))
    print(result.rows[:5], result.stats)
    runner.close()
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
