"""Deterministic fault schedules.

A :class:`FaultPlan` decides, from a seed and explicit triggers, exactly
when a fault fires: at the Nth arrival at a named crash point, during the
Nth write to files matching a glob (torn write), or as a silent bit flip
inside a write payload.  Determinism matters: a failing crash-recovery
test must replay bit-for-bit identically from its seed.

The plan is consulted from two directions:

* :func:`repro.faults.crashpoints.crash_point` calls
  :meth:`on_crash_point` from instrumented pipeline locations;
* :class:`repro.faults.fs.FaultyFS` calls :meth:`on_write` /
  :meth:`on_flush` / :meth:`on_replace` from the file layer.
"""

from __future__ import annotations

import random
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.common.errors import SimulatedCrashError

__all__ = ["FaultPlan"]


class FaultPlan:
    """A seeded, explicit schedule of crashes and corruptions."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._crash_point_target: Optional[Tuple[str, int]] = None
        self._write_crash: Optional[Tuple[str, int, bool]] = None
        self._replace_crash: Optional[Tuple[str, int]] = None
        self._bit_flips: List[Tuple[str, int]] = []
        #: How often each crash point was reached (observability for tests).
        self.point_counts: Dict[str, int] = {}
        self._write_counts: Dict[str, int] = {}
        self._replace_counts: Dict[str, int] = {}
        #: Set once a scheduled fault has fired.
        self.fired: Optional[str] = None

    # -- scheduling -------------------------------------------------------

    def crash_at(self, point: str, occurrence: int = 1) -> "FaultPlan":
        """Crash the ``occurrence``-th time ``point`` is reached."""
        if occurrence < 1:
            raise ValueError(f"occurrence must be >= 1, got {occurrence}")
        self._crash_point_target = (point, occurrence)
        return self

    def crash_on_write(
        self, pattern: str, nth: int = 1, torn: bool = True
    ) -> "FaultPlan":
        """Crash during the ``nth`` write to a file matching ``pattern``.

        With ``torn=True`` a seeded strict prefix of the payload reaches
        the simulated OS first -- the classic torn write.
        """
        if nth < 1:
            raise ValueError(f"nth must be >= 1, got {nth}")
        self._write_crash = (pattern, nth, torn)
        return self

    def crash_on_replace(self, pattern: str, nth: int = 1) -> "FaultPlan":
        """Crash just before the ``nth`` atomic replace whose *destination*
        matches ``pattern`` (the temp file survives, the target does not
        change -- what ``os.replace`` atomicity guarantees)."""
        if nth < 1:
            raise ValueError(f"nth must be >= 1, got {nth}")
        self._replace_crash = (pattern, nth)
        return self

    def flip_bit(self, pattern: str, nth_write: int = 1) -> "FaultPlan":
        """Silently flip one seeded bit inside the ``nth_write``-th write
        to files matching ``pattern`` (no crash: the corruption must be
        *detected* later by checksums, not observed happening)."""
        if nth_write < 1:
            raise ValueError(f"nth_write must be >= 1, got {nth_write}")
        self._bit_flips.append((pattern, nth_write))
        return self

    # -- hooks ------------------------------------------------------------

    def on_crash_point(self, name: str) -> None:
        """Count an arrival at ``name``; crash if it is the scheduled one."""
        count = self.point_counts.get(name, 0) + 1
        self.point_counts[name] = count
        if self._crash_point_target is None:
            return
        point, occurrence = self._crash_point_target
        if name == point and count == occurrence:
            self.fired = name
            raise SimulatedCrashError(name)

    def on_write(self, handle, data: bytes) -> bytes:
        """Apply scheduled bit flips to ``data``; fire a (possibly torn)
        write crash if this is the scheduled write."""
        name = handle.path.name
        count = self._write_counts.get(name, 0) + 1
        self._write_counts[name] = count
        for pattern, nth in self._bit_flips:
            if fnmatch(name, pattern) and count == nth and data:
                data = self._flip_one_bit(data)
        if self._write_crash is not None:
            pattern, nth, torn = self._write_crash
            if fnmatch(name, pattern) and count == nth:
                self.fired = f"write:{name}"
                if torn and len(data) > 1:
                    keep = self._rng.randrange(1, len(data))
                    handle._buffer.extend(data[:keep])
                    handle._drain_buffer()
                raise SimulatedCrashError(f"write:{name}")
        return data

    def on_flush(self, handle) -> None:
        """Flushes currently never fault on their own; the write and
        crash-point hooks cover every schedule the harness needs."""

    def on_replace(self, src: Path, dst: Path) -> None:
        """Crash before the rename if its destination is the scheduled one."""
        if self._replace_crash is None:
            return
        pattern, nth = self._replace_crash
        if not fnmatch(dst.name, pattern):
            return
        count = self._replace_counts.get(pattern, 0) + 1
        self._replace_counts[pattern] = count
        if count == nth:
            self.fired = f"replace:{dst.name}"
            raise SimulatedCrashError(f"replace:{dst.name}")

    def _flip_one_bit(self, data: bytes) -> bytes:
        mutated = bytearray(data)
        position = self._rng.randrange(len(mutated))
        mutated[position] ^= 1 << self._rng.randrange(8)
        return bytes(mutated)
