"""Deterministic fault schedules.

A :class:`FaultPlan` decides, from a seed and explicit triggers, exactly
when a fault fires: at the Nth arrival at a named crash point, during the
Nth write to files matching a glob (torn write), or as a silent bit flip
inside a write payload.  Determinism matters: a failing crash-recovery
test must replay bit-for-bit identically from its seed.

The plan is consulted from two directions:

* :func:`repro.faults.crashpoints.crash_point` calls
  :meth:`on_crash_point` from instrumented pipeline locations;
* :class:`repro.faults.fs.FaultyFS` calls :meth:`on_write` /
  :meth:`on_flush` / :meth:`on_replace` / :meth:`on_read` from the file
  layer.

Beyond crashes and corruption, a plan can schedule *read-side* faults:
:meth:`fail_reads` makes the nth read of a matching file raise an
``EIO``-style :class:`OSError` (intermittent media errors), and
:meth:`delay` injects latency into matching reads (a slow disk or a
saturated peer), which is how deadline and circuit-breaker behaviour is
exercised deterministically.
"""

from __future__ import annotations

import errno as errno_module
import os
import random
import time
from fnmatch import fnmatch
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import SimulatedCrashError

__all__ = ["FaultPlan"]


class FaultPlan:
    """A seeded, explicit schedule of crashes and corruptions."""

    def __init__(self, seed: int = 0, sleep: Optional[Callable[[float], None]] = None) -> None:
        self._rng = random.Random(seed)
        self._crash_point_target: Optional[Tuple[str, int]] = None
        self._write_crash: Optional[Tuple[str, int, bool]] = None
        self._replace_crash: Optional[Tuple[str, int]] = None
        self._bit_flips: List[Tuple[str, int]] = []
        # (pattern, errno, nth, per-file counts when scheduled)
        self._read_faults: List[Tuple[str, int, int, Dict[str, int]]] = []
        self._read_delays: List[Tuple[str, float]] = []  # (pattern, seconds)
        # Injectable so tests observe scheduled latency without waiting.
        self._sleep = sleep if sleep is not None else time.sleep
        #: How often each crash point was reached (observability for tests).
        self.point_counts: Dict[str, int] = {}
        self._write_counts: Dict[str, int] = {}
        self._replace_counts: Dict[str, int] = {}
        self._read_counts: Dict[str, int] = {}
        #: How many scheduled delays have been applied so far.
        self.delays_applied = 0
        #: Set once a scheduled fault has fired.
        self.fired: Optional[str] = None

    # -- scheduling -------------------------------------------------------

    def crash_at(self, point: str, occurrence: int = 1) -> "FaultPlan":
        """Crash the ``occurrence``-th time ``point`` is reached."""
        if occurrence < 1:
            raise ValueError(f"occurrence must be >= 1, got {occurrence}")
        self._crash_point_target = (point, occurrence)
        return self

    def crash_on_write(
        self, pattern: str, nth: int = 1, torn: bool = True
    ) -> "FaultPlan":
        """Crash during the ``nth`` write to a file matching ``pattern``.

        With ``torn=True`` a seeded strict prefix of the payload reaches
        the simulated OS first -- the classic torn write.
        """
        if nth < 1:
            raise ValueError(f"nth must be >= 1, got {nth}")
        self._write_crash = (pattern, nth, torn)
        return self

    def crash_on_replace(self, pattern: str, nth: int = 1) -> "FaultPlan":
        """Crash just before the ``nth`` atomic replace whose *destination*
        matches ``pattern`` (the temp file survives, the target does not
        change -- what ``os.replace`` atomicity guarantees)."""
        if nth < 1:
            raise ValueError(f"nth must be >= 1, got {nth}")
        self._replace_crash = (pattern, nth)
        return self

    def flip_bit(self, pattern: str, nth_write: int = 1) -> "FaultPlan":
        """Silently flip one seeded bit inside the ``nth_write``-th write
        to files matching ``pattern`` (no crash: the corruption must be
        *detected* later by checksums, not observed happening)."""
        if nth_write < 1:
            raise ValueError(f"nth_write must be >= 1, got {nth_write}")
        self._bit_flips.append((pattern, nth_write))
        return self

    def fail_reads(
        self, pattern: str, errno: int = errno_module.EIO, nth: int = 1
    ) -> "FaultPlan":
        """Make the ``nth`` read of files matching ``pattern`` raise an
        ``OSError`` with ``errno`` (default ``EIO``).

        Counting starts *from this call*: reads a file already absorbed
        (say, during recovery replay before the harness armed the plan)
        do not consume the schedule.  The fault is intermittent, as real
        media errors are: only that one read fails; earlier and later
        reads of the same file succeed.  Schedule several to model a
        persistently sick disk.
        """
        if nth < 1:
            raise ValueError(f"nth must be >= 1, got {nth}")
        self._read_faults.append((pattern, errno, nth, dict(self._read_counts)))
        return self

    def delay(self, pattern: str, ms: float) -> "FaultPlan":
        """Inject ``ms`` milliseconds of latency into every read of files
        matching ``pattern`` (a slow disk / saturated peer).

        Latency composes with other schedules; it changes timing, never
        data.  Deadline expiry and breaker trips under slow storage are
        driven with this.
        """
        if ms < 0:
            raise ValueError(f"ms must be non-negative, got {ms}")
        self._read_delays.append((pattern, ms / 1000.0))
        return self

    # -- hooks ------------------------------------------------------------

    def on_crash_point(self, name: str) -> None:
        """Count an arrival at ``name``; crash if it is the scheduled one."""
        count = self.point_counts.get(name, 0) + 1
        self.point_counts[name] = count
        if self._crash_point_target is None:
            return
        point, occurrence = self._crash_point_target
        if name == point and count == occurrence:
            self.fired = name
            raise SimulatedCrashError(name)

    def on_write(self, handle, data: bytes) -> bytes:
        """Apply scheduled bit flips to ``data``; fire a (possibly torn)
        write crash if this is the scheduled write."""
        name = handle.path.name
        count = self._write_counts.get(name, 0) + 1
        self._write_counts[name] = count
        for pattern, nth in self._bit_flips:
            if fnmatch(name, pattern) and count == nth and data:
                data = self._flip_one_bit(data)
        if self._write_crash is not None:
            pattern, nth, torn = self._write_crash
            if fnmatch(name, pattern) and count == nth:
                self.fired = f"write:{name}"
                if torn and len(data) > 1:
                    keep = self._rng.randrange(1, len(data))
                    handle._buffer.extend(data[:keep])
                    handle._drain_buffer()
                raise SimulatedCrashError(f"write:{name}")
        return data

    def on_flush(self, handle) -> None:
        """Flushes currently never fault on their own; the write and
        crash-point hooks cover every schedule the harness needs."""

    def on_read(self, path: Path) -> None:
        """Apply scheduled latency, then fail if this is the scheduled
        read of ``path`` (called by the seam before each read)."""
        name = path.name
        count = self._read_counts.get(name, 0) + 1
        self._read_counts[name] = count
        for pattern, seconds in self._read_delays:
            if seconds > 0 and fnmatch(name, pattern):
                self.delays_applied += 1
                self._sleep(seconds)
        for pattern, code, nth, baseline in self._read_faults:
            if fnmatch(name, pattern) and count - baseline.get(name, 0) == nth:
                self.fired = f"read:{name}"
                raise OSError(code, os.strerror(code), str(path))

    def on_replace(self, src: Path, dst: Path) -> None:
        """Crash before the rename if its destination is the scheduled one."""
        if self._replace_crash is None:
            return
        pattern, nth = self._replace_crash
        if not fnmatch(dst.name, pattern):
            return
        count = self._replace_counts.get(pattern, 0) + 1
        self._replace_counts[pattern] = count
        if count == nth:
            self.fired = f"replace:{dst.name}"
            raise SimulatedCrashError(f"replace:{dst.name}")

    def _flip_one_bit(self, data: bytes) -> bytes:
        mutated = bytearray(data)
        position = self._rng.randrange(len(mutated))
        mutated[position] ^= 1 << self._rng.randrange(8)
        return bytes(mutated)
