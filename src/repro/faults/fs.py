"""The filesystem seam: real pass-through and the fault-injecting wrapper.

Every durable write the simulator performs (WAL, SSTable, block files,
block index, M1 run manifests) goes through a :class:`FileSystem` object
instead of the ``open``/``os.replace`` builtins.  The default
:data:`REAL_FS` singleton delegates straight to the builtins -- the hot
path pays one attribute lookup per *file open*, nothing per write -- while
:class:`FaultyFS` buffers writes in userspace so a test harness can
simulate a process kill (buffered-but-unflushed bytes vanish) or a power
loss (flushed-but-unfsynced bytes vanish too), and can inject torn writes
and bit flips on the :class:`~repro.faults.plan.FaultPlan`'s seeded
schedule.

The write model mirrors what the OS actually guarantees:

* ``write()``   -> bytes sit in the process's buffer; a kill loses them;
* ``flush()``   -> bytes reach the OS page cache; a kill preserves them,
  a power loss does not;
* ``fsync()``   -> bytes reach the device; nothing short of media failure
  loses them.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import IO, Dict, List, Union

from repro.common.errors import FaultInjectionError
from repro.common.locks import make_rlock
from repro.sanitizer.shared import sanitize_shared

__all__ = ["FileSystem", "FaultyFS", "FaultyFile", "FaultyReadFile", "REAL_FS"]


class FileSystem:
    """Real filesystem: the zero-overhead default seam."""

    #: Whether handles returned by :meth:`open` are backed by real OS
    #: file descriptors that ``mmap`` can map.  Fault-injecting wrappers
    #: interpose userspace buffers that a memory map would bypass, so
    #: they advertise ``False`` and mmap-capable readers fall back to
    #: buffered reads.
    supports_mmap = True

    def open(self, path: Union[str, Path], mode: str) -> IO[bytes]:
        """Open ``path`` exactly like the builtin ``open``."""
        return open(path, mode)

    def replace(self, src: Union[str, Path], dst: Union[str, Path]) -> None:
        """Atomically rename ``src`` over ``dst`` (``os.replace``)."""
        os.replace(src, dst)

    def fsync(self, handle: IO[bytes]) -> None:
        """Flush ``handle`` and force its bytes to the device."""
        handle.flush()
        os.fsync(handle.fileno())

    def remove(self, path: Union[str, Path]) -> None:
        """Delete ``path``; missing files are ignored."""
        Path(path).unlink(missing_ok=True)


#: Shared real-filesystem singleton used whenever no fault plan is active.
REAL_FS = FileSystem()


@sanitize_shared("_buffer", "_flushed_size", "synced_size", "closed")
class FaultyFile:
    """A write handle whose buffer the harness can destroy.

    Writes accumulate in an in-memory buffer; ``flush`` moves them to the
    real file (the simulated OS page cache) and ``fsync`` (via the owning
    :class:`FaultyFS`) records the power-loss-safe watermark.  The owning
    filesystem's fault plan sees every write and may mutate the payload
    (bit flip), cut it short (torn write) or raise
    :class:`~repro.common.errors.SimulatedCrashError` mid-operation.
    """

    def __init__(self, fs: "FaultyFS", path: Path, mode: str) -> None:
        self._fs = fs
        self.path = path
        # Raw (unbuffered) handle: what *we* flush is exactly what the
        # simulated OS has; Python adds no hidden second buffer.
        self._real = open(path, mode, buffering=0)
        self._buffer = bytearray()
        # The kernel serializes operations on one file description, and
        # CPython's buffered writer holds an internal lock, so a reader
        # thread forcing a visibility flush while the committer appends
        # is safe on a real handle.  This userspace buffer must give the
        # same guarantee; RLock because the plan's write hook may drain
        # re-entrantly (torn-write injection).
        self._lock = make_rlock("FaultyFile._lock")
        self._flushed_size = self._real.seek(0, os.SEEK_END)
        self.synced_size = self._flushed_size
        self.closed = False

    # -- file protocol (the subset the storage layer uses) ---------------

    def write(self, data: bytes) -> int:
        """Buffer ``data`` (after the fault plan's mutations, if any)."""
        with self._lock:
            self._check_alive()
            data = self._fs.plan.on_write(self, bytes(data))
            self._buffer.extend(data)
            return len(data)

    def tell(self) -> int:
        """Logical end-of-file position (flushed bytes + buffered bytes)."""
        with self._lock:
            self._check_alive()
            return self._flushed_size + len(self._buffer)

    def flush(self) -> None:
        with self._lock:
            self._check_alive()
            self._fs.plan.on_flush(self)
            self._drain_buffer()

    def fileno(self) -> int:
        """The underlying OS file descriptor."""
        return self._real.fileno()

    def close(self) -> None:
        with self._lock:
            if self.closed:
                return
            self._drain_buffer()
            self._real.close()
            self.closed = True
        self._fs.forget(self)

    # -- harness hooks ----------------------------------------------------

    def _drain_buffer(self) -> None:
        with self._lock:
            if self._buffer:
                self._real.write(bytes(self._buffer))
                self._flushed_size += len(self._buffer)
                self._buffer.clear()

    def force_partial_flush(self, keep: int) -> None:
        """Flush only the first ``keep`` buffered bytes (a torn write)."""
        with self._lock:
            torn = bytes(self._buffer[:keep])
            if torn:
                self._real.write(torn)
                self._flushed_size += len(torn)
            self._buffer.clear()

    def mark_synced(self) -> None:
        """Record the current flushed size as the power-loss-safe mark."""
        with self._lock:
            self.synced_size = self._flushed_size

    def kill(self, power_loss: bool) -> None:
        """Simulate the process dying: buffered bytes vanish; on power
        loss the file is also truncated back to its fsync watermark."""
        with self._lock:
            if self.closed:
                return
            self._buffer.clear()
            if power_loss and self._flushed_size > self.synced_size:
                self._real.truncate(self.synced_size)
            self._real.close()
            self.closed = True

    def _check_alive(self) -> None:
        if self.closed:
            raise FaultInjectionError(
                f"I/O on {self.path.name} after the simulated crash"
            )


class FaultyReadFile:
    """A read handle consulting the fault plan before every read.

    This is how intermittent ``EIO``-style media errors
    (:meth:`FaultPlan.fail_reads`) and slow-disk latency
    (:meth:`FaultPlan.delay`) reach the storage layer: the plan's
    :meth:`~repro.faults.plan.FaultPlan.on_read` hook runs before each
    ``read`` and may sleep or raise ``OSError``.  Everything else passes
    straight through to a real handle -- read handles hold no buffered
    state, so a kill only forbids further use.
    """

    def __init__(self, fs: "FaultyFS", path: Path, mode: str) -> None:
        self._fs = fs
        self.path = path
        self._real = open(path, mode)
        self.closed = False

    def read(self, size: int = -1):
        """Read up to ``size`` bytes, consulting the fault plan first."""
        self._fs._check_alive()
        self._fs.plan.on_read(self.path)
        return self._real.read(size)

    def readline(self, size: int = -1):
        """Read one line, consulting the fault plan first."""
        self._fs._check_alive()
        self._fs.plan.on_read(self.path)
        return self._real.readline(size)

    def seek(self, offset: int, whence: int = 0) -> int:
        """Reposition the underlying handle (never faults on its own)."""
        return self._real.seek(offset, whence)

    def tell(self) -> int:
        """Current position of the underlying handle."""
        return self._real.tell()

    def close(self) -> None:
        if not self.closed:
            self._real.close()
            self.closed = True

    def __iter__(self):
        return iter(self._real)

    def __enter__(self) -> "FaultyReadFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class FaultyFS(FileSystem):
    """Filesystem wrapper that owns every write handle it hands out.

    Binary write/append handles become :class:`FaultyFile`; plain read
    handles become :class:`FaultyReadFile` so the plan can inject
    latency and intermittent read errors.  (Read-side *corruption* is
    still injected by flipping bits in the write path -- detection by
    checksum is the property under test.)  After :meth:`kill` the
    filesystem is dead: any further I/O raises
    :class:`FaultInjectionError`, catching code that incorrectly keeps
    running after a simulated crash.
    """

    #: Reads must observe the userspace write buffers (and the fault
    #: plan's read hooks); a memory map would bypass both.
    supports_mmap = False

    def __init__(self, plan) -> None:
        self.plan = plan
        self._files: List[FaultyFile] = []
        self._dead = False

    def open(self, path: Union[str, Path], mode: str) -> IO[bytes]:
        self._check_alive()
        if "b" in mode and ("w" in mode or "a" in mode):
            handle = FaultyFile(self, Path(path), mode)
            self._files.append(handle)
            return handle  # type: ignore[return-value]
        if "r" in mode and "+" not in mode:
            return FaultyReadFile(self, Path(path), mode)  # type: ignore[return-value]
        return open(path, mode)

    def replace(self, src: Union[str, Path], dst: Union[str, Path]) -> None:
        self._check_alive()
        self.plan.on_replace(Path(src), Path(dst))
        os.replace(src, dst)

    def fsync(self, handle: IO[bytes]) -> None:
        self._check_alive()
        if isinstance(handle, FaultyFile):
            handle.flush()
            handle.mark_synced()
        else:  # a real handle that slipped through (read-mode open)
            super().fsync(handle)

    def remove(self, path: Union[str, Path]) -> None:
        self._check_alive()
        Path(path).unlink(missing_ok=True)

    def forget(self, handle: FaultyFile) -> None:
        """Drop a cleanly closed handle from the kill list."""
        if handle in self._files:
            self._files.remove(handle)

    def kill(self, power_loss: bool = False) -> None:
        """Kill the simulated process: destroy every live write handle.

        With ``power_loss=True``, data that was flushed but never fsynced
        is lost as well -- the difference between the ``flush`` and
        ``fsync`` durability levels.
        """
        for handle in list(self._files):
            handle.kill(power_loss)
        self._files.clear()
        self._dead = True

    @property
    def open_file_count(self) -> int:
        return len(self._files)

    def _check_alive(self) -> None:
        if self._dead:
            raise FaultInjectionError("filesystem used after the simulated crash")
