"""Named crash points threaded through the write path.

A crash point is a single call -- ``crash_point(LEDGER_PRE_STATE)`` -- at
an instrumented location.  With no plan armed it is one global ``is None``
check, cheap enough to live on the commit path permanently; with a plan
armed (via :func:`active_plan`) it lets the harness kill the process at
exactly that point and verify recovery.

Every registered point is listed in :data:`ALL_CRASH_POINTS`, which the
kill-point sweep iterates so newly added points are automatically swept.
The registry is process-global and single-threaded by design, matching
the simulator's synchronous pipeline.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.faults.plan import FaultPlan

__all__ = [
    "crash_point",
    "active_plan",
    "ALL_CRASH_POINTS",
    "BTREE_CRASH_POINTS",
    "COMMIT_CRASH_POINTS",
    "M1_CRASH_POINTS",
]

# -- the registry ---------------------------------------------------------

#: After the orderer assembled a block, before delivering it to committers.
ORDERER_BLOCK_CUT = "orderer.block_cut"
#: Block validated, before anything touches disk.
LEDGER_PRE_APPEND = "ledger.pre_block_append"
#: Block file record written, before the block index records its location.
BLOCKSTORE_MID_ADD = "blockstore.between_file_and_index"
#: Block durable on disk, before the history index sees it.
LEDGER_PRE_HISTORY = "ledger.pre_history_index"
#: History indexed, before any state-db write is applied.
LEDGER_PRE_STATE = "ledger.pre_state_apply"
#: Mid state apply: after the first transaction's writes only.
LEDGER_MID_STATE = "ledger.mid_state_apply"
#: All state writes applied, before the savepoint records the block.
LEDGER_PRE_SAVEPOINT = "ledger.pre_savepoint"
#: Commit complete (block acknowledged); next operation not yet started.
LEDGER_POST_COMMIT = "ledger.post_commit"
#: LSM memtable full, before the new SSTable is written.
LSM_PRE_SSTABLE = "lsm.pre_sstable_write"
#: New SSTable finalized, before the WAL is truncated.
LSM_POST_SSTABLE = "lsm.post_sstable_write"
#: BTree store: checkpoint due, before the snapshot table is written.
BTREE_PRE_CHECKPOINT = "btree.pre_checkpoint_write"
#: BTree store: snapshot finalized, before the WAL is truncated.
BTREE_POST_CHECKPOINT = "btree.post_checkpoint_write"

#: M1 indexer: before submitting a bundle's write_index transaction.
M1_PRE_BUNDLE = "m1.pre_bundle_write"
#: M1 indexer: bundle written, before its clear_index tombstone.
M1_MID_BUNDLE = "m1.between_write_and_clear"
#: M1 indexer: a key fully bundled, before the manifest records it done.
M1_POST_KEY = "m1.post_key"
#: M1 indexer: all keys done, before the record_run metadata transaction.
M1_PRE_RECORD_RUN = "m1.pre_record_run"
#: M1 indexer: run recorded on the ledger, before manifest cleanup.
M1_POST_RECORD_RUN = "m1.post_record_run"

#: BTree-backend points: fired only when the state-db runs the ``btree``
#: backend, so the sweep pairs them with a btree-backed config.
BTREE_CRASH_POINTS = (
    BTREE_PRE_CHECKPOINT,
    BTREE_POST_CHECKPOINT,
)

#: Commit-pipeline points (swept against ingestion workloads; the sweep
#: picks the state-db backend that reaches each point).
COMMIT_CRASH_POINTS = (
    ORDERER_BLOCK_CUT,
    LEDGER_PRE_APPEND,
    BLOCKSTORE_MID_ADD,
    LEDGER_PRE_HISTORY,
    LEDGER_PRE_STATE,
    LEDGER_MID_STATE,
    LEDGER_PRE_SAVEPOINT,
    LEDGER_POST_COMMIT,
    LSM_PRE_SSTABLE,
    LSM_POST_SSTABLE,
) + BTREE_CRASH_POINTS

#: M1 indexing points (swept against indexing runs, recovered via resume).
M1_CRASH_POINTS = (
    M1_PRE_BUNDLE,
    M1_MID_BUNDLE,
    M1_POST_KEY,
    M1_PRE_RECORD_RUN,
    M1_POST_RECORD_RUN,
)

ALL_CRASH_POINTS = COMMIT_CRASH_POINTS + M1_CRASH_POINTS

# -- the hook -------------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None


def crash_point(name: str) -> None:
    """Report reaching ``name``; raises ``SimulatedCrashError`` when an
    armed plan scheduled a crash here."""
    if _ACTIVE is not None:
        _ACTIVE.on_crash_point(name)


@contextmanager
def active_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of the block (not reentrant)."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a fault plan is already active")
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = None
