"""The chaos soak: concurrent traffic under a seeded fault schedule.

The kill-point sweep (:mod:`tests.faults.harness`) proves recovery from
*one* crash at *one* point.  The soak asks the harder operational
question: does the whole stack stay honest while faults keep arriving
during live traffic?  One run:

1. builds a fault-free **reference** ledger from the full workload and
   records, per block height, the header hash and the join-query rows --
   the ground truth every later check compares against;
2. replays the same workload into a **live** directory across several
   rounds, each with one armed fault (a commit-path crash, a silent
   SSTable bit flip, an intermittent ``EIO`` read fault, or injected
   read latency) while a query thread runs TQF and degraded-mode M1
   joins against the same ledger;
3. after every round, reopens the directory on the real filesystem and
   checks the invariants: hash chain verifies and is byte-identical to
   the reference prefix, no acknowledged transaction was lost, the
   audit and doctor are clean, a scrub finds nothing left to
   quarantine, and both query models return exactly the reference rows
   (M1 via a typed :class:`~repro.temporal.engine.DegradedResult`);
4. a final fault-free round completes the workload and additionally
   requires the full chain and the state fingerprint to match the
   reference bit-for-bit.

Every parameter of the schedule is drawn up front from one seed, so a
failing soak replays identically.  Queries during a round are classified
-- ``ok`` / ``degraded`` / ``deadline`` / ``error:<Type>`` -- and a
query whose result can be pinned to a stable height must equal the
reference rows at that height: the soak's core promise is that a query
may fail or degrade, but never silently return wrong data.

Progress is persisted after every round through the atomic
:class:`~repro.faults.manifest.RunManifest`, and ``repro doctor
--soak-manifest`` renders the verdict.
"""

from __future__ import annotations

import dataclasses
import errno as errno_module
import random
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.common.config import (
    BlockCuttingConfig,
    BlockStoreConfig,
    FabricConfig,
    StateDbConfig,
)
from repro.common.errors import (
    ConfigError,
    DeadlineExceededError,
    FaultInjectionError,
    ReproError,
    SimulatedCrashError,
    StorageError,
)
from repro.common.resilience import Deadline, RetryPolicy
from repro.fabric.audit import audit_ledger
from repro.fabric.block import VALID
from repro.fabric.network import FabricNetwork
from repro.faults.crashpoints import (
    BLOCKSTORE_MID_ADD,
    LEDGER_MID_STATE,
    LEDGER_POST_COMMIT,
    LEDGER_PRE_APPEND,
    LEDGER_PRE_HISTORY,
    LEDGER_PRE_SAVEPOINT,
    LEDGER_PRE_STATE,
    ORDERER_BLOCK_CUT,
    active_plan,
)
from repro.faults.fs import FaultyFS
from repro.faults.manifest import RunManifest
from repro.faults.plan import FaultPlan
from repro.temporal.chaincodes import SupplyChainChaincode
from repro.temporal.engine import FALLBACK_MODEL, TemporalQueryEngine
from repro.temporal.events import Event
from repro.temporal.intervals import TimeInterval
from repro.temporal.join import JoinRow
from repro.temporal.livequery import LiveJoinQuery
from repro.workload.generator import WorkloadConfig, generate

__all__ = ["ChaosConfig", "FAULT_KINDS", "build_schedule", "run_chaos_soak"]

#: The fault kinds the soak rotates through, one per round.
FAULT_KINDS = ("crash", "bitflip", "readfault", "delay")

#: Crash points that are reached on *every* block commit, so a scheduled
#: occurrence of 1 or 2 is guaranteed to fire in any round that cuts at
#: least two blocks.  (The LSM points only trigger when a memtable fills
#: mid-round, which would make "did the fault fire" timing-dependent.)
PER_BLOCK_CRASH_POINTS = (
    ORDERER_BLOCK_CUT,
    LEDGER_PRE_APPEND,
    BLOCKSTORE_MID_ADD,
    LEDGER_PRE_HISTORY,
    LEDGER_PRE_STATE,
    LEDGER_MID_STATE,
    LEDGER_PRE_SAVEPOINT,
    LEDGER_POST_COMMIT,
)

#: One gateway identity for every writer: transaction ids are derived
#: from (creator, timestamp), so the live run's blocks can only be
#: byte-identical to the reference if both use the same creator.
_CLIENT = "chaos-writer"

_CHAINCODE = "supplychain"

#: Subsystem a fault kind stresses (the rows of the bench matrix).
_SUBSYSTEMS = {
    "crash": "commit-pipeline",
    "bitflip": "statedb",
    "readfault": "blockstore",
    "delay": "blockstore",
}


@dataclasses.dataclass(frozen=True)
class ChaosConfig:
    """Soak parameters; everything downstream is derived from these."""

    seed: int = 0
    #: Faulted rounds (a fault-free completion round always follows).
    rounds: int = 4
    n_shipments: int = 4
    n_containers: int = 2
    n_trucks: int = 2
    events_per_key: int = 8
    #: Orderer batch size; small so every round cuts several blocks.
    block_size: int = 4
    #: LSM memtable entries; small so every round flushes an SSTable.
    memtable_limit: int = 8
    #: Per-query time budget (generous; the delay round overrides it).
    query_budget: float = 2.0
    #: The query thread always runs at least this many queries per round,
    #: so intermittent read faults have traffic to bite.
    min_queries: int = 4

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ConfigError(f"rounds must be >= 1, got {self.rounds}")
        if self.query_budget <= 0:
            raise ConfigError(
                f"query_budget must be positive, got {self.query_budget}"
            )
        if self.min_queries < 1:
            raise ConfigError(
                f"min_queries must be >= 1, got {self.min_queries}"
            )
        per_round = self.total_events // (self.rounds + 1)
        if per_round < 2 * self.block_size:
            raise ConfigError(
                f"{self.rounds} rounds over {self.total_events} events leaves "
                f"{per_round} events per round; need at least two blocks "
                f"({2 * self.block_size} events) so scheduled crash "
                "occurrences are guaranteed to fire"
            )

    @property
    def total_events(self) -> int:
        return (self.n_shipments + self.n_containers) * self.events_per_key


@dataclasses.dataclass
class _Reference:
    """Ground truth from the fault-free run."""

    height: int
    header_hashes: List[str]
    #: ``rows_by_height[h]`` = sorted join rows after ``h`` blocks.
    rows_by_height: List[List[JoinRow]]
    fingerprint: str
    window: TimeInterval


def build_schedule(config: ChaosConfig) -> List[Dict[str, Any]]:
    """The full fault schedule, drawn up front from the seed.

    Round kinds rotate through :data:`FAULT_KINDS` so any soak of at
    least four rounds injects every kind at least once; all numeric
    parameters come from one ``random.Random(seed)``, making the whole
    schedule a pure function of the config.
    """
    rng = random.Random(config.seed)
    schedule: List[Dict[str, Any]] = []
    for round_number in range(config.rounds):
        kind = FAULT_KINDS[round_number % len(FAULT_KINDS)]
        params: Dict[str, Any]
        if kind == "crash":
            params = {
                "point": rng.choice(PER_BLOCK_CRASH_POINTS),
                "occurrence": rng.randint(1, 2),
            }
        elif kind == "bitflip":
            # The .tmp staging file is what actually gets written, so the
            # pattern must match it too ("sst-*" covers both spellings).
            params = {"pattern": "sst-*", "nth_write": 1}
        elif kind == "readfault":
            params = {
                "pattern": "blockfile_*",
                "errno": errno_module.EIO,
                "nth": rng.randint(2, 6),
            }
        else:  # delay
            params = {
                "pattern": "blockfile_*",
                "ms": 5.0,
                "query_budget": 0.05,
            }
        schedule.append(
            {
                "round": round_number,
                "kind": kind,
                "subsystem": _SUBSYSTEMS[kind],
                "params": params,
            }
        )
    return schedule


def run_chaos_soak(
    root: str | Path,
    config: Optional[ChaosConfig] = None,
    manifest_path: Optional[str | Path] = None,
) -> Dict[str, Any]:
    """Run the full soak under ``root``; returns the manifest state.

    ``root`` gains two subdirectories: ``reference`` (the fault-free
    ground-truth ledger) and ``live`` (the ledger that takes the
    beating).  The returned dict -- also saved atomically to
    ``manifest_path`` (default ``root/soak_manifest.json``) after every
    round -- carries the schedule, per-round records and the overall
    verdict in ``"ok"``.
    """
    cfg = config or ChaosConfig()
    root = Path(root)
    fabric_config = _fabric_config(cfg)
    events = _event_stream(cfg)
    window = TimeInterval(0, len(events) + 1)
    reference = _build_reference(root / "reference", fabric_config, events, window)
    schedule = build_schedule(cfg)
    manifest = RunManifest(manifest_path or root / "soak_manifest.json")

    live_dir = root / "live"
    acked: Set[str] = set()
    records: List[Dict[str, Any]] = []
    last_verified_height = 0
    state: Dict[str, Any] = {
        "kind": "chaos-soak",
        "seed": cfg.seed,
        "config": dataclasses.asdict(cfg),
        "reference": {
            "height": reference.height,
            "fingerprint": reference.fingerprint,
            "total_events": len(events),
        },
        "schedule": schedule,
        "events": records,
        "final": None,
        "last_verified_height": last_verified_height,
        "complete": False,
        "ok": True,
    }
    for entry in schedule:
        record = _run_round(live_dir, fabric_config, cfg, entry, events, reference, acked)
        records.append(record)
        if record["ok"]:
            last_verified_height = record["height"]
        state["ok"] = state["ok"] and record["ok"]
        state["last_verified_height"] = last_verified_height
        manifest.save(state)

    final = _final_round(live_dir, fabric_config, cfg, events, reference, acked)
    if final["ok"]:
        last_verified_height = final["height"]
    state["final"] = final
    state["ok"] = state["ok"] and final["ok"]
    state["last_verified_height"] = last_verified_height
    state["complete"] = True
    manifest.save(state)
    return state


# -- workload and reference -------------------------------------------------


def _fabric_config(cfg: ChaosConfig) -> FabricConfig:
    return FabricConfig(
        block_cutting=BlockCuttingConfig(max_message_count=cfg.block_size),
        state_db=StateDbConfig(
            backend="lsm", memtable_limit=cfg.memtable_limit, durability="flush"
        ),
        block_store=BlockStoreConfig(durability="flush"),
    )


def _event_stream(cfg: ChaosConfig) -> List[Event]:
    """The soak workload: the paper's generator, re-timed to be unique.

    Transaction ids derive from (creator, timestamp, occurrence); for a
    crashed round's resubmissions to rebuild *byte-identical* blocks,
    every event needs a timestamp no other event shares.  Re-timing by
    global position preserves the generator's ordering (and therefore
    each key's load/unload alternation, whose per-key times strictly
    increase).
    """
    data = generate(
        WorkloadConfig(
            name=f"chaos-{cfg.seed}",
            n_shipments=cfg.n_shipments,
            n_containers=cfg.n_containers,
            n_trucks=cfg.n_trucks,
            events_per_key=cfg.events_per_key,
            t_max=max(64, 4 * cfg.events_per_key),
            distribution="uniform",
            seed=cfg.seed,
            ingestion="se",
        )
    )
    return [
        dataclasses.replace(event, time=index + 1)
        for index, event in enumerate(data.events)
    ]


def _submit_event(gateway, event: Event) -> None:
    gateway.submit_transaction(
        _CHAINCODE,
        "record_event",
        [event.key, event.other, event.time, event.kind],
        timestamp=event.time,
    )


def _build_reference(
    path: Path, config: FabricConfig, events: List[Event], window: TimeInterval
) -> _Reference:
    """Ingest the whole workload fault-free and record the ground truth."""
    network = FabricNetwork(path, config=config)
    try:
        network.install(SupplyChainChaincode())
        blocks: List[Any] = []
        network.on_block(blocks.append)
        gateway = network.gateway(_CLIENT)
        for event in events:
            _submit_event(gateway, event)
        gateway.flush()
        ledger = network.ledger
        ledger.verify_chain()
        header_hashes = [
            block.header.hash().hex() for block in ledger.block_store.iter_blocks()
        ]
        live = LiveJoinQuery(window=window)
        rows_by_height: List[List[JoinRow]] = [[]]
        for block in blocks:
            live.on_block(block)
            rows_by_height.append(sorted(live.rows()))
        return _Reference(
            height=ledger.height,
            header_hashes=header_hashes,
            rows_by_height=rows_by_height,
            fingerprint=ledger.state_fingerprint(),
            window=window,
        )
    finally:
        network.close()


def _round_target(cfg: ChaosConfig, total: int, round_number: int) -> int:
    """How far into the event stream round ``round_number`` ingests."""
    return total * (round_number + 1) // (cfg.rounds + 1)


def _committed_tx_count(ledger) -> int:
    """Events already on the chain = where a resumed round picks up.

    Single-event ingestion submits one transaction per event in stream
    order and only whole blocks commit, so the chain always holds an
    exact prefix of the event stream.
    """
    return sum(len(block.transactions) for block in ledger.block_store.iter_blocks())


# -- one faulted round ------------------------------------------------------


def _arm(plan: FaultPlan, entry: Dict[str, Any]) -> None:
    """Schedule this round's fault on ``plan``.

    Called *after* the network opened: recovery of the previous round's
    damage must not consume the new round's read-fault budget.
    """
    params = entry["params"]
    kind = entry["kind"]
    if kind == "crash":
        plan.crash_at(params["point"], occurrence=params["occurrence"])
    elif kind == "bitflip":
        plan.flip_bit(params["pattern"], nth_write=params["nth_write"])
    elif kind == "readfault":
        plan.fail_reads(params["pattern"], errno=params["errno"], nth=params["nth"])
    else:  # delay
        plan.delay(params["pattern"], params["ms"])


def _ingest_worker(
    gateway,
    events: List[Event],
    start: int,
    target: int,
    stop_reason: List[str],
    progress: Dict[str, int],
) -> None:
    """Submit ``events[start:target]`` until done or the session dies.

    Any typed failure on the submit path ends the round: after a commit
    raised mid-pipeline the in-memory chain head and the orderer
    disagree, so the only sound continuation is crash semantics --
    stop, kill the filesystem, and let recovery replay.  (Intermittent
    faults are retried where retrying is sound: on the query path.)
    """
    for index in range(start, target):
        try:
            _submit_event(gateway, events[index])
        except (SimulatedCrashError, FaultInjectionError) as exc:
            stop_reason.append(f"crash:{exc}")
            return
        except (ReproError, OSError) as exc:
            stop_reason.append(f"abort:{type(exc).__name__}")
            return
        progress["submitted"] = index + 1


def _classify_query(
    engine: TemporalQueryEngine,
    ledger,
    reference: _Reference,
    model: str,
    budget: float,
    retry: RetryPolicy,
) -> Tuple[str, Optional[str]]:
    """Run one join and classify it; returns ``(outcome, violation)``.

    ``violation`` is non-``None`` only for the unforgivable case: a
    query that *appeared* to succeed at a stable height but returned
    rows differing from the reference.  Failures and degradations are
    outcomes, not violations -- the contract is typed errors or correct
    rows, never silent corruption.
    """
    degrade = model != FALLBACK_MODEL
    try:
        height_before = ledger.height
        savepoint_before = ledger.state_db.savepoint()
        result = engine.run_join(
            model,
            reference.window,
            deadline=Deadline.after(budget),
            degrade=degrade,
        )
        height_after = ledger.height
        savepoint_after = ledger.state_db.savepoint()
    except DeadlineExceededError:
        return "deadline", None
    except StorageError as exc:
        label = f"error:{type(exc).__name__}"
        # Injected read faults are intermittent by construction, so a
        # bounded retry of the *query* (a pure read) is sound and should
        # succeed -- unlike retrying a failed submit.
        try:
            retry.call(
                lambda: engine.run_join(model, reference.window, degrade=degrade),
                retry_on=(StorageError,),
            )
        except (ReproError, RuntimeError, OSError):
            return label, None
        return f"{label}:retried-ok", None
    except (ReproError, RuntimeError, OSError) as exc:
        return f"error:{type(exc).__name__}", None

    label = "degraded" if result.degraded is not None else "ok"
    # The result is attributable to height h only if no commit was in
    # flight anywhere across the query: height stable AND the savepoint
    # (written last in the commit pipeline) already caught up on both
    # sides.  Anything else is correct-but-unpinnable: skip the check.
    expected_savepoint = height_before - 1 if height_before > 0 else None
    stable = (
        height_after == height_before
        and savepoint_before == expected_savepoint
        and savepoint_after == expected_savepoint
        and height_before < len(reference.rows_by_height)
    )
    if not stable:
        return f"{label}-unstable", None
    if sorted(result.rows) == reference.rows_by_height[height_before]:
        return f"{label}-verified", None
    return (
        f"{label}-WRONG",
        f"{model} query at stable height {height_before} returned rows "
        "differing from the reference run",
    )


def _query_worker(
    network: FabricNetwork,
    reference: _Reference,
    budget: float,
    min_queries: int,
    stop: threading.Event,
    outcomes: Dict[str, int],
    violations: List[str],
    breaker_trips: Dict[str, int],
) -> None:
    """Alternate TQF and degraded-mode M1 joins until ingest finishes
    (and at least ``min_queries`` ran, so every round sees queries)."""
    engine = TemporalQueryEngine(network.ledger, network.metrics, workers=1)
    retry = RetryPolicy(max_retries=1, base=0.0)
    models = (FALLBACK_MODEL, "m1")
    count = 0
    while not stop.is_set() or count < min_queries:
        model = models[count % len(models)]
        outcome, violation = _classify_query(
            engine, network.ledger, reference, model, budget, retry
        )
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        if violation is not None:
            violations.append(violation)
        count += 1
        time.sleep(0)  # yield to the ingest thread
    for model, breaker in engine.breakers.items():
        breaker_trips[model] = breaker.trips


def _quarantined_tables(live_dir: Path) -> List[str]:
    from repro.storage.kv.lsm import QUARANTINE_DIR

    quarantine = live_dir / "statedb" / QUARANTINE_DIR
    return sorted(path.name for path in quarantine.glob("*.sst"))


def _run_round(
    live_dir: Path,
    config: FabricConfig,
    cfg: ChaosConfig,
    entry: Dict[str, Any],
    events: List[Event],
    reference: _Reference,
    acked: Set[str],
) -> Dict[str, Any]:
    """One faulted round: ingest + query under the armed plan, then
    recover on the real filesystem and check every invariant."""
    quarantined_before = _quarantined_tables(live_dir)
    plan = FaultPlan(seed=cfg.seed + entry["round"])
    fs = FaultyFS(plan)
    network = FabricNetwork(live_dir, config=config, fs=fs)
    network.install(SupplyChainChaincode())

    def listener(block) -> None:
        for tx in block.transactions:
            if tx.validation_code == VALID:
                acked.add(tx.tx_id)

    network.on_block(listener)
    gateway = network.gateway(_CLIENT)
    resume_from = _committed_tx_count(network.ledger)
    target = _round_target(cfg, len(events), entry["round"])
    # Arm only now: opening the network (recovery reads) must not
    # consume this round's scheduled read faults.
    _arm(plan, entry)

    budget = entry["params"].get("query_budget", cfg.query_budget)
    stop = threading.Event()
    stop_reason: List[str] = []
    progress = {"submitted": resume_from}
    outcomes: Dict[str, int] = {}
    violations: List[str] = []
    breaker_trips: Dict[str, int] = {}
    ingest = threading.Thread(
        target=_ingest_worker,
        args=(gateway, events, resume_from, target, stop_reason, progress),
        name=f"chaos-ingest-{entry['round']}",
    )
    query = threading.Thread(
        target=_query_worker,
        args=(
            network,
            reference,
            budget,
            cfg.min_queries,
            stop,
            outcomes,
            violations,
            breaker_trips,
        ),
        name=f"chaos-query-{entry['round']}",
    )
    with active_plan(plan):
        query.start()
        ingest.start()
        ingest.join()
        stop.set()
        query.join()

    if stop_reason:
        fs.kill(power_loss=False)
    else:
        try:
            # Close peers directly: a full network.close() would flush
            # the orderer's pending partial block, committing a block
            # the reference chain cuts at a different boundary.
            for peer in network.peers.values():
                peer.close()
        except (ReproError, OSError) as exc:
            stop_reason.append(f"close:{type(exc).__name__}")
            fs.kill(power_loss=False)

    invariants, height, recovery_seconds, notes = _recover_and_verify(
        live_dir, config, reference, acked
    )
    quarantined_after = _quarantined_tables(live_dir)
    invariants["fault-observed"] = _fault_observed(
        entry["kind"], plan, quarantined_before, quarantined_after
    )
    invariants["no-silently-wrong-rows"] = not violations
    notes.extend(violations)
    return {
        "round": entry["round"],
        "kind": entry["kind"],
        "subsystem": entry["subsystem"],
        "params": entry["params"],
        "fired": plan.fired,
        "delays_applied": plan.delays_applied,
        "stop_reason": stop_reason[0] if stop_reason else None,
        "submitted_through": progress["submitted"],
        "target": target,
        "query_outcomes": outcomes,
        "breaker_trips": breaker_trips,
        "quarantined": quarantined_after,
        "recovery_seconds": round(recovery_seconds, 6),
        "height": height,
        "invariants": invariants,
        "notes": notes,
        "ok": all(invariants.values()),
    }


def _fault_observed(
    kind: str,
    plan: FaultPlan,
    quarantined_before: List[str],
    quarantined_after: List[str],
) -> bool:
    """Did the scheduled fault demonstrably happen?

    Each kind leaves different evidence: crashes and read faults mark
    the plan as fired, injected latency counts its sleeps, and a silent
    bit flip is only ever *observed* as a checksum failure -- i.e. a
    newly quarantined SSTable after recovery.
    """
    if kind == "crash":
        return plan.fired is not None
    if kind == "bitflip":
        return len(quarantined_after) > len(quarantined_before)
    if kind == "readfault":
        return plan.fired is not None and plan.fired.startswith("read:")
    return plan.delays_applied > 0


# -- recovery and verification ---------------------------------------------


def _recover_and_verify(
    live_dir: Path,
    config: FabricConfig,
    reference: _Reference,
    acked: Set[str],
    final: bool = False,
) -> Tuple[Dict[str, bool], int, float, List[str]]:
    """Reopen on the real filesystem and check every soak invariant.

    Returns ``(invariants, height, recovery_seconds, notes)``; recovery
    time is the full reopen (WAL replay, quarantine, index rebuild,
    state replay), which the bench reports per fault kind.
    """
    from repro.faults.doctor import run_doctor

    started = time.monotonic()
    network = FabricNetwork(live_dir, config=config)
    recovery_seconds = time.monotonic() - started
    invariants: Dict[str, bool] = {}
    notes: List[str] = []
    ledger = network.ledger
    try:
        try:
            ledger.verify_chain()
            invariants["chain-verifies"] = True
        except ReproError as exc:
            invariants["chain-verifies"] = False
            notes.append(str(exc))
        height = ledger.height
        prefix_ok = height <= reference.height
        if not prefix_ok:
            notes.append(
                f"live height {height} exceeds reference height {reference.height}"
            )
        else:
            for block in ledger.block_store.iter_blocks():
                if block.header.hash().hex() != reference.header_hashes[block.number]:
                    prefix_ok = False
                    notes.append(
                        f"block {block.number} header differs from the reference run"
                    )
                    break
        invariants["prefix-matches-reference"] = prefix_ok
        committed = {
            tx.tx_id
            for block in ledger.block_store.iter_blocks()
            for tx in block.transactions
            if tx.validation_code == VALID
        }
        lost = acked - committed
        invariants["no-acked-tx-lost"] = not lost
        if lost:
            notes.append(f"acknowledged transactions lost: {sorted(lost)[:3]}")
        audit = audit_ledger(ledger)
        invariants["audit-clean"] = audit.ok
        if not audit.ok:
            notes.extend(
                str(finding)
                for finding in audit.findings
                if finding.severity == "error"
            )
        # Recovery already quarantined anything corrupt; a scrub of the
        # rebuilt store must come back empty.
        invariants["scrub-clean"] = ledger.state_db.scrub() == ()
        if prefix_ok:
            engine = TemporalQueryEngine(ledger, network.metrics, workers=1)
            tqf_rows = sorted(engine.run_join(FALLBACK_MODEL, reference.window).rows)
            invariants["tqf-matches-reference"] = (
                tqf_rows == reference.rows_by_height[height]
            )
            m1_result = engine.run_join("m1", reference.window, degrade=True)
            m1_ok = sorted(m1_result.rows) == reference.rows_by_height[height]
            if height > 0:
                # With committed-but-unindexed events M1 *must* answer
                # via the typed degraded path, never silently.
                m1_ok = m1_ok and m1_result.degraded is not None
            invariants["m1-degrades-to-correct-rows"] = m1_ok
        else:
            invariants["tqf-matches-reference"] = False
            invariants["m1-degrades-to-correct-rows"] = False
        if final:
            invariants["chain-complete"] = height == reference.height
            invariants["state-fingerprint-matches"] = (
                ledger.state_fingerprint() == reference.fingerprint
            )
    finally:
        network.close()
    doctor = run_doctor(live_dir, config=config)
    invariants["doctor-ok"] = doctor.ok
    if not doctor.ok:
        notes.extend(
            str(finding) for finding in doctor.findings if finding.severity == "error"
        )
    return invariants, height, recovery_seconds, notes


def _final_round(
    live_dir: Path,
    config: FabricConfig,
    cfg: ChaosConfig,
    events: List[Event],
    reference: _Reference,
    acked: Set[str],
) -> Dict[str, Any]:
    """Fault-free completion: ingest the rest, then require the full
    chain and state fingerprint to equal the reference bit-for-bit."""
    network = FabricNetwork(live_dir, config=config)
    try:
        network.install(SupplyChainChaincode())

        def listener(block) -> None:
            for tx in block.transactions:
                if tx.validation_code == VALID:
                    acked.add(tx.tx_id)

        network.on_block(listener)
        gateway = network.gateway(_CLIENT)
        resume_from = _committed_tx_count(network.ledger)
        for event in events[resume_from:]:
            _submit_event(gateway, event)
        gateway.flush()
    finally:
        network.close()
    invariants, height, recovery_seconds, notes = _recover_and_verify(
        live_dir, config, reference, acked, final=True
    )
    return {
        "round": "final",
        "kind": "none",
        "subsystem": "none",
        "resumed_from": resume_from,
        "recovery_seconds": round(recovery_seconds, 6),
        "height": height,
        "invariants": invariants,
        "notes": notes,
        "ok": all(invariants.values()),
    }
