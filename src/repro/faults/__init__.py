"""Deterministic fault injection and crash recovery.

The subsystem has four parts:

* :mod:`repro.faults.fs` -- the ``FileSystem`` seam the storage layer
  writes through.  ``REAL_FS`` delegates to the builtins; ``FaultyFS``
  buffers in userspace so a simulated kill loses exactly the unflushed
  bytes (and a power loss everything past the last fsync).
* :mod:`repro.faults.plan` -- ``FaultPlan``: a seeded schedule of torn
  writes, bit flips, lost renames and crash-point hits.
* :mod:`repro.faults.crashpoints` -- named points on the commit and
  indexing paths; ``crash_point(NAME)`` costs one global ``is None``
  check until a plan is armed with ``active_plan``.
* :mod:`repro.faults.doctor` -- offline consistency checker for a
  (possibly crashed) ledger directory; import it explicitly, it pulls in
  the whole fabric layer.

:mod:`repro.faults.manifest` provides the atomic JSON run manifest that
makes the M1 indexing process resumable.
"""

from repro.faults.crashpoints import (
    ALL_CRASH_POINTS,
    COMMIT_CRASH_POINTS,
    M1_CRASH_POINTS,
    active_plan,
    crash_point,
)
from repro.faults.fs import REAL_FS, FaultyFS, FaultyReadFile, FileSystem
from repro.faults.manifest import RunManifest
from repro.faults.plan import FaultPlan

__all__ = [
    "ALL_CRASH_POINTS",
    "COMMIT_CRASH_POINTS",
    "M1_CRASH_POINTS",
    "active_plan",
    "crash_point",
    "REAL_FS",
    "FaultyFS",
    "FaultyReadFile",
    "FileSystem",
    "RunManifest",
    "FaultPlan",
]
