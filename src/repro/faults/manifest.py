"""Atomic JSON run manifests for resumable batch processes.

A manifest records the progress of a long-running job (the M1 indexing
process) so a crashed run can be resumed instead of restarted.  Saves are
atomic -- staged to a temp file and ``os.replace``d into place -- so the
manifest on disk is always one complete, parseable snapshot: either the
old progress or the new, never a torn mix.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional

from repro.common.errors import RecoveryError
from repro.faults.fs import REAL_FS, FileSystem


class RunManifest:
    """One JSON progress file with atomic save / load / clear."""

    def __init__(self, path: str | Path, fs: FileSystem = REAL_FS) -> None:
        self.path = Path(path)
        self._fs = fs

    def load(self) -> Optional[Dict[str, Any]]:
        """The last saved snapshot, or ``None`` if no run is in progress.

        A manifest that exists but does not parse is damage the caller
        cannot safely interpret as either "fresh run" or "resume here",
        so it raises :class:`RecoveryError` instead of guessing.
        """
        if not self.path.exists():
            return None
        try:
            raw = json.loads(self.path.read_text("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise RecoveryError(
                f"run manifest {self.path} is corrupt: {exc}"
            ) from exc
        if not isinstance(raw, dict):
            raise RecoveryError(
                f"run manifest {self.path} is corrupt: not a JSON object"
            )
        return raw

    def save(self, state: Dict[str, Any]) -> None:
        """Atomically replace the manifest with ``state``."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(state, sort_keys=True).encode("utf-8")
        tmp_path = self.path.with_name(self.path.name + ".tmp")
        handle = self._fs.open(tmp_path, "wb")
        try:
            handle.write(payload)
            self._fs.fsync(handle)
        finally:
            handle.close()
        self._fs.replace(tmp_path, self.path)

    def clear(self) -> None:
        """Remove the manifest (the run finished)."""
        self.path.with_name(self.path.name + ".tmp").unlink(missing_ok=True)
        if self.path.exists():
            self._fs.remove(self.path)
