"""``repro doctor``: consistency checker for a ledger directory.

The doctor answers one question about a directory that may have just
survived a crash: *is everything on disk mutually consistent, and where
it is not, is the damage repairable?*  It layers four groups of checks:

1. **Raw storage** (before any recovery runs): WAL record integrity,
   SSTable checksums, stray ``.tmp`` staging files.
2. **Recovery**: the ledger is opened normally, which repairs whatever
   is derivable (block index, history index, state replay).
3. **Cross-structure audit** (:func:`repro.fabric.audit.audit_ledger`):
   hash chain, data hashes, state-db vs an independent chain replay,
   history index, savepoint.
4. **M1 index consistency**: interval directories must point at bundles
   that exist in history, half-finished bundle pairs and an unfinished
   run manifest are flagged as resumable.

Everything is reported as findings (never an exception for damage), so
operators see the whole picture in one run.

The doctor also reads chaos-soak manifests
(:func:`check_soak_manifest`): the record
:func:`repro.faults.chaos.run_chaos_soak` leaves behind, summarizing the
injected faults, which invariants held after each one, and the last
block height that verified against the fault-free reference.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import List, Optional

from repro.common.config import FabricConfig
from repro.common.errors import ReproError, WalCorruptionError
from repro.fabric.audit import Finding, audit_ledger

_WAL_NAME = "wal.log"
_BTREE_WAL_NAME = "btree.wal"
_BTREE_CHECKPOINT_NAME = "btree-checkpoint.sst"


@dataclasses.dataclass
class DoctorReport:
    """Everything the doctor found (no error findings == consistent)."""

    path: str
    backend: str
    height: int = 0
    wal_records: int = 0
    sstables_checked: int = 0
    findings: List[Finding] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(f.severity == "error" for f in self.findings)

    def add(self, severity: str, code: str, detail: str) -> None:
        """Record one finding."""
        self.findings.append(Finding(severity=severity, code=code, detail=detail))

    def render(self) -> str:
        status = "consistent" if self.ok else "INCONSISTENT"
        if self.backend == "chaos-soak":
            lines = [
                f"doctor: {self.path} [chaos-soak manifest] -> {status}",
                f"  last verified block height {self.height}",
            ]
        else:
            lines = [
                f"doctor: {self.path} [{self.backend} state-db] -> {status}",
                f"  chain height {self.height}, wal records {self.wal_records}, "
                f"sstables verified {self.sstables_checked}",
            ]
        lines.extend(f"  {finding}" for finding in self.findings)
        return "\n".join(lines)


def detect_backend(path: str | Path) -> str:
    """Guess the state-db backend from what the directory contains (each
    durable backend uses distinct file names)."""
    statedb = Path(path) / "statedb"
    if (statedb / _BTREE_WAL_NAME).exists() or (
        statedb / _BTREE_CHECKPOINT_NAME
    ).exists():
        return "btree"
    if (statedb / _WAL_NAME).exists() or any(statedb.glob("sst-*.sst")):
        return "lsm"
    return "memory"


def run_doctor(
    path: str | Path,
    config: Optional[FabricConfig] = None,
    manifest_path: Optional[str | Path] = None,
) -> DoctorReport:
    """Run every check against the ledger directory at ``path``.

    ``config`` defaults to a :class:`FabricConfig` with the state-db
    backend auto-detected from the directory.  ``manifest_path`` points
    at the M1 indexer's run manifest, if one is in use.
    """
    path = Path(path)
    if not path.is_dir():
        # Bail before Ledger() would scaffold a fresh (empty, "healthy")
        # directory here -- a diagnostic must never create state.
        report = DoctorReport(path=str(path), backend="unknown")
        report.add("error", "no-such-directory", f"{path} is not a directory")
        return report
    if config is None:
        config = FabricConfig()
        config = dataclasses.replace(
            config,
            state_db=dataclasses.replace(
                config.state_db, backend=detect_backend(path)
            ),
        )
    report = DoctorReport(path=str(path), backend=config.state_db.backend)

    _check_raw_storage(path, report)

    from repro.fabric.ledger import Ledger

    try:
        ledger = Ledger(path, config=config)
    except ReproError as exc:
        report.add("error", "recovery-failed", f"ledger will not open: {exc}")
        return report
    try:
        report.height = ledger.height
        audit = audit_ledger(ledger)
        report.findings.extend(audit.findings)
        _check_m1(ledger, report)
    finally:
        ledger.close()

    if manifest_path is not None and Path(manifest_path).exists():
        report.add(
            "warning", "m1-run-in-progress",
            f"run manifest {manifest_path} exists: an M1 indexing run was "
            "interrupted; rerun the same range to resume it",
        )
    return report


def check_soak_manifest(manifest_path: str | Path) -> DoctorReport:
    """Summarize a chaos-soak manifest as doctor findings.

    Every failed per-round invariant becomes an error finding (so the
    CLI exits non-zero on a soak that observed damage), an interrupted
    soak becomes a warning, and the injected-event summary plus the last
    verified block height are reported as info findings.
    """
    path = Path(manifest_path)
    report = DoctorReport(path=str(path), backend="chaos-soak")
    from repro.faults.manifest import RunManifest

    try:
        state = RunManifest(path).load()
    except ReproError as exc:
        report.add("error", "soak-manifest-corrupt", str(exc))
        return report
    if state is None:
        report.add("error", "no-such-manifest", f"{path} does not exist")
        return report
    if state.get("kind") != "chaos-soak":
        report.add(
            "error", "not-a-soak-manifest",
            f"{path} is a {state.get('kind', 'unknown')!r} manifest, "
            "not a chaos-soak record",
        )
        return report

    report.height = int(state.get("last_verified_height", 0))
    rounds = list(state.get("events") or [])
    final = state.get("final")
    by_kind: dict[str, int] = {}
    observed = 0
    for record in rounds:
        kind = str(record.get("kind", "unknown"))
        by_kind[kind] = by_kind.get(kind, 0) + 1
        if record.get("fired") or record.get("delays_applied"):
            observed += 1
    summary = ", ".join(f"{count}x {kind}" for kind, count in sorted(by_kind.items()))
    report.add(
        "info", "soak-summary",
        f"seed {state.get('seed')}: {len(rounds)} injected events "
        f"({summary or 'none'}), {observed} observed in-round",
    )
    for record in rounds + ([final] if final else []):
        label = record.get("round", "?")
        kind = record.get("kind", "fault-free")
        for name, passed in sorted((record.get("invariants") or {}).items()):
            if not passed:
                report.add(
                    "error", "soak-invariant-failed",
                    f"round {label} ({kind}): invariant {name!r} failed",
                )
    if not state.get("complete", False):
        report.add(
            "warning", "soak-incomplete",
            "the soak never reached its final fault-free verification "
            "round; rerun it to completion before trusting the ledger",
        )
    report.add(
        "info", "soak-verified-height",
        f"last block height verified against the reference: {report.height}",
    )
    return report


def _check_raw_storage(path: Path, report: DoctorReport) -> None:
    """WAL and SSTable integrity straight off the files, pre-recovery."""
    from repro.storage.kv.sstable import SSTableReader
    from repro.storage.kv.wal import replay

    statedb = path / "statedb"
    for wal_name in (_WAL_NAME, _BTREE_WAL_NAME):
        wal_path = statedb / wal_name
        if wal_path.exists():
            try:
                report.wal_records += sum(1 for _ in replay(wal_path))
            except WalCorruptionError as exc:
                report.add("error", "wal-corrupt", str(exc))
    tables = sorted(statedb.glob("sst-*.sst"))
    if (statedb / _BTREE_CHECKPOINT_NAME).exists():
        tables.append(statedb / _BTREE_CHECKPOINT_NAME)
    for table in tables:
        try:
            SSTableReader(table)
            report.sstables_checked += 1
        except ReproError as exc:
            # SSTableError messages already lead with the file name.
            report.add("error", "sstable-corrupt", str(exc))
    for pattern in ("statedb/*.tmp", "ledger/index/*.tmp"):
        for stray in sorted(path.glob(pattern)):
            report.add(
                "warning", "stray-temp-file",
                f"{stray.relative_to(path)}: staging file left by a crash "
                "(swept automatically on open)",
            )


def _check_m1(ledger, report: DoctorReport) -> None:
    """M1 invariants: directories point at real bundles; bundle pairs
    that are missing their ``clear_index`` half are resumable, not
    fatal."""
    from repro.temporal.intervals import TimeInterval
    from repro.temporal.keys import encode_interval_key, is_interval_key
    from repro.temporal.m1 import DIRECTORY_PREFIX
    from repro.temporal.tqf import PREFIX_END

    for key, _ in ledger.state_db.get_state_by_range("", ""):
        if is_interval_key(key):
            report.add(
                "warning", "m1-unfinished-bundle",
                f"{key!r} still in state-db: its clear_index transaction "
                "never committed (resuming the indexing run repairs this)",
            )
    for dir_key, state in ledger.state_db.get_state_by_range(
        DIRECTORY_PREFIX, DIRECTORY_PREFIX + PREFIX_END
    ):
        base_key = dir_key[len(DIRECTORY_PREFIX):]
        for start, end in state.value or []:
            index_key = encode_interval_key(
                base_key, TimeInterval(start, end)
            )
            if not ledger.history_db.locations_for_key(index_key):
                report.add(
                    "error", "m1-directory-dangling",
                    f"directory of {base_key!r} lists interval "
                    f"({start}, {end}] but no bundle exists in history",
                )
