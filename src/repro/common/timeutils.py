"""Logical time and wall-clock measurement helpers.

The paper expresses event times as *logical timestamps* in ``0..t_max``
(e.g. ``t_max = 150K`` for DS1).  The simulator keeps that convention:
events, index intervals and query windows are all expressed in logical
time, while performance is measured in wall-clock seconds via
:class:`Stopwatch`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

#: Logical timestamps are plain non-negative integers.
Timestamp = int


def require_timestamp(value: int, name: str = "timestamp") -> int:
    """Validate that ``value`` is a usable logical timestamp.

    Raises:
        ValueError: if ``value`` is negative or not an integer.
    """
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


class LogicalClock:
    """A monotonically non-decreasing logical clock.

    The ingestion pipeline advances this clock to each event's timestamp so
    that components which need "now" (e.g. Model M2's ``GetState-Base``
    probing, which starts from the *current* indexing interval) observe a
    consistent notion of logical time.
    """

    def __init__(self, start: Timestamp = 0) -> None:
        self._now = require_timestamp(start, "start")

    @property
    def now(self) -> Timestamp:
        """The current logical time."""
        return self._now

    def advance_to(self, timestamp: Timestamp) -> Timestamp:
        """Move the clock forward to ``timestamp``.

        The clock never moves backwards: advancing to an earlier time is a
        no-op, which lets out-of-order readers share a clock safely.
        """
        require_timestamp(timestamp)
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogicalClock(now={self._now})"


@dataclass
class Stopwatch:
    """Accumulating wall-clock stopwatch.

    Usable either as a context manager (accumulates on exit) or through
    explicit :meth:`start` / :meth:`stop` calls.  ``elapsed`` is the total
    across all completed intervals.
    """

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> "Stopwatch":
        if self._started_at is not None:
            raise RuntimeError("Stopwatch is already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the watch and return the total elapsed seconds."""
        if self._started_at is None:
            raise RuntimeError("Stopwatch is not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def format_duration(seconds: float) -> str:
    """Render a duration the way the paper's tables do (``7m13s``, ``3.8s``).

    Sub-minute durations keep one decimal; longer durations use ``XmYs``.
    """
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 60:
        return f"{seconds:.2f}s" if seconds < 10 else f"{seconds:.1f}s"
    minutes, rem = divmod(int(round(seconds)), 60)
    return f"{minutes}m{rem}s"
