"""Resilience primitives: bounded retries, time budgets, circuit breakers.

Three small, composable pieces that every layer above storage shares:

* :class:`RetryPolicy` -- bounded exponential backoff with *seeded*
  jitter.  The delay schedule is a pure function of the policy's
  parameters and seed, so a retry test replays bit-for-bit (the gateway's
  MVCC backoff used to be ad-hoc arithmetic inline; now it is this).
* :class:`Deadline` -- a monotonic time budget created once at an API
  boundary and threaded through the call chain.  Anything that might
  block checks it (and raises the typed
  :class:`~repro.common.errors.DeadlineExceededError`) instead of
  letting one slow disk read stall a query forever.
* :class:`CircuitBreaker` -- the classic closed / open / half-open
  automaton over a sliding failure-rate window.  A dependency that keeps
  failing gets *refused* (typed
  :class:`~repro.common.errors.CircuitOpenError`) instead of hammered,
  and is re-probed by a single trial call after a reset timeout.

Clocks and sleeps are injected everywhere: production uses
``time.monotonic`` / ``time.sleep``, tests pass counters and fakes so no
resilience test ever waits on a wall clock.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Iterator, List, Optional, Tuple, Type, TypeVar

from repro.common.errors import (
    CircuitOpenError,
    ConfigError,
    DeadlineExceededError,
)
from repro.common.locks import make_lock
from repro.sanitizer.shared import sanitize_shared

__all__ = ["RetryPolicy", "Deadline", "CircuitBreaker"]

ResultT = TypeVar("ResultT")


class RetryPolicy:
    """Bounded exponential backoff with seeded, deterministic jitter.

    Attempt ``n`` (0-based) sleeps ``min(cap, base * 2**n)``, then the
    jitter fraction spreads that by up to ``+/- jitter * delay`` using a
    :class:`random.Random` seeded at construction -- two policies built
    with the same parameters produce byte-identical delay sequences, so
    backoff behaviour is testable and replayable, never timing-flaky.
    """

    def __init__(
        self,
        max_retries: int = 0,
        base: float = 0.01,
        cap: float = 0.5,
        jitter: float = 0.0,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_retries < 0:
            raise ConfigError(f"max_retries must be non-negative, got {max_retries}")
        if base < 0 or cap < 0:
            raise ConfigError("backoff base and cap must be non-negative")
        if not 0.0 <= jitter < 1.0:
            raise ConfigError(f"jitter must be in [0, 1), got {jitter}")
        self.max_retries = max_retries
        self.base = base
        self.cap = cap
        self.jitter = jitter
        self.seed = seed
        self._sleep = sleep

    def delays(self) -> Iterator[float]:
        """The (infinite) delay schedule; deterministic for a given seed.

        Each call returns a fresh iterator starting from the seed, so
        every retried operation sees the same schedule.
        """
        rng = random.Random(self.seed)
        attempt = 0
        while True:
            delay = min(self.cap, self.base * (2 ** attempt))
            if self.jitter:
                delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield max(0.0, delay)
            attempt += 1

    def sleep(self, seconds: float) -> None:
        """Sleep through the injected sleeper (never call while holding
        a lock -- CONC003 polices exactly that)."""
        if seconds > 0:
            self._sleep(seconds)

    def call(
        self,
        fn: Callable[[], ResultT],
        retry_on: Tuple[Type[BaseException], ...],
        deadline: Optional["Deadline"] = None,
    ) -> ResultT:
        """Run ``fn`` retrying on ``retry_on`` exceptions.

        The final attempt's exception propagates unchanged.  With a
        ``deadline``, a retry never starts after the budget has run out
        (the deadline raises instead, chaining the last failure).
        """
        delays = self.delays()
        attempt = 0
        while True:
            try:
                return fn()
            except retry_on as exc:
                if attempt >= self.max_retries:
                    raise
                if deadline is not None and deadline.expired:
                    raise DeadlineExceededError(
                        f"deadline expired after {attempt + 1} attempt(s): {exc}"
                    ) from exc
                attempt += 1
                self.sleep(next(delays))


class Deadline:
    """A monotonic time budget threaded through a call chain.

    Create one at the boundary (:meth:`after`) and pass it down; anything
    that might block calls :meth:`check` first and bounds its waits with
    :meth:`remaining`.  The clock is injectable so tests can expire a
    deadline without sleeping.
    """

    __slots__ = ("budget", "_expires_at", "_clock")

    def __init__(
        self,
        budget: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget <= 0:
            raise ConfigError(f"deadline budget must be positive, got {budget}")
        self.budget = budget
        self._clock = clock
        self._expires_at = clock() + budget

    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """A deadline ``seconds`` from now on ``clock``."""
        return cls(seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left in the budget (never negative)."""
        return max(0.0, self._expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceededError` if the budget ran out."""
        if self.expired:
            raise DeadlineExceededError(
                f"{what} abandoned: deadline of {self.budget:g}s exceeded"
            )


#: Circuit breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@sanitize_shared("_state", "_outcomes", "_opened_at", "_probe_in_flight", "trips")
class CircuitBreaker:
    """Closed / open / half-open breaker over a failure-rate window.

    *Closed* passes calls through, recording outcomes in a sliding
    window.  Once at least ``min_calls`` outcomes are in the window and
    the failure rate reaches ``failure_threshold``, the breaker *opens*:
    :meth:`allow` answers ``False`` (and :meth:`check` raises the typed
    :class:`CircuitOpenError`) without touching the dependency.  After
    ``reset_timeout`` seconds it goes *half-open*: exactly one probe call
    is allowed through; success closes the breaker, failure re-opens it
    for another timeout.

    Thread-safe: one breaker is shared by every thread using the guarded
    dependency, and all state transitions happen under its lock (no
    blocking work ever runs inside it).
    """

    def __init__(
        self,
        name: str = "",
        failure_threshold: float = 0.5,
        min_calls: int = 3,
        window: int = 10,
        reset_timeout: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ConfigError(
                f"failure_threshold must be in (0, 1], got {failure_threshold}"
            )
        if min_calls < 1:
            raise ConfigError(f"min_calls must be >= 1, got {min_calls}")
        if window < min_calls:
            raise ConfigError(
                f"window ({window}) must be >= min_calls ({min_calls})"
            )
        if reset_timeout <= 0:
            raise ConfigError(
                f"reset_timeout must be positive, got {reset_timeout}"
            )
        self.name = name
        self._failure_threshold = failure_threshold
        self._min_calls = min_calls
        self._window = window
        self._reset_timeout = reset_timeout
        self._clock = clock
        self._lock = make_lock("CircuitBreaker._lock")
        self._state = CLOSED
        self._outcomes: List[bool] = []  # True = success, sliding window
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.trips = 0

    @property
    def state(self) -> str:
        """Current state (``closed`` / ``open`` / ``half-open``),
        advancing open -> half-open when the reset timeout has elapsed."""
        with self._lock:
            self._advance_locked()
            return self._state

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        In the half-open state only the first caller gets ``True`` (the
        probe); everyone else is refused until its outcome is recorded.
        """
        with self._lock:
            self._advance_locked()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def check(self) -> None:
        """:meth:`allow` as an exception: refuse with :class:`CircuitOpenError`."""
        if not self.allow():
            label = self.name or "dependency"
            with self._lock:
                failures = self._failures_in_window()
                total = len(self._outcomes)
            raise CircuitOpenError(
                f"circuit breaker for {label} is {OPEN}: "
                f"{failures}/{total} recent "
                "calls failed; retry after the reset timeout"
            )

    def record_success(self) -> None:
        """Record a successful call (closes a half-open breaker)."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._outcomes = []
                self._probe_in_flight = False
                return
            self._push_locked(True)

    def record_failure(self) -> None:
        """Record a failed call (may trip the breaker open)."""
        with self._lock:
            now = self._clock()
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open.
                self._state = OPEN
                self._opened_at = now
                self._probe_in_flight = False
                self.trips += 1
                return
            self._push_locked(False)
            if self._state == CLOSED and self._should_trip_locked():
                self._state = OPEN
                self._opened_at = now
                self.trips += 1

    # -- internals (callers hold the lock) --------------------------------

    def _advance_locked(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self._reset_timeout
        ):
            self._state = HALF_OPEN
            self._probe_in_flight = False

    def _push_locked(self, ok: bool) -> None:
        self._outcomes.append(ok)
        if len(self._outcomes) > self._window:
            self._outcomes = self._outcomes[-self._window:]

    def _should_trip_locked(self) -> bool:
        if len(self._outcomes) < self._min_calls:
            return False
        failures = sum(1 for ok in self._outcomes if not ok)
        return failures / len(self._outcomes) >= self._failure_threshold

    def _failures_in_window(self) -> int:
        return sum(1 for ok in self._outcomes if not ok)
