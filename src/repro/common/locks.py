"""The process-wide concurrency seam: locks and task handoffs.

Every lock-carrying class in the tree (Gateway, BlockCache,
MetricsRegistry, LSMStore, HistoryDB, the M1 bundle cache, FaultyFile,
CircuitBreaker) acquires its synchronization primitives from this
module instead of calling ``threading.Lock()`` directly, and the
parallel query executor routes its per-key work items through
:func:`wrap_task` / :func:`join_task`.  That single indirection is what
lets the dynamic race sanitizer (:mod:`repro.sanitizer`) observe every
acquire/release and every fork/join edge in the process without any
per-call-site instrumentation -- and what lets ``repro-lint`` keep its
static lock model: the analyzer recognizes :func:`make_lock` /
:func:`make_rlock` / :func:`make_condition` as ``threading`` factory
calls, so the CONC001-004 rules see exactly the same lock-carrying
classes they did before the seam existed.

The default factory hands out plain ``threading`` primitives, so with
no sanitizer installed the seam costs one function call at lock
*construction* time and nothing per acquire.  Installing a factory
(:func:`install_factory`) swaps what future constructions return; locks
already handed out are unaffected, which is why the sanitizer's
wrappers consult the *active* runtime dynamically rather than binding
to one at construction.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional, Protocol, TypeVar

__all__ = [
    "LockLike",
    "ConditionLike",
    "ConcurrencyFactory",
    "make_lock",
    "make_rlock",
    "make_condition",
    "wrap_task",
    "join_task",
    "install_factory",
    "reset_factory",
    "current_factory",
]

CallableT = TypeVar("CallableT", bound=Callable[..., Any])


class LockLike(Protocol):
    """The lock surface the codebase uses (``with`` + explicit acquire)."""

    def acquire(self, blocking: bool = ..., timeout: float = ...) -> bool:
        """Acquire the lock; returns whether it was acquired."""
        ...

    def release(self) -> None:
        """Release the lock."""
        ...

    def __enter__(self) -> bool: ...

    def __exit__(self, *exc_info: object) -> Any: ...


class ConditionLike(Protocol):
    """The condition-variable surface (a :class:`LockLike` plus waits)."""

    def acquire(self, blocking: bool = ..., timeout: float = ...) -> bool:
        """Acquire the underlying lock."""
        ...

    def release(self) -> None:
        """Release the underlying lock."""
        ...

    def __enter__(self) -> bool: ...

    def __exit__(self, *exc_info: object) -> Any: ...

    def wait(self, timeout: Optional[float] = ...) -> bool:
        """Block until notified (or the timeout elapses)."""
        ...

    def notify(self, n: int = ...) -> None:
        """Wake up to ``n`` waiters."""
        ...

    def notify_all(self) -> None:
        """Wake every waiter."""
        ...


class ConcurrencyFactory(Protocol):
    """What an installed factory must provide.

    ``name`` identifies the construction site (conventionally
    ``ClassName.attr``); the default factory ignores it, the sanitizer
    uses it in witnesses and the dynamic lock-order graph.
    """

    def make_lock(self, name: str) -> LockLike:
        """Build a mutex for construction site ``name``."""
        ...

    def make_rlock(self, name: str) -> LockLike:
        """Build a re-entrant mutex for construction site ``name``."""
        ...

    def make_condition(self, lock: Optional[LockLike], name: str) -> ConditionLike:
        """Build a condition variable (over ``lock`` when given)."""
        ...

    def wrap_task(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        """Wrap a unit of work being handed to another thread."""
        ...

    def join_task(self, task: Callable[..., Any]) -> None:
        """Observe a completed task's result (the join edge)."""
        ...


class _DefaultFactory:
    """Plain ``threading`` primitives; tasks pass through untouched."""

    def make_lock(self, name: str) -> LockLike:
        return threading.Lock()

    def make_rlock(self, name: str) -> LockLike:
        return threading.RLock()

    def make_condition(
        self, lock: Optional[LockLike], name: str
    ) -> ConditionLike:
        return threading.Condition(lock)  # type: ignore[arg-type]

    def wrap_task(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        return fn

    def join_task(self, task: Callable[..., Any]) -> None:
        return None


_DEFAULT = _DefaultFactory()
_factory: ConcurrencyFactory = _DEFAULT


def make_lock(name: str = "") -> LockLike:
    """A mutex from the installed factory (default: ``threading.Lock``)."""
    return _factory.make_lock(name)


def make_rlock(name: str = "") -> LockLike:
    """A re-entrant mutex from the installed factory."""
    return _factory.make_rlock(name)


def make_condition(lock: Optional[LockLike] = None, name: str = "") -> ConditionLike:
    """A condition variable from the installed factory.

    With ``lock=None`` the factory supplies the underlying mutex (the
    ``threading.Condition()`` behaviour).
    """
    return _factory.make_condition(lock, name)


def wrap_task(fn: CallableT) -> Callable[..., Any]:
    """Mark ``fn`` as a unit of work handed to another thread.

    Call this once per submission, at submission time: the sanitizer's
    factory snapshots the submitting thread's vector clock into the
    wrapper (the *fork* edge), so everything the submitter did before
    handing the task off happens-before everything the worker does
    inside it.  The default factory returns ``fn`` unchanged.
    """
    return _factory.wrap_task(fn)


def join_task(task: Callable[..., Any]) -> None:
    """Mark ``task``'s result as observed by the current thread.

    The *join* edge: call after the worker's result has been collected
    (e.g. after ``future.result()``), so everything the worker did
    happens-before everything the collector does next.  A no-op for
    tasks that never ran, and under the default factory.
    """
    _factory.join_task(task)


def install_factory(factory: ConcurrencyFactory) -> ConcurrencyFactory:
    """Install ``factory`` for future constructions; returns the previous
    one so callers can restore it (the sanitizer does this on disable)."""
    global _factory
    previous = _factory
    _factory = factory
    return previous


def reset_factory() -> None:
    """Restore the plain-``threading`` default factory."""
    global _factory
    _factory = _DEFAULT


def current_factory() -> ConcurrencyFactory:
    """The factory new locks currently come from."""
    return _factory
