"""Exception hierarchy for the repro package.

Every exception raised by this library derives from :class:`ReproError`,
so callers can catch a single base class at API boundaries.  Layer-specific
subclasses keep the failure domain obvious from the type alone.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class CodecError(ReproError):
    """Serialization or deserialization of a payload failed."""


class StorageError(ReproError):
    """Base class for storage-layer failures (KV store, block files)."""


class WalCorruptionError(StorageError):
    """The write-ahead log contains a record that fails its checksum."""


class SSTableError(StorageError):
    """An SSTable file is malformed or its footer cannot be parsed."""


class BlockFileError(StorageError):
    """A ledger block file is malformed or a block location is invalid."""


class ClosedStoreError(StorageError):
    """An operation was attempted on a store that has been closed."""


class LedgerError(ReproError):
    """Base class for Fabric-simulator failures."""


class BlockNotFoundError(LedgerError):
    """A block number beyond the current chain height was requested."""


class TransactionValidationError(LedgerError):
    """A transaction failed validation (e.g. an MVCC read conflict)."""


class EndorsementError(LedgerError):
    """Chaincode simulation failed during the endorsement phase."""


class ChaincodeError(LedgerError):
    """A chaincode invocation raised an application-level error."""


class HashChainError(LedgerError):
    """A block's previous-hash link does not match the chain."""


class TemporalQueryError(ReproError):
    """A temporal query was malformed or could not be answered."""


class IndexingError(TemporalQueryError):
    """The M1 indexing process encountered an inconsistent ledger state."""


class WorkloadError(ReproError):
    """The synthetic workload generator was given unsatisfiable parameters."""
