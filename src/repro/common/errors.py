"""Exception hierarchy for the repro package.

Every exception raised by this library derives from :class:`ReproError`,
so callers can catch a single base class at API boundaries.  Layer-specific
subclasses keep the failure domain obvious from the type alone.

The full hierarchy::

    ReproError
    ├── ConfigError              bad configuration value
    ├── CodecError               payload (de)serialization failed
    ├── ResilienceError          resilience-layer signals (budget/breaker)
    │   ├── DeadlineExceededError  a per-call time budget ran out
    │   └── CircuitOpenError     a circuit breaker is refusing calls
    ├── StorageError             storage layer (KV store, block files)
    │   ├── WalCorruptionError   WAL record fails its checksum
    │   ├── SSTableError         malformed SSTable file
    │   ├── BlockFileError       malformed block file / bad block location
    │   ├── ClosedStoreError     operation on a closed store
    │   ├── QuarantinedError     reads refused: a corrupt SSTable was isolated
    │   └── RecoveryError        crash recovery could not restore consistency
    ├── LedgerError              Fabric-simulator failures
    │   ├── BlockNotFoundError
    │   ├── TransactionValidationError
    │   ├── EndorsementError
    │   ├── ChaincodeError
    │   └── HashChainError
    ├── TemporalQueryError
    │   └── IndexingError
    ├── WorkloadError
    ├── SanitizerError           the race sanitizer (misuse / certain deadlock)
    └── FaultInjectionError      the fault-injection subsystem itself
        └── SimulatedCrashError  a scheduled crash point fired

:class:`SimulatedCrashError` is special: it is *not* a failure of the
system under test but the fault harness's signal to "kill" the process at
an instrumented crash point.  Production code must never catch it (the
harness relies on it propagating to the top), which is why it derives
from :class:`FaultInjectionError` rather than any layer error that
library code legitimately handles.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class CodecError(ReproError):
    """Serialization or deserialization of a payload failed."""


class ResilienceError(ReproError):
    """Base class for resilience-layer signals (deadlines, breakers).

    These are not failures of the system under test: they are the
    resilience layer refusing or abandoning work *on purpose* so callers
    get a typed, bounded outcome instead of an unbounded wait or a raw
    ``OSError``.
    """


class DeadlineExceededError(ResilienceError):
    """A call chain's monotonic time budget ran out before it finished."""


class CircuitOpenError(ResilienceError):
    """A circuit breaker is open: the guarded dependency has been failing
    and calls are refused without touching it until the reset timeout."""


class StorageError(ReproError):
    """Base class for storage-layer failures (KV store, block files)."""


class WalCorruptionError(StorageError):
    """The write-ahead log contains a record that fails its checksum."""


class SSTableError(StorageError):
    """An SSTable file is malformed or its footer cannot be parsed."""


class BlockFileError(StorageError):
    """A ledger block file is malformed or a block location is invalid."""


class ClosedStoreError(StorageError):
    """An operation was attempted on a store that has been closed."""


class QuarantinedError(StorageError):
    """Reads refused because a corrupt SSTable was quarantined on open.

    The store isolated a CRC-failing table instead of dying, but until a
    higher layer acknowledges the quarantine (and schedules a rebuild of
    the lost range -- the ledger replays its chain), answering reads
    would silently drop the quarantined keys.
    """

    def __init__(self, message: str, tables: tuple = ()) -> None:
        super().__init__(message)
        #: File names of the quarantined tables, for diagnostics.
        self.tables = tuple(tables)


class RecoveryError(StorageError):
    """Crash recovery found damage it could not repair.

    Raised when reopening a store whose surviving files are mutually
    inconsistent beyond what torn-tail truncation and index rebuilds can
    fix -- e.g. a corrupt block record with intact records after it.
    """


class LedgerError(ReproError):
    """Base class for Fabric-simulator failures."""


class BlockNotFoundError(LedgerError):
    """A block number beyond the current chain height was requested."""


class TransactionValidationError(LedgerError):
    """A transaction failed validation (e.g. an MVCC read conflict)."""


class EndorsementError(LedgerError):
    """Chaincode simulation failed during the endorsement phase."""


class ChaincodeError(LedgerError):
    """A chaincode invocation raised an application-level error."""


class HashChainError(LedgerError):
    """A block's previous-hash link does not match the chain."""


class TemporalQueryError(ReproError):
    """A temporal query was malformed or could not be answered."""


class IndexingError(TemporalQueryError):
    """The M1 indexing process encountered an inconsistent ledger state."""


class WorkloadError(ReproError):
    """The synthetic workload generator was given unsatisfiable parameters."""


class SanitizerError(ReproError):
    """The dynamic race sanitizer was misused, or detected an error that
    would otherwise hang the process (e.g. a thread re-acquiring a plain
    ``Lock`` it already holds -- a certain deadlock, surfaced as a typed
    error instead of a frozen test run)."""


class FaultInjectionError(ReproError):
    """The fault-injection subsystem was misused or hit a dead filesystem."""


class SimulatedCrashError(FaultInjectionError):
    """A scheduled crash point fired: the harness must treat the process
    as killed (drop the network object, then reopen and recover)."""

    def __init__(self, crash_point: str) -> None:
        super().__init__(f"simulated crash at {crash_point!r}")
        self.crash_point = crash_point
