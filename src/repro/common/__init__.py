"""Shared substrate for the repro package.

This subpackage holds the pieces every other layer builds on:

* :mod:`repro.common.errors` -- the exception hierarchy.
* :mod:`repro.common.timeutils` -- logical timestamps and stopwatches.
* :mod:`repro.common.config` -- typed configuration dataclasses.
* :mod:`repro.common.codec` -- pluggable serialization codecs.
* :mod:`repro.common.metrics` -- counters and timers used to instrument
  the ledger (blocks deserialized, GHFK calls, bytes read, ...).
"""

from repro.common.errors import (
    ReproError,
    CodecError,
    ConfigError,
    LedgerError,
    StorageError,
)
from repro.common.metrics import MetricsRegistry
from repro.common.timeutils import Stopwatch

__all__ = [
    "ReproError",
    "CodecError",
    "ConfigError",
    "LedgerError",
    "StorageError",
    "MetricsRegistry",
    "Stopwatch",
]
