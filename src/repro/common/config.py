"""Typed configuration objects for the ledger simulator and query models.

Configurations are frozen dataclasses validated at construction time so a
bad parameter fails loudly at setup instead of corrupting an experiment
half way through.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.common.errors import ConfigError

#: Environment variable controlling default benchmark scale (see DESIGN.md §5).
SCALE_ENV_VAR = "REPRO_SCALE"

#: Environment variable controlling the default query-executor worker
#: count (1 = serial).  The CI matrix runs the whole suite once with
#: ``REPRO_QUERY_WORKERS=8`` so every query path is exercised in parallel.
QUERY_WORKERS_ENV_VAR = "REPRO_QUERY_WORKERS"

#: Environment variable overriding every replayable seed: the chaos
#: soak's fault schedule, the sanitizer's fuzzed interleavings, and the
#: ``repro san`` CLI default.  One variable, recorded in every manifest
#: and report those runs emit, so a red run is replayable from its
#: artifact alone: ``REPRO_SEED=<seed from the artifact> <same command>``.
SEED_ENV_VAR = "REPRO_SEED"

#: Environment variable selecting the default state-db backend (any name
#: registered in :mod:`repro.storage.kv`: ``memory``, ``lsm``,
#: ``lsm-mmap``, ``btree``, ...).  The CI matrix runs the suite once per
#: interesting backend so every code path is exercised against each.
STATEDB_ENV_VAR = "REPRO_STATEDB"


def default_statedb_backend() -> str:
    """State-db backend name from ``REPRO_STATEDB`` (default ``memory``).

    Validation happens in :class:`StateDbConfig` against the backend
    registry, so a typo'd variable fails loudly at config construction.
    """
    # An *empty* variable (e.g. an unset CI matrix cell) means default.
    return os.environ.get(STATEDB_ENV_VAR) or "memory"


def _require_positive(value: int | float, name: str) -> None:
    if value <= 0:
        raise ConfigError(f"{name} must be positive, got {value}")


@dataclass(frozen=True)
class BlockCuttingConfig:
    """How the orderer cuts transactions into blocks.

    Mirrors Fabric's ``BatchSize`` orderer configuration.  The paper runs
    Fabric v1.0 with default settings, whose ``MaxMessageCount`` is 10.
    """

    max_message_count: int = 10
    max_batch_bytes: int = 512 * 1024
    #: Logical-time batch timeout: a block is cut when the oldest queued
    #: transaction is this much older (in logical time) than the newest.
    batch_timeout: int = 0

    def __post_init__(self) -> None:
        _require_positive(self.max_message_count, "max_message_count")
        _require_positive(self.max_batch_bytes, "max_batch_bytes")
        if self.batch_timeout < 0:
            raise ConfigError(
                f"batch_timeout must be non-negative, got {self.batch_timeout}"
            )


#: Valid values for the ``durability`` knobs: ``flush`` pushes writes to
#: the OS at sync points (survives a process kill); ``fsync`` additionally
#: calls ``os.fsync`` (survives power loss, slower).
DURABILITY_LEVELS = ("flush", "fsync")


def _require_durability(value: str) -> None:
    if value not in DURABILITY_LEVELS:
        raise ConfigError(
            f"durability must be one of {DURABILITY_LEVELS}, got {value!r}"
        )


@dataclass(frozen=True)
class StateDbConfig:
    """Backing store for the state database.

    ``backend`` names any store registered in :mod:`repro.storage.kv`
    (``memory``, ``lsm``, ``lsm-mmap``, ``btree``, ...); the remaining
    fields form the uniform option set every backend factory receives
    and picks from (e.g. ``memtable_limit`` is the LSM flush threshold
    *and* the btree checkpoint cadence).
    """

    #: Registered backend name; defaults from ``REPRO_STATEDB``.
    backend: str = field(default_factory=default_statedb_backend)
    #: Memtable flush threshold for the LSM backend, in entries (the
    #: btree backend reads it as its checkpoint interval).
    memtable_limit: int = 8192
    #: Number of L0 SSTables that triggers a compaction.
    compaction_trigger: int = 6
    #: Compaction strategy for the LSM backend: ``full`` or ``tiered``.
    compaction: str = "full"
    #: ``flush`` (default) or ``fsync``: whether WAL sync points and
    #: SSTable finalization call ``os.fsync`` so acknowledged writes
    #: survive power loss, not just a process kill.
    durability: str = "flush"

    def __post_init__(self) -> None:
        # Imported lazily: the registry populates when repro.storage.kv
        # imports, and config must stay importable from anywhere without
        # a cycle through the storage layer.
        from repro.storage.kv import backend_names

        if self.backend not in backend_names():
            raise ConfigError(
                f"state-db backend must be one of {list(backend_names())}, "
                f"got {self.backend!r}"
            )
        _require_positive(self.memtable_limit, "memtable_limit")
        _require_positive(self.compaction_trigger, "compaction_trigger")
        if self.compaction not in ("full", "tiered"):
            raise ConfigError(
                f"compaction must be 'full' or 'tiered', got {self.compaction!r}"
            )
        _require_durability(self.durability)


@dataclass(frozen=True)
class BlockStoreConfig:
    """Ledger block file layout."""

    #: Block files roll over once they exceed this many bytes.
    max_file_bytes: int = 4 * 1024 * 1024
    #: Codec used to serialize blocks (``json``, ``binary`` or
    #: ``compact`` -- binary with string interning).
    codec: str = "json"
    #: Decoded-block LRU cache capacity.  0 (the default) disables caching,
    #: matching the paper's cost model where every GHFK call pays its own
    #: block deserializations.
    cache_blocks: int = 0
    #: ``flush`` (default) or ``fsync``: whether the per-commit block file
    #: and block index sync calls ``os.fsync``.
    durability: str = "flush"
    #: Read *sealed* (rolled-over) block files through memory maps
    #: instead of seek+read handles; ignored on filesystems that cannot
    #: map (fault injection).  The active append file is never mapped.
    mmap_io: bool = False

    def __post_init__(self) -> None:
        _require_positive(self.max_file_bytes, "max_file_bytes")
        if self.codec not in ("json", "binary", "compact"):
            raise ConfigError(
                f"block codec must be 'json', 'binary' or 'compact', "
                f"got {self.codec!r}"
            )
        if self.cache_blocks < 0:
            raise ConfigError(
                f"cache_blocks must be non-negative, got {self.cache_blocks}"
            )
        _require_durability(self.durability)


def default_query_workers() -> int:
    """Query-executor worker count from ``REPRO_QUERY_WORKERS`` (default 1).

    1 keeps the serial executor -- the paper's measurement setup.  Any
    larger value fans per-key event fetches out across that many threads
    (see :mod:`repro.temporal.executor`).
    """
    raw = os.environ.get(QUERY_WORKERS_ENV_VAR, "1")
    try:
        workers = int(raw)
    except ValueError:
        raise ConfigError(
            f"{QUERY_WORKERS_ENV_VAR} must be an integer, got {raw!r}"
        ) from None
    if workers < 1:
        raise ConfigError(
            f"{QUERY_WORKERS_ENV_VAR} must be >= 1, got {workers}"
        )
    return workers


#: Environment variable controlling GHFK history-read batching: how many
#: distinct blocks one ``get_history_for_key`` call fetches from the
#: block store per round trip (1 = the paper's one-block-at-a-time loop).
GHFK_PREFETCH_ENV_VAR = "REPRO_GHFK_PREFETCH"


def default_ghfk_prefetch() -> int:
    """GHFK block-prefetch depth from ``REPRO_GHFK_PREFETCH`` (default 1).

    1 keeps the paper-faithful hot loop (one block fetched and decoded
    per distinct history location); larger values batch that many
    distinct blocks into one block-store round trip, coalescing
    same-file reads.
    """
    raw = os.environ.get(GHFK_PREFETCH_ENV_VAR, "1")
    try:
        prefetch = int(raw)
    except ValueError:
        raise ConfigError(
            f"{GHFK_PREFETCH_ENV_VAR} must be an integer, got {raw!r}"
        ) from None
    if not 1 <= prefetch <= 4096:
        raise ConfigError(
            f"{GHFK_PREFETCH_ENV_VAR} must be in [1, 4096], got {prefetch}"
        )
    return prefetch


@dataclass(frozen=True)
class QueryConfig:
    """How temporal queries execute (orthogonal to what they compute).

    ``workers=1`` runs the serial executor; ``workers>1`` fans the
    per-key ``fetch_events`` calls of a join query out across a thread
    pool.  Results are byte-identical either way -- the executor only
    changes wall-clock time, never rows or block counters.
    """

    #: Worker threads per query (1 = serial, no thread pool at all).
    workers: int = field(default_factory=default_query_workers)
    #: Distinct blocks per GHFK block-store round trip (1 = the paper's
    #: serial hot loop; more batches same-file reads).  Rows are
    #: byte-identical at every setting.
    ghfk_prefetch: int = field(default_factory=default_ghfk_prefetch)

    def __post_init__(self) -> None:
        _require_positive(self.workers, "workers")
        if self.workers > 128:
            raise ConfigError(
                f"workers must be <= 128, got {self.workers} "
                "(per-key fan-out saturates well before that)"
            )
        if not 1 <= self.ghfk_prefetch <= 4096:
            raise ConfigError(
                f"ghfk_prefetch must be in [1, 4096], got {self.ghfk_prefetch}"
            )


#: Environment variable controlling the default commit-validation
#: worker count (1 = the serial validator, Fabric-faithful).
COMMIT_WORKERS_ENV_VAR = "REPRO_COMMIT_WORKERS"


def default_commit_workers() -> int:
    """Commit-validation worker count from ``REPRO_COMMIT_WORKERS``.

    1 keeps the serial validator.  Any larger value validates
    key-disjoint conflict groups of each block concurrently (see
    :class:`repro.fabric.validator.ParallelValidator`); validation codes
    are byte-identical either way.
    """
    raw = os.environ.get(COMMIT_WORKERS_ENV_VAR, "1")
    try:
        workers = int(raw)
    except ValueError:
        raise ConfigError(
            f"{COMMIT_WORKERS_ENV_VAR} must be an integer, got {raw!r}"
        ) from None
    return workers


@dataclass(frozen=True)
class CommitConfig:
    """Commit-path concurrency: parallel validation + pipelined apply.

    Both default off so the serial, Fabric-v1.0-faithful commit path
    stays the baseline (and the crash sweeps keep their exact crash-point
    schedule).  The hash chain, validation codes and state fingerprint
    are byte-identical under every setting -- concurrency here only
    changes wall-clock time, never ledger contents.
    """

    #: Validation worker threads (1 = serial validator).
    workers: int = field(default_factory=default_commit_workers)
    #: Overlap derived-state application (history index, state-db writes,
    #: savepoint) of block N with validation of block N+1.  The block
    #: itself is always appended and synced in the foreground, so the
    #: chain-durable-before-derived-state recovery invariant holds.
    pipeline: bool = False
    #: Optional ``repro lint --footprint json`` export; when set, the
    #: parallel validator widens conflict groups for chaincodes whose
    #: access surface the RWSet cannot witness (hidden reads, ⊤ writes).
    footprint_path: str = ""

    def __post_init__(self) -> None:
        _require_positive(self.workers, "workers")
        if self.workers > 128:
            raise ConfigError(
                f"workers must be <= 128, got {self.workers} "
                "(per-group fan-out saturates well before that)"
            )


@dataclass(frozen=True)
class FabricConfig:
    """Top-level configuration for a simulated Fabric network."""

    block_cutting: BlockCuttingConfig = field(default_factory=BlockCuttingConfig)
    state_db: StateDbConfig = field(default_factory=StateDbConfig)
    block_store: BlockStoreConfig = field(default_factory=BlockStoreConfig)
    query: QueryConfig = field(default_factory=QueryConfig)
    commit: CommitConfig = field(default_factory=CommitConfig)
    #: Channel name (cosmetic, appears in block headers).
    channel: str = "supply-chain"
    #: How many times a gateway re-endorses and resubmits a transaction
    #: that commits with ``MVCC_READ_CONFLICT``.  0 (the default) keeps
    #: Fabric's raw behaviour: the conflicted transaction stays in the
    #: block, invalidated, and the client sees it via the submit result.
    max_retries: int = 0
    #: Base delay (seconds) of the gateway's bounded exponential backoff
    #: between retries: attempt ``n`` sleeps ``base * 2**(n-1)``, capped
    #: at ``retry_backoff_cap``.
    retry_backoff_base: float = 0.01
    retry_backoff_cap: float = 0.5
    #: Jitter fraction of the backoff delay (0 = none).  Jitter is drawn
    #: from a ``random.Random(retry_backoff_seed)``, so the delay
    #: schedule is deterministic for a given seed -- retry tests replay
    #: exactly instead of being timing-flaky.
    retry_backoff_jitter: float = 0.0
    retry_backoff_seed: int = 0

    def __post_init__(self) -> None:
        if not self.channel:
            raise ConfigError("channel name must be non-empty")
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.retry_backoff_base < 0 or self.retry_backoff_cap < 0:
            raise ConfigError("retry backoff values must be non-negative")
        if not 0.0 <= self.retry_backoff_jitter < 1.0:
            raise ConfigError(
                f"retry_backoff_jitter must be in [0, 1), got "
                f"{self.retry_backoff_jitter}"
            )


def repro_seed(default: int) -> int:
    """The run's replay seed: ``REPRO_SEED`` when set, else ``default``.

    Every seeded harness (chaos soak, sanitizer fuzzing, ``repro san``)
    resolves its seed through this one helper and records the resolved
    value in its output, so any failure is replayable by exporting the
    recorded seed and re-running the same command.
    """
    raw = os.environ.get(SEED_ENV_VAR)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ConfigError(
            f"{SEED_ENV_VAR} must be an integer, got {raw!r}"
        ) from None


def default_scale() -> float:
    """Benchmark scale factor from ``REPRO_SCALE`` (default 0.1).

    At scale ``s``, per-key event counts and ``t_max`` are both multiplied
    by ``s`` so interval geometry (index interval length ``u``, query window
    width) scales consistently.  ``REPRO_SCALE=1`` reproduces the paper's
    full-size datasets.
    """
    raw = os.environ.get(SCALE_ENV_VAR, "0.1")
    try:
        scale = float(raw)
    except ValueError:
        raise ConfigError(f"{SCALE_ENV_VAR} must be a float, got {raw!r}") from None
    if scale <= 0 or scale > 1:
        raise ConfigError(f"{SCALE_ENV_VAR} must be in (0, 1], got {scale}")
    return scale
