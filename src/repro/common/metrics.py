"""Counters and timers used to instrument the ledger simulator.

The paper's analysis hinges on *how many blocks each approach deserializes*
and *how many GHFK / GetState calls it makes*.  Wall-clock numbers on our
hardware will not match a 2017 ThinkPad, but these counters let every
benchmark verify the paper's block-level arguments exactly (e.g. "Model M1
makes 2500 GHFK calls but each call deserializes only one block").

A :class:`MetricsRegistry` is threaded through the storage and fabric
layers.  Components increment named counters; benchmarks snapshot and diff
them around each measured region.

The registry is **thread-safe**: the parallel query executor fans GHFK
scans out across worker threads that all bump the same counters, and an
unguarded ``dict`` read-modify-write would silently lose updates (the
classic lost-increment race).  Every mutation and every snapshot takes
the registry's lock, so counter deltas around a parallel region are
exact -- which the equivalence tests rely on to assert that the parallel
executor performs *precisely* the same block accesses as the serial path.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping

from repro.common.locks import make_lock
from repro.common.timeutils import Stopwatch
from repro.sanitizer.shared import sanitize_shared

# Canonical metric names.  Keeping them in one place avoids typo'd strings
# silently creating new counters.
BLOCKS_DESERIALIZED = "ledger.blocks_deserialized"
BLOCK_BYTES_READ = "ledger.block_bytes_read"
BLOCK_CACHE_HITS = "ledger.block_cache_hits"
BLOCK_CACHE_MISSES = "ledger.block_cache_misses"
BLOCK_CACHE_EVICTIONS = "ledger.block_cache_evictions"
BLOCKS_COMMITTED = "ledger.blocks_committed"
TXS_COMMITTED = "ledger.txs_committed"
TXS_INVALIDATED = "ledger.txs_invalidated"
GHFK_CALLS = "query.ghfk_calls"
GHFK_RESULTS = "query.ghfk_results"
GET_STATE_CALLS = "query.get_state_calls"
RANGE_SCAN_CALLS = "query.range_scan_calls"
KV_READS = "kv.reads"
KV_WRITES = "kv.writes"
KV_SSTABLE_READS = "kv.sstable_reads"
KV_BLOOM_NEGATIVES = "kv.bloom_negatives"
KV_COMPACTIONS = "kv.compactions"
KV_CHECKPOINTS = "kv.checkpoints"
WAL_RECORDS = "kv.wal_records"
STATE_TABLES_QUARANTINED = "kv.tables_quarantined"
BLOCK_BATCH_READS = "ledger.block_batch_reads"

GHFK_SECONDS = "query.ghfk_seconds"
COMMIT_SECONDS = "ledger.commit_seconds"


@dataclass
class MetricsSnapshot:
    """An immutable point-in-time copy of a registry's values."""

    counters: Mapping[str, int]
    timers: Mapping[str, float]

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def timer(self, name: str) -> float:
        return self.timers.get(name, 0.0)

    def diff(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Return this snapshot minus an earlier one (per-region deltas)."""
        names = set(self.counters) | set(earlier.counters)
        timer_names = set(self.timers) | set(earlier.timers)
        return MetricsSnapshot(
            counters={
                name: self.counters.get(name, 0) - earlier.counters.get(name, 0)
                for name in names
            },
            timers={
                name: self.timers.get(name, 0.0) - earlier.timers.get(name, 0.0)
                for name in timer_names
            },
        )


@sanitize_shared("_counters", "_timers", racy_ok=("__repr__",))
class MetricsRegistry:
    """A mutable bag of named counters and accumulated timers.

    The registry is deliberately simple -- integer counters and float
    second-accumulators behind one lock -- because it sits on hot paths
    (every block read bumps a counter) and is shared by every worker
    thread of the parallel query executor.
    """

    def __init__(self) -> None:
        self._lock = make_lock("MetricsRegistry._lock")
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, float] = {}

    def increment(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to counter ``name`` and return the new value."""
        with self._lock:
            value = self._counters.get(name, 0) + amount
            self._counters[name] = value
        return value

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def add_time(self, name: str, seconds: float) -> float:
        with self._lock:
            value = self._timers.get(name, 0.0) + seconds
            self._timers[name] = value
        return value

    def timer(self, name: str) -> float:
        with self._lock:
            return self._timers.get(name, 0.0)

    @contextmanager
    def timed(self, name: str) -> Iterator[Stopwatch]:
        """Context manager accumulating wall time into timer ``name``.

        Each ``timed`` block owns its private :class:`Stopwatch`, so
        concurrent workers timing the same name never share mutable
        state; only the final ``add_time`` is serialized.
        """
        watch = Stopwatch().start()
        try:
            yield watch
        finally:
            watch.stop()
            self.add_time(name, watch.elapsed)

    def snapshot(self) -> MetricsSnapshot:
        """A consistent copy: no increment can land between the counter
        and timer copies (both happen under the lock)."""
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters), timers=dict(self._timers)
            )

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._timers.clear()

    def as_dict(self) -> Dict[str, float]:
        """Flatten counters and timers into one report-friendly mapping."""
        with self._lock:
            merged: Dict[str, float] = dict(self._counters)
            merged.update(self._timers)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry(counters={self._counters}, timers={self._timers})"


class _NullMetricsRegistry(MetricsRegistry):
    """A write-discarding registry for callers that pass no registry.

    The old default was a plain shared :class:`MetricsRegistry`: a
    process-global accumulator nobody ever read, whose counters bled
    across tests and whose lock -- created at import time, before any
    sanitizer session -- was invisible to the race sanitizer.  A null
    sink has no mutable traffic at all: increments and timings return
    their would-be values and drop them, reads always see zero.
    """

    def increment(self, name: str, amount: int = 1) -> int:
        """Discard the increment; pretend the counter started at zero."""
        return amount

    def add_time(self, name: str, seconds: float) -> float:
        """Discard the timing; pretend the timer started at zero."""
        return seconds


#: A registry used when callers do not supply one; keeps call sites simple
#: without making instrumentation globally stateful (each component can
#: still be given its own registry).  A discarding sink: see
#: :class:`_NullMetricsRegistry`.
NULL_REGISTRY = _NullMetricsRegistry()
