"""Pluggable serialization codecs for ledger payloads.

Blocks on the simulated file system are stored as *bytes* and must be
decoded on every read -- that decode cost is the paper's central cost
driver, so it has to be real work, not a pointer copy.  Two codecs are
provided:

* :class:`JsonCodec` -- human-inspectable, the default for block storage.
* :class:`BinaryCodec` -- a compact from-scratch tag-length-value format
  (varint lengths, type tags) used by the codec ablation benchmark.

Both codecs round-trip the JSON-ish value universe: ``None``, ``bool``,
``int``, ``float``, ``str``, ``bytes``, ``list`` and ``dict`` with string
keys.  ``bytes`` survive a JSON round trip via a tagged base64 wrapper.
"""

from __future__ import annotations

import base64
import json
import struct
from abc import ABC, abstractmethod
from typing import Any

from repro.common.errors import CodecError

_BYTES_TAG = "__repro_bytes__"


class Codec(ABC):
    """Serialize Python values to bytes and back."""

    #: Short identifier used in file headers and configs.
    name: str = "abstract"

    @abstractmethod
    def encode(self, value: Any) -> bytes:
        """Serialize ``value``; raises :class:`CodecError` on failure."""

    @abstractmethod
    def decode(self, payload: bytes) -> Any:
        """Deserialize ``payload``; raises :class:`CodecError` on failure."""


class JsonCodec(Codec):
    """UTF-8 JSON with a tagged wrapper so ``bytes`` round-trip."""

    name = "json"

    def encode(self, value: Any) -> bytes:
        try:
            return json.dumps(
                value, default=self._encode_special, separators=(",", ":")
            ).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise CodecError(f"JSON encode failed: {exc}") from exc

    def decode(self, payload: bytes) -> Any:
        try:
            return json.loads(payload.decode("utf-8"), object_hook=self._decode_special)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CodecError(f"JSON decode failed: {exc}") from exc

    @staticmethod
    def _encode_special(value: Any) -> Any:
        if isinstance(value, bytes):
            return {_BYTES_TAG: base64.b64encode(value).decode("ascii")}
        raise TypeError(f"not JSON serializable: {type(value).__name__}")

    @staticmethod
    def _decode_special(obj: dict) -> Any:
        if len(obj) == 1 and _BYTES_TAG in obj:
            return base64.b64decode(obj[_BYTES_TAG])
        return obj


# --- Binary codec ----------------------------------------------------------
#
# Layout: one type-tag byte, then a type-specific body.  Variable-length
# payloads are prefixed with an unsigned LEB128 varint length.  Containers
# are a varint count followed by the encoded items.

_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT_POS = 0x03
_T_INT_NEG = 0x04
_T_FLOAT = 0x05
_T_STR = 0x06
_T_BYTES = 0x07
_T_LIST = 0x08
_T_DICT = 0x09


def write_uvarint(value: int, out: bytearray) -> None:
    """Append an unsigned LEB128 varint to ``out``."""
    if value < 0:
        raise CodecError(f"uvarint must be non-negative, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(payload: bytes, offset: int) -> tuple[int, int]:
    """Read a varint from ``payload`` at ``offset``; return (value, next_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(payload):
            raise CodecError("truncated varint")
        byte = payload[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63 * 2:
            raise CodecError("varint too long")


class BinaryCodec(Codec):
    """Compact tag-length-value binary encoding (no stdlib pickle)."""

    name = "binary"

    def encode(self, value: Any) -> bytes:
        out = bytearray()
        self._encode_into(value, out)
        return bytes(out)

    def decode(self, payload: bytes) -> Any:
        value, offset = self._decode_from(payload, 0)
        if offset != len(payload):
            raise CodecError(f"trailing bytes after value: {len(payload) - offset}")
        return value

    def _encode_into(self, value: Any, out: bytearray) -> None:
        if value is None:
            out.append(_T_NONE)
        elif value is True:
            out.append(_T_TRUE)
        elif value is False:
            out.append(_T_FALSE)
        elif isinstance(value, int):
            if value >= 0:
                out.append(_T_INT_POS)
                write_uvarint(value, out)
            else:
                out.append(_T_INT_NEG)
                write_uvarint(-value, out)
        elif isinstance(value, float):
            out.append(_T_FLOAT)
            out.extend(struct.pack(">d", value))
        elif isinstance(value, str):
            raw = value.encode("utf-8")
            out.append(_T_STR)
            write_uvarint(len(raw), out)
            out.extend(raw)
        elif isinstance(value, (bytes, bytearray)):
            out.append(_T_BYTES)
            write_uvarint(len(value), out)
            out.extend(value)
        elif isinstance(value, (list, tuple)):
            out.append(_T_LIST)
            write_uvarint(len(value), out)
            for item in value:
                self._encode_into(item, out)
        elif isinstance(value, dict):
            out.append(_T_DICT)
            write_uvarint(len(value), out)
            for key, item in value.items():
                if not isinstance(key, str):
                    raise CodecError(
                        f"dict keys must be str, got {type(key).__name__}"
                    )
                raw = key.encode("utf-8")
                write_uvarint(len(raw), out)
                out.extend(raw)
                self._encode_into(item, out)
        else:
            raise CodecError(f"unsupported type: {type(value).__name__}")

    def _decode_from(self, payload: bytes, offset: int) -> tuple[Any, int]:
        if offset >= len(payload):
            raise CodecError("truncated payload")
        tag = payload[offset]
        offset += 1
        if tag == _T_NONE:
            return None, offset
        if tag == _T_TRUE:
            return True, offset
        if tag == _T_FALSE:
            return False, offset
        if tag == _T_INT_POS:
            return read_uvarint(payload, offset)
        if tag == _T_INT_NEG:
            value, offset = read_uvarint(payload, offset)
            return -value, offset
        if tag == _T_FLOAT:
            if offset + 8 > len(payload):
                raise CodecError("truncated float")
            (value,) = struct.unpack_from(">d", payload, offset)
            return value, offset + 8
        if tag == _T_STR:
            length, offset = read_uvarint(payload, offset)
            end = offset + length
            if end > len(payload):
                raise CodecError("truncated string")
            return payload[offset:end].decode("utf-8"), end
        if tag == _T_BYTES:
            length, offset = read_uvarint(payload, offset)
            end = offset + length
            if end > len(payload):
                raise CodecError("truncated bytes")
            return payload[offset:end], end
        if tag == _T_LIST:
            count, offset = read_uvarint(payload, offset)
            items = []
            for _ in range(count):
                item, offset = self._decode_from(payload, offset)
                items.append(item)
            return items, offset
        if tag == _T_DICT:
            count, offset = read_uvarint(payload, offset)
            result: dict[str, Any] = {}
            for _ in range(count):
                key_len, offset = read_uvarint(payload, offset)
                end = offset + key_len
                if end > len(payload):
                    raise CodecError("truncated dict key")
                key = payload[offset:end].decode("utf-8")
                item, end = self._decode_from(payload, end)
                result[key] = item
                offset = end
            return result, offset
        raise CodecError(f"unknown type tag: {tag:#04x}")


_CODECS = {codec.name: codec for codec in (JsonCodec(), BinaryCodec())}


def get_codec(name: str) -> Codec:
    """Look up a codec by its :attr:`Codec.name` (``json`` or ``binary``)."""
    try:
        return _CODECS[name]
    except KeyError:
        raise CodecError(
            f"unknown codec {name!r}; available: {sorted(_CODECS)}"
        ) from None
