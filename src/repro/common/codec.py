"""Pluggable serialization codecs for ledger payloads.

Blocks on the simulated file system are stored as *bytes* and must be
decoded on every read -- that decode cost is the paper's central cost
driver, so it has to be real work, not a pointer copy.  Two codecs are
provided:

* :class:`JsonCodec` -- human-inspectable, the default for block storage.
* :class:`BinaryCodec` -- a compact from-scratch tag-length-value format
  (varint lengths, type tags) used by the codec ablation benchmark.
* :class:`CompactCodec` -- :class:`BinaryCodec` plus a per-payload string
  interning table: every string (value or dict key) appearing more than
  once is stored once and referenced by index afterwards.  Block payloads
  are full of repeated structure (``"tx_id"``, ``"writes"``, chaincode
  names, per-transaction dict keys), so interning shrinks them without
  any cross-payload state.

Both codecs round-trip the JSON-ish value universe: ``None``, ``bool``,
``int``, ``float``, ``str``, ``bytes``, ``list`` and ``dict`` with string
keys.  ``bytes`` survive a JSON round trip via a tagged base64 wrapper.
"""

from __future__ import annotations

import base64
import json
import struct
from abc import ABC, abstractmethod
from typing import Any

from repro.common.errors import CodecError

_BYTES_TAG = "__repro_bytes__"


class Codec(ABC):
    """Serialize Python values to bytes and back."""

    #: Short identifier used in file headers and configs.
    name: str = "abstract"

    @abstractmethod
    def encode(self, value: Any) -> bytes:
        """Serialize ``value``; raises :class:`CodecError` on failure."""

    @abstractmethod
    def decode(self, payload: bytes) -> Any:
        """Deserialize ``payload``; raises :class:`CodecError` on failure."""


class JsonCodec(Codec):
    """UTF-8 JSON with a tagged wrapper so ``bytes`` round-trip."""

    name = "json"

    def encode(self, value: Any) -> bytes:
        try:
            return json.dumps(
                value, default=self._encode_special, separators=(",", ":")
            ).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise CodecError(f"JSON encode failed: {exc}") from exc

    def decode(self, payload: bytes) -> Any:
        try:
            return json.loads(payload.decode("utf-8"), object_hook=self._decode_special)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CodecError(f"JSON decode failed: {exc}") from exc

    @staticmethod
    def _encode_special(value: Any) -> Any:
        if isinstance(value, bytes):
            return {_BYTES_TAG: base64.b64encode(value).decode("ascii")}
        raise TypeError(f"not JSON serializable: {type(value).__name__}")

    @staticmethod
    def _decode_special(obj: dict) -> Any:
        if len(obj) == 1 and _BYTES_TAG in obj:
            return base64.b64decode(obj[_BYTES_TAG])
        return obj


# --- Binary codec ----------------------------------------------------------
#
# Layout: one type-tag byte, then a type-specific body.  Variable-length
# payloads are prefixed with an unsigned LEB128 varint length.  Containers
# are a varint count followed by the encoded items.

_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT_POS = 0x03
_T_INT_NEG = 0x04
_T_FLOAT = 0x05
_T_STR = 0x06
_T_BYTES = 0x07
_T_LIST = 0x08
_T_DICT = 0x09


def write_uvarint(value: int, out: bytearray) -> None:
    """Append an unsigned LEB128 varint to ``out``."""
    if value < 0:
        raise CodecError(f"uvarint must be non-negative, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(payload: bytes, offset: int) -> tuple[int, int]:
    """Read a varint from ``payload`` at ``offset``; return (value, next_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(payload):
            raise CodecError("truncated varint")
        byte = payload[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63 * 2:
            raise CodecError("varint too long")


class BinaryCodec(Codec):
    """Compact tag-length-value binary encoding (no stdlib pickle)."""

    name = "binary"

    def encode(self, value: Any) -> bytes:
        out = bytearray()
        self._encode_into(value, out)
        return bytes(out)

    def decode(self, payload: bytes) -> Any:
        value, offset = self._decode_from(payload, 0)
        if offset != len(payload):
            raise CodecError(f"trailing bytes after value: {len(payload) - offset}")
        return value

    def _encode_into(self, value: Any, out: bytearray) -> None:
        if value is None:
            out.append(_T_NONE)
        elif value is True:
            out.append(_T_TRUE)
        elif value is False:
            out.append(_T_FALSE)
        elif isinstance(value, int):
            if value >= 0:
                out.append(_T_INT_POS)
                write_uvarint(value, out)
            else:
                out.append(_T_INT_NEG)
                write_uvarint(-value, out)
        elif isinstance(value, float):
            out.append(_T_FLOAT)
            out.extend(struct.pack(">d", value))
        elif isinstance(value, str):
            raw = value.encode("utf-8")
            out.append(_T_STR)
            write_uvarint(len(raw), out)
            out.extend(raw)
        elif isinstance(value, (bytes, bytearray)):
            out.append(_T_BYTES)
            write_uvarint(len(value), out)
            out.extend(value)
        elif isinstance(value, (list, tuple)):
            out.append(_T_LIST)
            write_uvarint(len(value), out)
            for item in value:
                self._encode_into(item, out)
        elif isinstance(value, dict):
            out.append(_T_DICT)
            write_uvarint(len(value), out)
            for key, item in value.items():
                if not isinstance(key, str):
                    raise CodecError(
                        f"dict keys must be str, got {type(key).__name__}"
                    )
                raw = key.encode("utf-8")
                write_uvarint(len(raw), out)
                out.extend(raw)
                self._encode_into(item, out)
        else:
            raise CodecError(f"unsupported type: {type(value).__name__}")

    def _decode_from(self, payload: bytes, offset: int) -> tuple[Any, int]:
        if offset >= len(payload):
            raise CodecError("truncated payload")
        tag = payload[offset]
        offset += 1
        if tag == _T_NONE:
            return None, offset
        if tag == _T_TRUE:
            return True, offset
        if tag == _T_FALSE:
            return False, offset
        if tag == _T_INT_POS:
            return read_uvarint(payload, offset)
        if tag == _T_INT_NEG:
            value, offset = read_uvarint(payload, offset)
            return -value, offset
        if tag == _T_FLOAT:
            if offset + 8 > len(payload):
                raise CodecError("truncated float")
            (value,) = struct.unpack_from(">d", payload, offset)
            return value, offset + 8
        if tag == _T_STR:
            length, offset = read_uvarint(payload, offset)
            end = offset + length
            if end > len(payload):
                raise CodecError("truncated string")
            return payload[offset:end].decode("utf-8"), end
        if tag == _T_BYTES:
            length, offset = read_uvarint(payload, offset)
            end = offset + length
            if end > len(payload):
                raise CodecError("truncated bytes")
            return payload[offset:end], end
        if tag == _T_LIST:
            count, offset = read_uvarint(payload, offset)
            items = []
            for _ in range(count):
                item, offset = self._decode_from(payload, offset)
                items.append(item)
            return items, offset
        if tag == _T_DICT:
            count, offset = read_uvarint(payload, offset)
            result: dict[str, Any] = {}
            for _ in range(count):
                key_len, offset = read_uvarint(payload, offset)
                end = offset + key_len
                if end > len(payload):
                    raise CodecError("truncated dict key")
                key = payload[offset:end].decode("utf-8")
                item, end = self._decode_from(payload, end)
                result[key] = item
                offset = end
            return result, offset
        raise CodecError(f"unknown type tag: {tag:#04x}")


# --- Compact codec ---------------------------------------------------------
#
# Layout: varint table count, then each interned string (varint length +
# UTF-8 bytes), then the value in BinaryCodec's tag scheme extended with
# one tag: _T_STR_REF, a varint index into the table.  Dict keys are
# encoded as tagged string values (inline or ref) instead of bare
# length-prefixed bytes, so keys intern too.

_T_STR_REF = 0x0A


class CompactCodec(Codec):
    """Binary TLV with per-payload string interning (the lean block codec).

    Strings appearing at least twice in the payload -- dict keys and
    string values alike -- land in a front table and every occurrence
    becomes a one-or-two-byte reference.  Each payload is self-contained:
    no dictionary is shared across blocks, so any block still decodes in
    isolation (crash recovery scans records independently).
    """

    name = "compact"

    def encode(self, value: Any) -> bytes:
        counts: dict[str, int] = {}
        self._count_strings(value, counts)
        # Insertion order = first-appearance order: deterministic, so
        # encode(x) is byte-stable for equal x.
        table = [text for text, count in counts.items() if count >= 2]
        index = {text: position for position, text in enumerate(table)}
        out = bytearray()
        write_uvarint(len(table), out)
        for text in table:
            raw = text.encode("utf-8")
            write_uvarint(len(raw), out)
            out.extend(raw)
        self._encode_into(value, out, index)
        return bytes(out)

    def decode(self, payload: bytes) -> Any:
        count, offset = read_uvarint(payload, 0)
        table: list[str] = []
        for _ in range(count):
            length, offset = read_uvarint(payload, offset)
            end = offset + length
            if end > len(payload):
                raise CodecError("truncated intern table entry")
            table.append(payload[offset:end].decode("utf-8"))
            offset = end
        value, offset = self._decode_from(payload, offset, table)
        if offset != len(payload):
            raise CodecError(f"trailing bytes after value: {len(payload) - offset}")
        return value

    def _count_strings(self, value: Any, counts: dict[str, int]) -> None:
        if isinstance(value, str):
            counts[value] = counts.get(value, 0) + 1
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._count_strings(item, counts)
        elif isinstance(value, dict):
            for key, item in value.items():
                if isinstance(key, str):
                    counts[key] = counts.get(key, 0) + 1
                self._count_strings(item, counts)

    def _encode_str(self, text: str, out: bytearray, index: dict[str, int]) -> None:
        position = index.get(text)
        if position is not None:
            out.append(_T_STR_REF)
            write_uvarint(position, out)
        else:
            raw = text.encode("utf-8")
            out.append(_T_STR)
            write_uvarint(len(raw), out)
            out.extend(raw)

    def _encode_into(self, value: Any, out: bytearray, index: dict[str, int]) -> None:
        if value is None:
            out.append(_T_NONE)
        elif value is True:
            out.append(_T_TRUE)
        elif value is False:
            out.append(_T_FALSE)
        elif isinstance(value, int):
            if value >= 0:
                out.append(_T_INT_POS)
                write_uvarint(value, out)
            else:
                out.append(_T_INT_NEG)
                write_uvarint(-value, out)
        elif isinstance(value, float):
            out.append(_T_FLOAT)
            out.extend(struct.pack(">d", value))
        elif isinstance(value, str):
            self._encode_str(value, out, index)
        elif isinstance(value, (bytes, bytearray)):
            out.append(_T_BYTES)
            write_uvarint(len(value), out)
            out.extend(value)
        elif isinstance(value, (list, tuple)):
            out.append(_T_LIST)
            write_uvarint(len(value), out)
            for item in value:
                self._encode_into(item, out, index)
        elif isinstance(value, dict):
            out.append(_T_DICT)
            write_uvarint(len(value), out)
            for key, item in value.items():
                if not isinstance(key, str):
                    raise CodecError(
                        f"dict keys must be str, got {type(key).__name__}"
                    )
                self._encode_str(key, out, index)
                self._encode_into(item, out, index)
        else:
            raise CodecError(f"unsupported type: {type(value).__name__}")

    def _decode_str(
        self, payload: bytes, offset: int, table: list[str]
    ) -> tuple[str, int]:
        if offset >= len(payload):
            raise CodecError("truncated payload")
        tag = payload[offset]
        offset += 1
        if tag == _T_STR_REF:
            position, offset = read_uvarint(payload, offset)
            if position >= len(table):
                raise CodecError(f"intern reference {position} out of range")
            return table[position], offset
        if tag == _T_STR:
            length, offset = read_uvarint(payload, offset)
            end = offset + length
            if end > len(payload):
                raise CodecError("truncated string")
            return payload[offset:end].decode("utf-8"), end
        raise CodecError(f"expected a string tag, got {tag:#04x}")

    def _decode_from(
        self, payload: bytes, offset: int, table: list[str]
    ) -> tuple[Any, int]:
        if offset >= len(payload):
            raise CodecError("truncated payload")
        tag = payload[offset]
        if tag in (_T_STR, _T_STR_REF):
            return self._decode_str(payload, offset, table)
        offset += 1
        if tag == _T_NONE:
            return None, offset
        if tag == _T_TRUE:
            return True, offset
        if tag == _T_FALSE:
            return False, offset
        if tag == _T_INT_POS:
            return read_uvarint(payload, offset)
        if tag == _T_INT_NEG:
            value, offset = read_uvarint(payload, offset)
            return -value, offset
        if tag == _T_FLOAT:
            if offset + 8 > len(payload):
                raise CodecError("truncated float")
            (value,) = struct.unpack_from(">d", payload, offset)
            return value, offset + 8
        if tag == _T_BYTES:
            length, offset = read_uvarint(payload, offset)
            end = offset + length
            if end > len(payload):
                raise CodecError("truncated bytes")
            return payload[offset:end], end
        if tag == _T_LIST:
            count, offset = read_uvarint(payload, offset)
            items = []
            for _ in range(count):
                item, offset = self._decode_from(payload, offset, table)
                items.append(item)
            return items, offset
        if tag == _T_DICT:
            count, offset = read_uvarint(payload, offset)
            result: dict[str, Any] = {}
            for _ in range(count):
                key, offset = self._decode_str(payload, offset, table)
                item, offset = self._decode_from(payload, offset, table)
                result[key] = item
            return result, offset
        raise CodecError(f"unknown type tag: {tag:#04x}")


_CODECS = {
    codec.name: codec for codec in (JsonCodec(), BinaryCodec(), CompactCodec())
}


def get_codec(name: str) -> Codec:
    """Look up a codec by its :attr:`Codec.name` (``json``, ``binary`` or
    ``compact``)."""
    try:
        return _CODECS[name]
    except KeyError:
        raise CodecError(
            f"unknown codec {name!r}; available: {sorted(_CODECS)}"
        ) from None
