"""Analytics over temporal query results: the paper's motivating
"valuable business insights" (Section I -- lineage, visualization,
reporting, compliance).

All functions are pure post-processing over events or join rows, so they
compose with any of the three retrieval models.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

from repro.common.errors import TemporalQueryError
from repro.temporal.events import Event
from repro.temporal.intervals import TimeInterval
from repro.temporal.join import JoinRow


def event_count_histogram(
    events: Iterable[Event], window: TimeInterval, bucket: int
) -> List[Tuple[TimeInterval, int]]:
    """Events per fixed-length bucket across ``window``.

    Buckets tile the window ``(start, start+bucket], ...`` with the final
    bucket clipped to the window's end.
    """
    if bucket <= 0:
        raise TemporalQueryError(f"bucket length must be positive, got {bucket}")
    bounds: List[TimeInterval] = []
    start = window.start
    while start < window.end:
        bounds.append(TimeInterval(start, min(start + bucket, window.end)))
        start += bucket
    counts = [0] * len(bounds)
    for event in events:
        if not window.contains(event.time):
            continue
        index = (event.time - window.start - 1) // bucket
        counts[index] += 1
    return list(zip(bounds, counts))


def merge_intervals(intervals: Iterable[TimeInterval]) -> List[TimeInterval]:
    """Union of ``(start, end]`` intervals as disjoint sorted intervals.

    Touching intervals (``a.end == b.start``) merge: their union has no
    gap under half-open-left semantics.
    """
    ordered = sorted(intervals, key=lambda interval: (interval.start, interval.end))
    merged: List[TimeInterval] = []
    for interval in ordered:
        if merged and interval.start <= merged[-1].end:
            if interval.end > merged[-1].end:
                merged[-1] = TimeInterval(merged[-1].start, interval.end)
        else:
            merged.append(interval)
    return merged


def busy_time_by_truck(rows: Iterable[JoinRow]) -> Dict[str, int]:
    """Per truck: total time carrying at least one shipment.

    Overlapping rows (two shipments on the same truck at once) count the
    shared time once -- this is utilization, not shipment-hours.
    """
    by_truck: Dict[str, List[TimeInterval]] = defaultdict(list)
    for row in rows:
        by_truck[row.truck].append(row.interval)
    return {
        truck: sum(interval.length for interval in merge_intervals(intervals))
        for truck, intervals in by_truck.items()
    }


def shipment_hours_by_truck(rows: Iterable[JoinRow]) -> Dict[str, int]:
    """Per truck: sum of shipment-carrying time (overlaps counted per
    shipment -- the freight-billing view)."""
    totals: Dict[str, int] = defaultdict(int)
    for row in rows:
        totals[row.truck] += row.interval.length
    return dict(totals)


def peak_concurrency_by_container(rows: Iterable[JoinRow]) -> Dict[str, int]:
    """Per container: the maximum number of shipments aboard at once.

    Sweep line over ``(start, end]`` intervals; a shipment leaving at ``t``
    frees its slot before another boarding at ``t`` occupies one (ends
    sort before starts at equal time).
    """
    boundaries: Dict[str, List[Tuple[int, int, int]]] = defaultdict(list)
    for row in rows:
        # (time, order, delta): order 0 = departure, 1 = arrival.
        boundaries[row.container].append((row.interval.start, 1, 1))
        boundaries[row.container].append((row.interval.end, 0, -1))
    peaks: Dict[str, int] = {}
    for container, events in boundaries.items():
        current = peak = 0
        for _, _, delta in sorted(events):
            current += delta
            peak = max(peak, current)
        peaks[container] = peak
    return peaks


def dwell_time_by_shipment(rows: Iterable[JoinRow]) -> Dict[str, int]:
    """Per shipment: total time spent on any truck (union of its rows)."""
    by_shipment: Dict[str, List[TimeInterval]] = defaultdict(list)
    for row in rows:
        by_shipment[row.shipment].append(row.interval)
    return {
        shipment: sum(interval.length for interval in merge_intervals(intervals))
        for shipment, intervals in by_shipment.items()
    }
