"""Query executors: how a join query's per-key fetches are scheduled.

The unified facade (:class:`~repro.temporal.engine.TemporalQueryEngine`)
retrieves events for every shipment and container key.  Those fetches
are independent of each other -- each one is a GHFK scan (TQF), a bundle
read (M1) or a per-interval scan (M2) that shares no mutable state with
its siblings -- so they can run concurrently.  A :class:`QueryExecutor`
decides *how*: :class:`SerialExecutor` preserves the paper's one-at-a-
time measurement setup, :class:`ThreadPoolQueryExecutor` fans the
fetches out across worker threads.

Two invariants make the choice invisible to everything downstream:

* **Deterministic ordering.**  ``map`` always returns results in input
  order, regardless of worker completion order, so join rows and
  per-key event dicts are byte-identical between executors (the
  CONC001 concern: completion-order results would make query output
  depend on thread scheduling).
* **Exception transparency.**  The first failing item's exception
  propagates to the caller exactly as it would serially (e.g. Model
  M1's :class:`~repro.common.errors.TemporalQueryError` for an
  unindexed window).

Both executors accept an optional
:class:`~repro.common.resilience.Deadline`.  The serial executor checks
it between items; the thread pool additionally *cancels* not-yet-started
futures and bounds its waits by the remaining budget, so an expired
query stops consuming workers instead of draining every queued fetch.
Items already running when the budget dies check the deadline themselves
before starting and are awaited during pool teardown -- no worker is
ever abandoned mid-fetch (metrics deltas stay whole).

Worker threads bump the same :class:`~repro.common.metrics.MetricsRegistry`
and read through the same :class:`~repro.fabric.blockstore.BlockStore`;
both are lock-guarded, so counter deltas around a parallel region stay
exact.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.common import locks as conc
from repro.common.errors import ConfigError, DeadlineExceededError
from repro.common.resilience import Deadline

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


class QueryExecutor(ABC):
    """Schedules a query's independent per-key work items."""

    #: Human-readable identifier (appears in benchmark reports).
    name: str = "abstract"

    @abstractmethod
    def map(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Iterable[ItemT],
        deadline: Optional[Deadline] = None,
    ) -> List[ResultT]:
        """Apply ``fn`` to every item, returning results in input order.

        With a ``deadline``, abandon remaining work and raise
        :class:`~repro.common.errors.DeadlineExceededError` once the
        budget runs out.
        """

    @property
    def workers(self) -> int:
        """Degree of parallelism (1 for the serial executor)."""
        return 1


class SerialExecutor(QueryExecutor):
    """The paper's setup: one fetch at a time, on the calling thread."""

    name = "serial"

    def map(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Iterable[ItemT],
        deadline: Optional[Deadline] = None,
    ) -> List[ResultT]:
        results: List[ResultT] = []
        for item in items:
            if deadline is not None:
                deadline.check("per-key fetch")
            results.append(fn(item))
        return results


class ThreadPoolQueryExecutor(QueryExecutor):
    """Fans work items out across a bounded thread pool.

    The pool is created per ``map`` call and torn down before returning,
    so the executor itself carries no cross-query mutable state and a
    facade holding one never needs an explicit ``close()``.  Results are
    collected by submission index -- never completion order -- and the
    first exception re-raises after cancelling everything not yet
    started and draining what is (workers already running are not
    abandoned mid-fetch, keeping metrics deltas whole).
    """

    name = "thread-pool"

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ConfigError(
                f"ThreadPoolQueryExecutor needs >= 2 workers, got {workers}; "
                "use SerialExecutor (workers=1) instead"
            )
        self._workers = workers

    @property
    def workers(self) -> int:
        return self._workers

    def map(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Iterable[ItemT],
        deadline: Optional[Deadline] = None,
    ) -> List[ResultT]:
        work: Sequence[ItemT] = list(items)
        if len(work) <= 1:
            results: List[ResultT] = []
            for item in work:
                if deadline is not None:
                    deadline.check("per-key fetch")
                results.append(fn(item))
            return results

        def guarded(item: ItemT) -> ResultT:
            # Worker-side cancellation: an item whose turn comes after
            # the budget died refuses to start (already-running items
            # finish; their results are simply never read).
            if deadline is not None:
                deadline.check("per-key fetch")
            return fn(item)

        with ThreadPoolExecutor(
            max_workers=min(self._workers, len(work)),
            thread_name_prefix="repro-query",
        ) as pool:
            # Each submission crosses the concurrency seam: under the
            # race sanitizer, wrap_task snapshots the submitter's vector
            # clock (fork edge) and join_task merges the worker's clock
            # back after its result is read (join edge).  The default
            # factory makes both free.
            tasks: List[Callable[..., Any]] = [
                conc.wrap_task(guarded) for _ in work
            ]
            futures: List[Future[ResultT]] = [
                pool.submit(task, item) for task, item in zip(tasks, work)
            ]
            # The pool's __exit__ waits for every non-cancelled future,
            # so even when an early future raises below, no worker is
            # still mutating shared state by the time the caller sees
            # the exception.
            try:
                collected: List[ResultT] = []
                for index, future in enumerate(futures):
                    if deadline is None:
                        collected.append(future.result())
                    else:
                        try:
                            collected.append(
                                future.result(timeout=deadline.remaining())
                            )
                        except FutureTimeoutError:
                            raise DeadlineExceededError(
                                f"query fan-out abandoned: deadline of "
                                f"{deadline.budget:g}s exceeded with "
                                f"{len(collected)}/{len(futures)} fetches done"
                            ) from None
                    conc.join_task(tasks[index])
                return collected
            except BaseException:
                # Propagate cancellation: anything not yet started stays
                # unstarted, so a dead query stops consuming the pool.
                for future in futures:
                    future.cancel()
                raise


def build_executor(workers: int) -> QueryExecutor:
    """The executor for a configured worker count (1 = serial)."""
    if workers < 1:
        raise ConfigError(f"query workers must be >= 1, got {workers}")
    if workers == 1:
        return SerialExecutor()
    return ThreadPoolQueryExecutor(workers)
