"""Query executors: how a join query's per-key fetches are scheduled.

The unified facade (:class:`~repro.temporal.engine.TemporalQueryEngine`)
retrieves events for every shipment and container key.  Those fetches
are independent of each other -- each one is a GHFK scan (TQF), a bundle
read (M1) or a per-interval scan (M2) that shares no mutable state with
its siblings -- so they can run concurrently.  A :class:`QueryExecutor`
decides *how*: :class:`SerialExecutor` preserves the paper's one-at-a-
time measurement setup, :class:`ThreadPoolQueryExecutor` fans the
fetches out across worker threads.

Two invariants make the choice invisible to everything downstream:

* **Deterministic ordering.**  ``map`` always returns results in input
  order, regardless of worker completion order, so join rows and
  per-key event dicts are byte-identical between executors (the
  CONC001 concern: completion-order results would make query output
  depend on thread scheduling).
* **Exception transparency.**  The first failing item's exception
  propagates to the caller exactly as it would serially (e.g. Model
  M1's :class:`~repro.common.errors.TemporalQueryError` for an
  unindexed window).

Worker threads bump the same :class:`~repro.common.metrics.MetricsRegistry`
and read through the same :class:`~repro.fabric.blockstore.BlockStore`;
both are lock-guarded, so counter deltas around a parallel region stay
exact.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Sequence, TypeVar

from repro.common.errors import ConfigError

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


class QueryExecutor(ABC):
    """Schedules a query's independent per-key work items."""

    #: Human-readable identifier (appears in benchmark reports).
    name: str = "abstract"

    @abstractmethod
    def map(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Iterable[ItemT],
    ) -> List[ResultT]:
        """Apply ``fn`` to every item, returning results in input order."""

    @property
    def workers(self) -> int:
        """Degree of parallelism (1 for the serial executor)."""
        return 1


class SerialExecutor(QueryExecutor):
    """The paper's setup: one fetch at a time, on the calling thread."""

    name = "serial"

    def map(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Iterable[ItemT],
    ) -> List[ResultT]:
        return [fn(item) for item in items]


class ThreadPoolQueryExecutor(QueryExecutor):
    """Fans work items out across a bounded thread pool.

    The pool is created per ``map`` call and torn down before returning,
    so the executor itself carries no cross-query mutable state and a
    facade holding one never needs an explicit ``close()``.  Results are
    collected by submission index -- never completion order -- and the
    first exception re-raises after the pool drains (workers already
    running are not abandoned mid-fetch, keeping metrics deltas whole).
    """

    name = "thread-pool"

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ConfigError(
                f"ThreadPoolQueryExecutor needs >= 2 workers, got {workers}; "
                "use SerialExecutor (workers=1) instead"
            )
        self._workers = workers

    @property
    def workers(self) -> int:
        return self._workers

    def map(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Iterable[ItemT],
    ) -> List[ResultT]:
        work: Sequence[ItemT] = list(items)
        if len(work) <= 1:
            return [fn(item) for item in work]
        with ThreadPoolExecutor(
            max_workers=min(self._workers, len(work)),
            thread_name_prefix="repro-query",
        ) as pool:
            futures = [pool.submit(fn, item) for item in work]
            # The pool's __exit__ waits for every future, so even when an
            # early future raises below, no worker is still mutating
            # shared state by the time the caller sees the exception.
            return [future.result() for future in futures]


def build_executor(workers: int) -> QueryExecutor:
    """The executor for a configured worker count (1 = serial)."""
    if workers < 1:
        raise ConfigError(f"query workers must be >= 1, got {workers}")
    if workers == 1:
        return SerialExecutor()
    return ThreadPoolQueryExecutor(workers)
