"""Composite key encoding for interval-tagged ledger keys.

Both models form "new keys" ``(k, θ)`` from a base key and an index
interval.  We encode them as::

    <base-key> \\x00 <start:012d> \\x00 <end:012d>

The ``\\x00`` separator sorts below every printable character, and the
zero-padded bounds sort numerically, so a ``GetStateByRange`` over
``[k\\x00, k\\x01)`` enumerates exactly key ``k``'s index intervals in
temporal order -- the operation Model M2's query planner relies on
(Section VII-1).

Base keys must not contain ``\\x00``/``\\x01`` themselves; the supply-chain
workload's entity ids never do.
"""

from __future__ import annotations

from typing import Tuple

from repro.common.errors import TemporalQueryError
from repro.temporal.intervals import TimeInterval

SEPARATOR = "\x00"
_RANGE_END = "\x01"
_WIDTH = 12


def validate_base_key(key: str) -> str:
    """Reject keys that would break composite encoding."""
    if not key:
        raise TemporalQueryError("base key must be non-empty")
    if SEPARATOR in key or _RANGE_END in key:
        raise TemporalQueryError(
            f"base key {key!r} contains a reserved separator byte"
        )
    return key


def encode_interval_key(base_key: str, interval: TimeInterval) -> str:
    """The composite state key for ``(base_key, interval)``."""
    validate_base_key(base_key)
    return (
        f"{base_key}{SEPARATOR}{interval.start:0{_WIDTH}d}"
        f"{SEPARATOR}{interval.end:0{_WIDTH}d}"
    )


def decode_interval_key(composite: str) -> Tuple[str, TimeInterval]:
    """Invert :func:`encode_interval_key`."""
    parts = composite.split(SEPARATOR)
    if len(parts) != 3:
        raise TemporalQueryError(f"not a composite interval key: {composite!r}")
    base_key, start_raw, end_raw = parts
    try:
        interval = TimeInterval(int(start_raw), int(end_raw))
    except ValueError:
        raise TemporalQueryError(
            f"malformed interval bounds in key: {composite!r}"
        ) from None
    return base_key, interval


def is_interval_key(key: str) -> bool:
    """True when ``key`` is a composite ``(k, θ)`` key."""
    return SEPARATOR in key


def interval_key_range(base_key: str) -> Tuple[str, str]:
    """``(start, end)`` bounds scanning all interval keys of ``base_key``."""
    validate_base_key(base_key)
    return base_key + SEPARATOR, base_key + _RANGE_END
