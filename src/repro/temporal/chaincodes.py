"""Chaincodes used by the temporal-query experiments.

* :class:`SupplyChainChaincode` -- plain ingestion for TQF and Model M1:
  each event is stored under its entity key, so state-db holds one
  current state per shipment/container.
* :class:`M2SupplyChainChaincode` -- Model M2 ingestion (Section VII):
  every incoming pair ``⟨k, (v, t)⟩`` is rewritten to ``⟨(k, θ), (v, t)⟩``
  where ``θ`` is the fixed-length index interval containing ``t``; the
  original pair is discarded.
* :class:`M1IndexChaincode` -- the two transactions of the M1 indexing
  process (Section VI-1): one writes the bundle ``⟨(k, θ), EV(k, θ)⟩``,
  the next deletes it from state-db so only history-db retains it.
"""

from __future__ import annotations

from typing import Any, List

from repro.common.errors import ChaincodeError
from repro.fabric.chaincode import Chaincode, ChaincodeStub
from repro.temporal.events import LOAD, UNLOAD, Event
from repro.temporal.intervals import FixedIntervalScheme
from repro.temporal.keys import encode_interval_key, validate_base_key


def validate_transition(current: Any, event: Event) -> None:
    """Business rule for *checked* recording (read-write workloads).

    A load is valid only when the entity is currently unloaded (no state
    yet, or the latest event is an unload); an unload must match the
    latest load's counterpart.  Enforcing this requires reading the
    current state inside the transaction -- the read-write workload the
    paper's conclusion earmarks for future benchmarking.
    """
    if event.kind == LOAD:
        if current is not None and current.get("e") == LOAD:
            raise ChaincodeError(
                f"{event.key!r} is already loaded into {current.get('o')!r}; "
                f"cannot load into {event.other!r}"
            )
    else:  # UNLOAD
        if current is None or current.get("e") != LOAD:
            raise ChaincodeError(
                f"{event.key!r} is not currently loaded; cannot unload"
            )
        if current.get("o") != event.other:
            raise ChaincodeError(
                f"{event.key!r} is loaded into {current.get('o')!r}, "
                f"not {event.other!r}"
            )


class SupplyChainChaincode(Chaincode):
    """Business chaincode: record load/unload events under entity keys."""

    name = "supplychain"

    def invoke(self, stub: ChaincodeStub, fn: str, args: List[Any]) -> Any:
        if fn == "record_event":
            key, other, time, kind = args
            event = Event(time=time, key=validate_base_key(key), other=other, kind=kind)
            stub.put_state(event.key, event.to_value())
            return {"key": event.key, "t": event.time}
        if fn == "record_events":
            # ME ingestion: one transaction, many events, all distinct keys
            # (a repeated key would silently lose a state -- Section II).
            seen: set[str] = set()
            for key, other, time, kind in args:
                if key in seen:
                    raise ChaincodeError(
                        f"record_events batch repeats key {key!r}; Fabric would "
                        "persist only one state for it"
                    )
                seen.add(key)
                event = Event(
                    time=time, key=validate_base_key(key), other=other, kind=kind
                )
                stub.put_state(event.key, event.to_value())
            return {"count": len(args)}
        if fn == "record_event_checked":
            # Read-write variant: read the entity's current state, enforce
            # load/unload alternation, then write.  The read enters the
            # RWSet, exposing the transaction to MVCC invalidation.
            key, other, time, kind = args
            event = Event(time=time, key=validate_base_key(key), other=other, kind=kind)
            current = stub.get_state(event.key)
            validate_transition(current, event)
            stub.put_state(event.key, event.to_value())
            return {"key": event.key, "t": event.time}
        if fn == "get_current":
            (key,) = args
            return stub.get_state(key)
        raise ChaincodeError(f"unknown function {fn!r} on {self.name!r}")


class M2SupplyChainChaincode(Chaincode):
    """Model M2 ingestion: interval-tag every key at write time.

    The transformation is invisible to the submitting client; the cost is
    that applications must use the Model M2 base-access API
    (:class:`repro.temporal.m2.BaseAccessAPI`) to read "original" states.
    """

    name = "supplychain-m2"

    def __init__(self, u: int) -> None:
        self.scheme = FixedIntervalScheme(u)

    @property
    def u(self) -> int:
        return self.scheme.u

    def _transformed_key(self, key: str, time: int) -> str:
        interval = self.scheme.interval_for(time)
        return encode_interval_key(validate_base_key(key), interval)

    def invoke(self, stub: ChaincodeStub, fn: str, args: List[Any]) -> Any:
        if fn == "record_event":
            key, other, time, kind = args
            event = Event(time=time, key=key, other=other, kind=kind)
            stub.put_state(self._transformed_key(key, time), event.to_value())
            return {"key": key, "t": time}
        if fn == "record_events":
            seen: set[str] = set()
            for key, other, time, kind in args:
                if key in seen:
                    raise ChaincodeError(
                        f"record_events batch repeats key {key!r}"
                    )
                seen.add(key)
                event = Event(time=time, key=key, other=other, kind=kind)
                stub.put_state(self._transformed_key(key, time), event.to_value())
            return {"count": len(args)}
        if fn == "record_event_checked":
            # Read-write variant under M2: the entity's current state lives
            # under some (k, θ) key, so the chaincode must run the
            # GetState-Base probing loop (Section VII-B1) *inside the
            # transaction*.  Every probe -- hit or miss -- enters the
            # RWSet.
            key, other, time, kind = args
            event = Event(time=time, key=validate_base_key(key), other=other, kind=kind)
            current, _probes = self._get_state_base(stub, key, now=time)
            validate_transition(current, event)
            stub.put_state(self._transformed_key(key, time), event.to_value())
            return {"key": key, "t": time}
        if fn == "get_current_base":
            key, now = args
            value, probes = self._get_state_base(stub, key, now=now)
            return {"value": value, "probes": probes}
        raise ChaincodeError(f"unknown function {fn!r} on {self.name!r}")

    def _get_state_base(
        self, stub: ChaincodeStub, key: str, now: int
    ) -> tuple[Any, int]:
        """GetState-Base probing against the stub (reads are recorded)."""
        interval = self.scheme.interval_for(now)
        probes = 0
        while interval is not None:
            probes += 1
            value = stub.get_state(encode_interval_key(key, interval))
            if value is not None:
                return value, probes
            interval = self.scheme.previous_interval(interval)
        return None, probes


class M1IndexChaincode(Chaincode):
    """The Model M1 indexing process's on-chain operations."""

    name = "m1-index"

    #: State key holding the list of indexing-run descriptors, so query
    #: engines can reconstruct Θ(k) deterministically.
    META_KEY = "\x02m1-runs"

    def invoke(self, stub: ChaincodeStub, fn: str, args: List[Any]) -> Any:
        if fn == "write_index":
            # First transaction: ingest ⟨(k, θ), EV(k, θ)⟩.
            index_key, event_values = args
            if not event_values:
                raise ChaincodeError("refusing to index an empty event set")
            stub.put_state(index_key, event_values)
            return {"key": index_key, "events": len(event_values)}
        if fn == "clear_index":
            # Second transaction: remove the bundle from state-db; the
            # bundle stays reachable through history-db only.
            (index_key,) = args
            stub.del_state(index_key)
            return {"key": index_key}
        if fn == "record_run":
            # Append one indexing-run descriptor {t1, t2, u, scheme} to the
            # meta key.
            (run,) = args
            runs = stub.get_state(self.META_KEY) or []
            runs.append(run)
            stub.put_state(self.META_KEY, runs)
            return {"runs": len(runs)}
        if fn == "extend_directory":
            # Append a key's newly created index intervals to its interval
            # directory (used by non-deterministic planners, whose Θ(k)
            # cannot be recomputed from run metadata alone).
            directory_key, intervals = args
            if not intervals:
                raise ChaincodeError("refusing to record an empty directory entry")
            existing = stub.get_state(directory_key) or []
            existing.extend(intervals)
            stub.put_state(directory_key, existing)
            return {"key": directory_key, "intervals": len(existing)}
        raise ChaincodeError(f"unknown function {fn!r} on {self.name!r}")
