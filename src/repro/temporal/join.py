"""The temporal join query Q (Section IV-1).

Given a window ``τ = (t_s, t_e]``, find for each shipment the trucks that
ferried it during ``τ`` and the associated time intervals.  Two event
streams feed the join:

* shipment events: ``⟨s, (c, t, l/ul)⟩`` -- shipment ``s`` entered/left
  container ``c``;
* container events: ``⟨c, (tr, t, l/ul)⟩`` -- container ``c`` was loaded
  onto / unloaded from truck ``tr``.

Consecutive load/unload events of a key pair into *placement intervals*
(shipment-inside-container, container-on-truck).  A shipment rode truck
``tr`` whenever its container placement overlaps the container's truck
placement; the answer interval is the intersection.  Events clipped by
the window produce open-ended placements clamped to the window bounds.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.temporal.events import Event
from repro.temporal.intervals import TimeInterval


@dataclass(frozen=True, order=True)
class Placement:
    """Key ``key`` was inside/on ``other`` during ``interval``."""

    key: str
    other: str
    interval: TimeInterval


@dataclass(frozen=True, order=True)
class JoinRow:
    """One result row: shipment ``shipment`` rode ``truck`` during
    ``interval``, inside ``container``."""

    shipment: str
    truck: str
    container: str
    interval: TimeInterval


def build_placements(
    events: Iterable[Event], window: TimeInterval
) -> List[Placement]:
    """Pair load/unload events into placement intervals, clipped to ``window``.

    Events must belong to a single key.  A load with no unload before the
    window ends stays open to ``window.end``; an unload whose load happened
    before the window started opens at ``window.start``.  Zero-length
    placements (load and unload at the same instant, or intervals clipped
    to nothing) are dropped.
    """
    placements: List[Placement] = []
    open_load: Event | None = None
    for event in sorted(events):
        if not window.contains(event.time):
            continue
        if event.is_load:
            # A dangling earlier load (malformed stream) is closed at this
            # load's time so the data stays interpretable.
            if open_load is not None and open_load.time < event.time:
                placements.append(
                    Placement(
                        key=open_load.key,
                        other=open_load.other,
                        interval=TimeInterval(open_load.time, event.time),
                    )
                )
            open_load = event
        else:
            if open_load is not None and open_load.other == event.other:
                if event.time > open_load.time:
                    placements.append(
                        Placement(
                            key=event.key,
                            other=event.other,
                            interval=TimeInterval(open_load.time, event.time),
                        )
                    )
                open_load = None
            elif event.time > window.start:
                # Unload of a load that predates the window: clip to start.
                placements.append(
                    Placement(
                        key=event.key,
                        other=event.other,
                        interval=TimeInterval(window.start, event.time),
                    )
                )
    if open_load is not None and open_load.time < window.end:
        placements.append(
            Placement(
                key=open_load.key,
                other=open_load.other,
                interval=TimeInterval(open_load.time, window.end),
            )
        )
    return placements


def temporal_join(
    shipment_events: Dict[str, List[Event]],
    container_events: Dict[str, List[Event]],
    window: TimeInterval,
) -> List[JoinRow]:
    """Compute query Q from per-key event lists.

    Args:
        shipment_events: shipment key -> its events inside the window.
        container_events: container key -> its events inside the window.
        window: the query interval ``τ``.

    Returns:
        Sorted join rows ``(shipment, truck, container, interval)``.
    """
    # Group shipment placements by the container they happened in.
    in_container: Dict[str, List[Placement]] = defaultdict(list)
    for key, events in shipment_events.items():
        for placement in build_placements(events, window):
            in_container[placement.other].append(placement)

    rows: List[JoinRow] = []
    for container, events in container_events.items():
        shipments_here = in_container.get(container)
        if not shipments_here:
            continue
        truck_placements = build_placements(events, window)
        if not truck_placements:
            continue
        # Sweep the two sorted-by-start placement lists per container.
        shipments_here.sort(key=lambda p: p.interval.start)
        truck_placements.sort(key=lambda p: p.interval.start)
        for shipment_placement in shipments_here:
            for truck_placement in truck_placements:
                if truck_placement.interval.start >= shipment_placement.interval.end:
                    break
                shared = shipment_placement.interval.intersection(
                    truck_placement.interval
                )
                if shared is not None:
                    rows.append(
                        JoinRow(
                            shipment=shipment_placement.key,
                            truck=truck_placement.other,
                            container=container,
                            interval=shared,
                        )
                    )
    rows.sort()
    return rows
