"""The paper's contribution: temporal query processing on the ledger.

Three interchangeable query engines answer the same temporal questions:

* :class:`~repro.temporal.tqf.TQFEngine` -- the naive baseline (Section V):
  full GHFK scans filtered client-side.
* :class:`~repro.temporal.m1.M1QueryEngine` -- Model M1 (Section VI):
  reads event bundles created by a periodic
  :class:`~repro.temporal.m1.M1Indexer`; one block per bundle.
* :class:`~repro.temporal.m2.M2QueryEngine` -- Model M2 (Section VII):
  events were ingested under interval-tagged keys, so GHFK touches only
  the blocks holding events inside the query window.

:func:`~repro.temporal.join.temporal_join` implements the paper's query Q
(shipments x containers x trucks), and
:class:`~repro.temporal.engine.TemporalQueryEngine` is the facade that
runs Q on any model and reports instrumentation.
"""

from repro.temporal.engine import JoinResult, QueryStats, TemporalQueryEngine
from repro.temporal.events import Event, LOAD, UNLOAD
from repro.temporal.explain import QueryExplainer
from repro.temporal.intervals import (
    FixedIntervalScheme,
    HierarchicalIntervalScheme,
    TimeInterval,
)
from repro.temporal.livequery import LiveJoinQuery
from repro.temporal.m1 import M1Indexer, M1QueryEngine
from repro.temporal.m2 import BaseAccessAPI, M2QueryEngine
from repro.temporal.planners import (
    EquiCountPlanner,
    FixedLengthPlanner,
    GeometricPlanner,
    HierarchicalPlanner,
)
from repro.temporal.pointintime import PointInTimeEngine
from repro.temporal.tqf import TQFEngine

__all__ = [
    "BaseAccessAPI",
    "EquiCountPlanner",
    "Event",
    "FixedIntervalScheme",
    "FixedLengthPlanner",
    "GeometricPlanner",
    "HierarchicalIntervalScheme",
    "HierarchicalPlanner",
    "JoinResult",
    "LiveJoinQuery",
    "LOAD",
    "M1Indexer",
    "M1QueryEngine",
    "M2QueryEngine",
    "PointInTimeEngine",
    "QueryExplainer",
    "QueryStats",
    "TemporalQueryEngine",
    "TimeInterval",
    "TQFEngine",
    "UNLOAD",
]
