"""The event schema of the supply-chain workload.

The paper's key-value pairs look like ``⟨s, (c, t, "l")⟩``: the *key* is
the entity the event is about (a shipment or a container) and the *value*
names the counterpart (the container a shipment enters, or the truck a
container is loaded onto), the logical time, and whether the event is a
load (``"l"``) or unload (``"ul"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.common.errors import TemporalQueryError
from repro.common.timeutils import Timestamp

LOAD = "l"
UNLOAD = "ul"


@dataclass(frozen=True, order=True)
class Event:
    """One load/unload event.  Orders by ``(time, key, kind)``."""

    time: Timestamp
    key: str
    other: str
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in (LOAD, UNLOAD):
            raise TemporalQueryError(
                f"event kind must be {LOAD!r} or {UNLOAD!r}, got {self.kind!r}"
            )
        if self.time <= 0:
            raise TemporalQueryError(
                f"event time must be positive (no (start, end] interval "
                f"contains {self.time})"
            )

    @property
    def is_load(self) -> bool:
        return self.kind == LOAD

    def to_value(self) -> Dict[str, Any]:
        """The ledger value ``(other, t, kind)`` of the pair ``⟨key, value⟩``."""
        return {"o": self.other, "t": self.time, "e": self.kind}

    @staticmethod
    def from_value(key: str, value: Dict[str, Any]) -> "Event":
        try:
            return Event(time=value["t"], key=key, other=value["o"], kind=value["e"])
        except (KeyError, TypeError) as exc:
            raise TemporalQueryError(
                f"malformed event value for key {key!r}: {value!r}"
            ) from exc


def events_to_values(events: List[Event]) -> List[Dict[str, Any]]:
    """Serialize an event bundle (Model M1 stores ``EV(k, θ)`` this way)."""
    return [event.to_value() for event in events]


def events_from_values(key: str, values: List[Dict[str, Any]]) -> List[Event]:
    """Invert :func:`events_to_values` for one key's bundle."""
    return [Event.from_value(key, value) for value in values]
