"""Point-in-time state: what was key ``k``'s value at timestamp ``t``?

A second temporal query shape beyond the paper's window retrieval: the
*as-of* query behind lineage and audit use-cases ("which container held
shipment S at noon?").  The answer is the latest event of ``k`` with
``time <= t``.  Each model supports it with its own access path:

* **TQF** -- GHFK from the start, remember the last event at or before
  ``t``, stop at the first event after it.  Cost ∝ blocks in ``(0, t]``.
* **M1** -- walk index intervals backwards from the one containing ``t``;
  the first non-empty bundle holds the answer.  One block per probed
  interval.
* **M2** -- range-scan the key's index intervals, pick the latest one
  starting before ``t``, GHFK it (and earlier ones if the event turns
  out to be after ``t`` within the interval).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import TemporalQueryError
from repro.common.metrics import NULL_REGISTRY, MetricsRegistry
from repro.fabric.ledger import Ledger
from repro.temporal.events import Event
from repro.temporal.intervals import TimeInterval
from repro.temporal.m1 import M1QueryEngine
from repro.temporal.m2 import M2QueryEngine
from repro.temporal.tqf import TQFEngine


class PointInTimeEngine:
    """As-of-``t`` state queries over any of the three models."""

    def __init__(self, ledger: Ledger, metrics: MetricsRegistry = NULL_REGISTRY) -> None:
        self._ledger = ledger
        self._metrics = metrics
        self._tqf = TQFEngine(ledger, metrics=metrics)
        self._m1 = M1QueryEngine(ledger, metrics=metrics)
        self._m2 = M2QueryEngine(ledger, metrics=metrics)

    def state_at(self, model: str, key: str, timestamp: int) -> Optional[Event]:
        """The latest event of ``key`` at or before ``timestamp``.

        Returns ``None`` when the key had no events yet.  Raises
        :class:`TemporalQueryError` for an unknown model or, for M1, an
        unindexed timestamp.
        """
        if timestamp <= 0:
            return None
        if model == "tqf":
            return self._tqf_state_at(key, timestamp)
        if model == "m1":
            return self._m1_state_at(key, timestamp)
        if model == "m2":
            return self._m2_state_at(key, timestamp)
        raise TemporalQueryError(f"unknown model {model!r}")

    # -- per-model paths ---------------------------------------------------

    def _tqf_state_at(self, key: str, timestamp: int) -> Optional[Event]:
        latest: Optional[Event] = None
        for entry in self._ledger.get_history_for_key(key):
            if entry.is_delete:
                continue
            event = Event.from_value(key, entry.value)
            if event.time > timestamp:
                break
            latest = event
        return latest

    def _m1_state_at(self, key: str, timestamp: int) -> Optional[Event]:
        if timestamp > self._m1.indexed_until():
            raise TemporalQueryError(
                f"timestamp {timestamp} beyond the indexed range "
                f"({self._m1.indexed_until()})"
            )
        # Candidate intervals up to the one containing `timestamp`,
        # newest first; the first bundle with an event <= timestamp wins.
        window = TimeInterval(0, timestamp)
        candidates = sorted(
            self._m1._overlapping_intervals(key, window),
            key=lambda interval: interval.start,
            reverse=True,
        )
        for interval in candidates:
            bundle = self._m1._read_bundle(
                key, interval, TimeInterval(interval.start, interval.end)
            )
            eligible = [event for event in bundle if event.time <= timestamp]
            if eligible:
                return max(eligible)
        return None

    def _m2_state_at(self, key: str, timestamp: int) -> Optional[Event]:
        intervals = [
            interval
            for interval in self._m2.index_intervals(key)
            if interval.start < timestamp
        ]
        for interval in reversed(intervals):  # newest candidate first
            events = self._m2.fetch_events(
                key, TimeInterval(interval.start, interval.end)
            )
            eligible = [event for event in events if event.time <= timestamp]
            if eligible:
                return max(eligible)
        return None

    # -- convenience --------------------------------------------------------

    def timeline(
        self, model: str, key: str, timestamps: List[int]
    ) -> List[Optional[Event]]:
        """Batch as-of queries (e.g. "state at every hour")."""
        return [self.state_at(model, key, t) for t in timestamps]
