"""Standing temporal queries: join results that follow the chain.

Analytics dashboards don't re-run TQF on every refresh; they keep a
window's result current as blocks commit.  :class:`LiveJoinQuery`
subscribes to the network's block stream, folds each valid transaction's
events into per-key stores, and recomputes the join lazily on read
(dirty-flagged, so a burst of blocks costs one recompute).

This is pure client-side maintenance -- no extra ledger state -- and is
exactly the consumer the chaincode-event/block-listener machinery exists
for.  The window may be anchored (fixed ``(t_s, t_e]``) or *sliding*
(always the trailing ``width`` of logical time).

Delivery robustness: :meth:`on_block` is *idempotent by block number* --
a block at or below the high-water mark is ignored -- and *transactional*
per block: events are staged and only folded in once the whole block
decoded, so a crash (or injected fault) mid-delivery leaves the query
exactly as if the block never arrived.  :meth:`catch_up` then replays the
missed suffix from the ledger; between the two, a delivery interrupted at
any point either lands exactly once or not at all -- never a partial or
double count.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.common.errors import TemporalQueryError
from repro.fabric.block import VALID, Block
from repro.temporal.events import Event
from repro.temporal.intervals import TimeInterval
from repro.temporal.join import JoinRow, temporal_join
from repro.temporal.keys import is_interval_key


class LiveJoinQuery:
    """Maintains query Q's rows over a fixed or sliding window.

    Attach with :meth:`subscribe` *before* ingesting, or seed from an
    existing result first.  Reads (:meth:`rows`) are cheap while the
    underlying data is unchanged.
    """

    def __init__(
        self,
        shipment_prefix: str = "S",
        container_prefix: str = "C",
        window: Optional[TimeInterval] = None,
        sliding_width: Optional[int] = None,
    ) -> None:
        if (window is None) == (sliding_width is None):
            raise TemporalQueryError(
                "choose exactly one of window= (anchored) or "
                "sliding_width= (trailing window)"
            )
        if sliding_width is not None and sliding_width <= 0:
            raise TemporalQueryError(
                f"sliding_width must be positive, got {sliding_width}"
            )
        self._shipment_prefix = shipment_prefix
        self._container_prefix = container_prefix
        self._window = window
        self._sliding_width = sliding_width
        self._shipment_events: Dict[str, List[Event]] = {}
        self._container_events: Dict[str, List[Event]] = {}
        self._latest_time = 0
        self._dirty = True
        self._cached_rows: List[JoinRow] = []
        self.blocks_seen = 0
        #: Highest block number folded in (-1 = none); the idempotence
        #: high-water mark for redelivery and :meth:`catch_up`.
        self.last_block = -1
        self._network: Optional[Any] = None

    # -- wiring ---------------------------------------------------------------

    def subscribe(self, network) -> "LiveJoinQuery":
        """Register on ``network``'s block stream; returns self."""
        network.on_block(self.on_block)
        self._network = network
        return self

    def unsubscribe(self) -> bool:
        """Detach from the subscribed network's block stream.

        Returns whether a registration was removed.  Safe to call from
        inside :meth:`on_block` (delivery of the current block to other
        listeners proceeds; this query simply stops receiving the next).
        """
        network, self._network = self._network, None
        if network is None:
            return False
        return network.remove_block_listener(self.on_block)

    def on_block(self, block: Block) -> None:
        """Fold one committed block's events in (the listener callback).

        Exactly-once per block: a block numbered at or below
        :attr:`last_block` is ignored (a crashed-and-replayed delivery
        cannot double-count), and events are staged before any state
        changes, so an exception mid-decode leaves the query untouched
        and the block eligible for clean redelivery.
        """
        if block.number <= self.last_block:
            return
        staged: List[Event] = []
        for tx in block.transactions:
            if tx.validation_code != VALID:
                continue
            for key, write in tx.rw_set.writes.items():
                if write.is_delete or is_interval_key(key) or key.startswith("\x02"):
                    continue
                value = write.value
                if not isinstance(value, dict) or {"o", "t", "e"} - set(value):
                    continue
                staged.append(Event.from_value(key, value))
        # Commit point: nothing above mutated state, everything below is
        # pure in-memory appends that cannot fail on well-formed events.
        self.blocks_seen += 1
        self.last_block = block.number
        for event in staged:
            self._add_event(event)

    def catch_up(self, ledger) -> int:
        """Replay committed blocks this query missed; returns how many.

        Recovery after a crashed delivery or a late subscription: folds
        every block in ``ledger`` above :attr:`last_block`, in order.
        Together with :meth:`on_block`'s high-water mark this converges
        to exactly-once folding no matter how delivery was interrupted.
        """
        replayed = 0
        for block in ledger.block_store.iter_blocks():
            if block.number > self.last_block:
                self.on_block(block)
                replayed += 1
        return replayed

    def _add_event(self, event: Event) -> None:
        if event.key.startswith(self._shipment_prefix):
            store = self._shipment_events
        elif event.key.startswith(self._container_prefix):
            store = self._container_events
        else:
            return
        store.setdefault(event.key, []).append(event)
        self._latest_time = max(self._latest_time, event.time)
        self._dirty = True

    # -- reads ------------------------------------------------------------------

    @property
    def window(self) -> TimeInterval:
        """The currently effective window."""
        if self._window is not None:
            return self._window
        assert self._sliding_width is not None
        end = max(self._latest_time, 1)
        return TimeInterval(max(0, end - self._sliding_width), end)

    def rows(self) -> List[JoinRow]:
        """Current join rows for the window (recomputed only when dirty)."""
        if self._dirty:
            window = self.window
            self._cached_rows = temporal_join(
                self._filtered(self._shipment_events, window),
                self._filtered(self._container_events, window),
                window,
            )
            # Sliding windows move with every new event, so their results
            # can never be considered clean; anchored windows can.
            self._dirty = self._sliding_width is not None
        return self._cached_rows

    @staticmethod
    def _filtered(
        store: Dict[str, List[Event]], window: TimeInterval
    ) -> Dict[str, List[Event]]:
        return {
            key: [event for event in events if window.contains(event.time)]
            for key, events in store.items()
        }

    def trucks_for(self, shipment: str) -> List[str]:
        """Distinct trucks currently ferrying ``shipment`` in the window."""
        return sorted({row.truck for row in self.rows() if row.shipment == shipment})
