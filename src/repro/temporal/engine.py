"""The unified temporal query facade and its instrumentation.

:class:`TemporalQueryEngine` runs the paper's join query Q on any of the
three models and returns the rows together with :class:`QueryStats` --
wall-clock join time, time spent inside GHFK iteration, and the
block/call counters the paper's analysis is phrased in.

Per-key event retrieval is scheduled through a pluggable
:class:`~repro.temporal.executor.QueryExecutor`: serial by default (the
paper's setup), or a thread pool (``workers > 1``) that fans the
independent ``fetch_events`` calls out concurrently.  Rows and counter
deltas are identical either way -- the executor returns results in key
order regardless of worker completion order, and every shared structure
underneath (metrics registry, block cache, history index) is
lock-guarded.

Resilience (opt-in, never changing default semantics):

* ``run_join(..., deadline=...)`` threads a
  :class:`~repro.common.resilience.Deadline` through the executor, so a
  query abandons its remaining per-key fetches once the budget dies
  instead of draining them all.
* ``run_join(..., degrade=True)`` turns index-probe failures on M1/M2
  (corrupt index state, quarantined SSTable, window beyond the indexed
  range) into a *degraded* answer: the query falls back to a TQF chain
  scan -- always correct, since TQF reads only the block chain -- and
  the result carries a typed :class:`DegradedResult` marker instead of
  silently pretending the index answered.  A per-index-model
  :class:`~repro.common.resilience.CircuitBreaker` stops hammering an
  index that keeps failing; while the breaker is open, queries skip the
  probe entirely and degrade immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

from repro.common import metrics as metric_names
from repro.common.config import default_query_workers
from repro.common.errors import StorageError, TemporalQueryError
from repro.common.metrics import MetricsRegistry
from repro.common.resilience import CircuitBreaker, Deadline
from repro.common.timeutils import Stopwatch
from repro.fabric.ledger import Ledger
from repro.temporal.events import Event
from repro.temporal.executor import QueryExecutor, build_executor
from repro.temporal.intervals import TimeInterval
from repro.temporal.join import JoinRow, temporal_join
from repro.temporal.m1 import M1QueryEngine
from repro.temporal.m2 import M2QueryEngine
from repro.temporal.tqf import TQFEngine

#: The model every degraded query falls back to.  TQF derives answers
#: from the block chain alone -- no auxiliary index to be corrupt -- so
#: it stays correct whenever the ledger itself is intact.
FALLBACK_MODEL = "tqf"


@dataclass(frozen=True)
class EntityNamespace:
    """Key prefixes of the supply-chain entities on the ledger."""

    shipment_prefix: str = "S"
    container_prefix: str = "C"
    truck_prefix: str = "T"


class QueryModel(Protocol):
    """What every query engine implements."""

    model: str

    def list_keys(self, prefix: str) -> List[str]: ...

    def fetch_events(self, key: str, window: TimeInterval) -> List[Event]: ...


@dataclass(frozen=True)
class DegradedResult:
    """Typed marker: the query answered, but not on the requested model.

    Attached to :class:`JoinResult` when ``degrade=True`` rescued an
    index failure.  Rows are still correct -- they came from the
    fallback chain scan -- but slower, and callers that care (the chaos
    soak, dashboards) can tell a degraded answer from a healthy one.
    """

    requested_model: str
    fallback_model: str
    #: Human-readable cause (breaker open, index probe error message).
    reason: str
    #: Class name of the triggering exception, or ``"CircuitOpenError"``
    #: when the probe was skipped because the breaker was already open.
    error_type: str


@dataclass
class QueryStats:
    """Per-query instrumentation (the columns of the paper's Table I)."""

    model: str
    window: TimeInterval
    join_seconds: float = 0.0
    ghfk_seconds: float = 0.0
    ghfk_calls: int = 0
    blocks_deserialized: int = 0
    block_bytes_read: int = 0
    block_cache_hits: int = 0
    block_cache_misses: int = 0
    get_state_calls: int = 0
    range_scan_calls: int = 0
    events_fetched: int = 0
    keys_queried: int = 0
    #: Executor parallelism the query ran with (1 = serial).
    workers: int = 1

    def as_row(self) -> Dict[str, object]:
        """Flatten for table rendering."""
        return {
            "model": self.model,
            "window": str(self.window),
            "join_s": round(self.join_seconds, 4),
            "ghfk_s": round(self.ghfk_seconds, 4),
            "ghfk_calls": self.ghfk_calls,
            "blocks": self.blocks_deserialized,
            "events": self.events_fetched,
        }


@dataclass
class JoinResult:
    """Join rows plus the instrumentation gathered while producing them."""

    rows: List[JoinRow]
    stats: QueryStats
    shipment_events: Dict[str, List[Event]] = field(default_factory=dict)
    container_events: Dict[str, List[Event]] = field(default_factory=dict)
    #: Set when the query fell back to TQF after an index failure
    #: (``stats.model`` then names the model that actually executed).
    degraded: Optional[DegradedResult] = None


class TemporalQueryEngine:
    """Facade running query Q over a chosen model's engine."""

    def __init__(
        self,
        ledger: Ledger,
        metrics: MetricsRegistry,
        namespace: EntityNamespace | None = None,
        executor: Optional[QueryExecutor] = None,
        workers: Optional[int] = None,
    ) -> None:
        """``executor`` wins over ``workers``; with neither given, the
        worker count comes from ``REPRO_QUERY_WORKERS`` (default 1,
        i.e. serial)."""
        if executor is None:
            executor = build_executor(
                workers if workers is not None else default_query_workers()
            )
        self._ledger = ledger
        self._metrics = metrics
        self.executor = executor
        self.namespace = namespace or EntityNamespace()
        self._engines: Dict[str, QueryModel] = {
            "tqf": TQFEngine(ledger, metrics=metrics),
            "m1": M1QueryEngine(ledger, metrics=metrics),
            "m2": M2QueryEngine(ledger, metrics=metrics),
        }
        #: Per-index-model circuit breakers consulted by degraded-mode
        #: queries.  TQF has none: it is the fallback, not a probe.
        self.breakers: Dict[str, CircuitBreaker] = {
            model: CircuitBreaker(name=f"index:{model}")
            for model in self._engines
            if model != FALLBACK_MODEL
        }

    def engine(self, model: str) -> QueryModel:
        """The per-model query engine (``tqf``, ``m1`` or ``m2``)."""
        try:
            return self._engines[model]
        except KeyError:
            raise TemporalQueryError(
                f"unknown model {model!r}; available: {sorted(self._engines)}"
            ) from None

    def fetch_window_events(
        self,
        model: str,
        window: TimeInterval,
        deadline: Optional[Deadline] = None,
    ) -> tuple[Dict[str, List[Event]], Dict[str, List[Event]]]:
        """Per-key events inside ``window`` for all shipments and containers.

        The per-key fetches run through the configured executor --
        possibly on several threads at once -- but the returned dicts
        are always built in ``list_keys`` order, so result layout is
        independent of scheduling.  With a ``deadline``, remaining
        fetches are abandoned once the budget expires and
        :class:`~repro.common.errors.DeadlineExceededError` propagates.
        """
        engine = self.engine(model)
        if deadline is not None:
            deadline.check("entity enumeration")
        shipment_keys = engine.list_keys(self.namespace.shipment_prefix)
        container_keys = engine.list_keys(self.namespace.container_prefix)
        # One fan-out over both entity sets keeps the pool saturated
        # instead of draining between shipments and containers.
        results: List[Tuple[str, List[Event]]] = self.executor.map(
            lambda key: (key, engine.fetch_events(key, window)),
            shipment_keys + container_keys,
            deadline=deadline,
        )
        shipment_events = dict(results[: len(shipment_keys)])
        container_events = dict(results[len(shipment_keys):])
        return shipment_events, container_events

    def run_join(
        self,
        model: str,
        window: TimeInterval,
        keep_events: bool = False,
        deadline: Optional[Deadline] = None,
        degrade: bool = False,
    ) -> JoinResult:
        """Run query Q on ``model`` over ``window``, fully instrumented.

        The measured region covers exactly what the paper measures: entity
        enumeration, event retrieval and the in-memory join.

        With ``degrade=True``, an index-probe failure on M1/M2 (typed
        :class:`~repro.common.errors.TemporalQueryError` or
        :class:`~repro.common.errors.StorageError`) re-runs the query on
        TQF and tags the result with :class:`DegradedResult` instead of
        raising; repeated failures trip the model's circuit breaker so
        later queries skip the doomed probe.  Deadline expiry and
        injected-fault sentinels are *never* treated as index failures
        -- they propagate regardless of ``degrade``.
        """
        requested = model
        degraded: Optional[DegradedResult] = None
        breaker = self.breakers.get(model)

        if degrade and breaker is not None and not breaker.allow():
            degraded = DegradedResult(
                requested_model=requested,
                fallback_model=FALLBACK_MODEL,
                reason=f"circuit breaker for {requested!r} is open",
                error_type="CircuitOpenError",
            )
            model = FALLBACK_MODEL

        before = self._metrics.snapshot()
        watch = Stopwatch().start()
        if degraded is None and degrade and breaker is not None:
            try:
                shipment_events, container_events = self.fetch_window_events(
                    model, window, deadline=deadline
                )
            except (TemporalQueryError, StorageError) as exc:
                # An index that cannot answer.  Record the failure (the
                # breaker may trip), then answer from the chain instead.
                # DeadlineExceededError and the fault harness's crash
                # sentinel are not StorageErrors and propagate above.
                breaker.record_failure()
                degraded = DegradedResult(
                    requested_model=requested,
                    fallback_model=FALLBACK_MODEL,
                    reason=str(exc),
                    error_type=type(exc).__name__,
                )
                model = FALLBACK_MODEL
                shipment_events, container_events = self.fetch_window_events(
                    model, window, deadline=deadline
                )
            else:
                breaker.record_success()
        else:
            shipment_events, container_events = self.fetch_window_events(
                model, window, deadline=deadline
            )
        rows = temporal_join(shipment_events, container_events, window)
        join_seconds = watch.stop()
        delta = self._metrics.snapshot().diff(before)

        stats = QueryStats(
            model=model,
            window=window,
            join_seconds=join_seconds,
            ghfk_seconds=delta.timer(metric_names.GHFK_SECONDS),
            ghfk_calls=delta.counter(metric_names.GHFK_CALLS),
            blocks_deserialized=delta.counter(metric_names.BLOCKS_DESERIALIZED),
            block_bytes_read=delta.counter(metric_names.BLOCK_BYTES_READ),
            block_cache_hits=delta.counter(metric_names.BLOCK_CACHE_HITS),
            block_cache_misses=delta.counter(metric_names.BLOCK_CACHE_MISSES),
            get_state_calls=delta.counter(metric_names.GET_STATE_CALLS),
            range_scan_calls=delta.counter(metric_names.RANGE_SCAN_CALLS),
            events_fetched=sum(len(e) for e in shipment_events.values())
            + sum(len(e) for e in container_events.values()),
            keys_queried=len(shipment_events) + len(container_events),
            workers=self.executor.workers,
        )
        return JoinResult(
            rows=rows,
            stats=stats,
            shipment_events=shipment_events if keep_events else {},
            container_events=container_events if keep_events else {},
            degraded=degraded,
        )
