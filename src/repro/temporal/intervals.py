"""Interval algebra for temporal queries and indexes.

The paper writes every interval as ``(t1, t2]`` -- *exclusive* start,
*inclusive* end -- e.g. query windows ``(10K, 20K]`` and index intervals
``(0, 2K], (2K, 4K], ...``.  :class:`TimeInterval` implements exactly that
convention, and :class:`FixedIntervalScheme` implements the paper's
fixed-length-``u`` indexing intervals: a timestamp ``t`` belongs to
``(⌊t/u⌋·u, ⌈t/u⌉·u]`` (with the boundary case ``t = k·u`` landing in
``((k-1)·u, k·u]``, the only reading under which the intervals partition
the timeline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.common.errors import TemporalQueryError
from repro.common.timeutils import Timestamp


@dataclass(frozen=True, order=True)
class TimeInterval:
    """A half-open-on-the-left interval ``(start, end]`` of logical time."""

    start: Timestamp
    end: Timestamp

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < 0:
            raise TemporalQueryError(
                f"interval bounds must be non-negative: ({self.start}, {self.end}]"
            )
        if self.end <= self.start:
            raise TemporalQueryError(
                f"interval must be non-empty: ({self.start}, {self.end}]"
            )

    def contains(self, timestamp: Timestamp) -> bool:
        """True when ``start < timestamp <= end``."""
        return self.start < timestamp <= self.end

    def overlaps(self, other: "TimeInterval") -> bool:
        """True when the two ``(start, end]`` intervals share any point."""
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "TimeInterval") -> "TimeInterval | None":
        """The shared sub-interval, or ``None`` when disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if end <= start:
            return None
        return TimeInterval(start, end)

    @property
    def length(self) -> int:
        return self.end - self.start

    def __str__(self) -> str:
        return f"({self.start}-{self.end}]"


class FixedIntervalScheme:
    """Fixed-length index intervals of size ``u`` aligned to multiples of ``u``.

    The strategy both models use in the paper (Sections VI-3 and VII):
    partition time into ``(0, u], (u, 2u], ...``.
    """

    def __init__(self, u: int) -> None:
        if u <= 0:
            raise TemporalQueryError(f"interval length u must be positive, got {u}")
        self.u = u

    def interval_for(self, timestamp: Timestamp) -> TimeInterval:
        """The index interval containing ``timestamp``.

        ``timestamp`` must be ``> 0``: under the paper's ``(start, end]``
        convention no interval contains 0, so an event stamped exactly at
        ``t = 0`` is unindexable -- M2 ingestion and the M1 rewrite both
        surface this as a typed :class:`TemporalQueryError` instead of
        silently mis-bucketing it (a naive ``t // u`` would file both
        ``t = 0`` and every ``t = k·u`` boundary one interval too late).
        """
        if timestamp <= 0:
            raise TemporalQueryError(
                f"timestamp {timestamp} has no (start, end] index interval: "
                "logical time starts at 1 under the paper's exclusive-start "
                "convention. Shift event timestamps to t >= 1 before "
                "ingesting (e.g. stamp the first event at 1, not 0)"
            )
        bucket = (timestamp + self.u - 1) // self.u  # ceil(t / u)
        return TimeInterval((bucket - 1) * self.u, bucket * self.u)

    def previous_interval(self, interval: TimeInterval) -> "TimeInterval | None":
        """The adjacent earlier interval, or ``None`` at the timeline start.

        Used by Model M2's ``GetState-Base`` probing loop (Section VII-B1).
        """
        if interval.start == 0:
            return None
        return TimeInterval(interval.start - self.u, interval.start)

    def intervals_overlapping(self, window: TimeInterval) -> List[TimeInterval]:
        """All index intervals that overlap the query window."""
        return list(self.iter_intervals_overlapping(window))

    def iter_intervals_overlapping(
        self, window: TimeInterval
    ) -> Iterator[TimeInterval]:
        """Lazily yield the index intervals overlapping ``window``."""
        first_bucket = window.start // self.u  # interval containing start+1
        start = first_bucket * self.u
        while start < window.end:
            yield TimeInterval(start, start + self.u)
            start += self.u

    def partition(self, window: TimeInterval) -> List[TimeInterval]:
        """Disjoint aligned intervals covering exactly ``window``.

        ``window`` bounds must be multiples of ``u``; use
        :meth:`partition_clipped` for arbitrary windows.
        """
        if window.start % self.u or window.end % self.u:
            raise TemporalQueryError(
                f"window {window} is not aligned to u={self.u}"
            )
        return [
            TimeInterval(start, start + self.u)
            for start in range(window.start, window.end, self.u)
        ]

    def partition_clipped(self, window: TimeInterval) -> List[TimeInterval]:
        """Disjoint u-aligned intervals covering ``window``, with the first
        and last clipped to the window bounds.

        The M1 indexing process uses this when an indexing period is not a
        multiple of ``u`` (the paper's Table III indexes every 25K
        timestamps with u=2K): interior intervals stay aligned, boundary
        intervals shrink to fit the run's range, so consecutive runs never
        index the same timestamp twice.
        """
        return [
            clipped
            for interval in self.iter_intervals_overlapping(window)
            if (clipped := interval.intersection(window)) is not None
        ]


class HierarchicalIntervalScheme:
    """Nested fixed-length levels ``u, branch·u, branch²·u, ...``.

    The M3 groundwork (ROADMAP item 3, per *Timehash: Hierarchical Time
    Indexing*): level 0 is the paper's fixed-``u`` scheme, and each
    coarser level bundles exactly ``branch`` intervals of the level
    below, so every level-``l`` interval is the disjoint union of its
    ``branch`` children.  The defaults (``levels=3``, ``branch=4``)
    give the ``u, 4u, 16u`` hierarchy; a long query window can then be
    covered by a few coarse bundles plus fine bundles at the ragged
    edges instead of ``|window| / u`` fine bundles.

    Every level obeys the same ``(start, end]`` axioms as
    :class:`FixedIntervalScheme` -- the TEMP002-004 symbolic verifier
    checks per-level alignment *and* the nesting invariant, and this
    class ships only because that pass proves it clean.
    """

    def __init__(self, u: int, levels: int = 3, branch: int = 4) -> None:
        if u <= 0:
            raise TemporalQueryError(f"interval length u must be positive, got {u}")
        if levels < 1:
            raise TemporalQueryError(f"need at least one level, got {levels}")
        if branch < 2:
            raise TemporalQueryError(
                f"branch factor must be at least 2, got {branch}"
            )
        self.u = u
        self.levels = levels
        self.branch = branch
        #: Interval length per level, finest first: ``u * branch**level``.
        self.level_lengths: List[int] = [
            u * branch**level for level in range(levels)
        ]
        self._schemes = [
            FixedIntervalScheme(length) for length in self.level_lengths
        ]

    def _scheme(self, level: int) -> FixedIntervalScheme:
        if not 0 <= level < self.levels:
            raise TemporalQueryError(
                f"level {level} out of range: scheme has {self.levels} level(s)"
            )
        return self._schemes[level]

    def _infer_level(self, interval: TimeInterval) -> int:
        """The coarsest level ``interval`` is an aligned member of
        (falling back to the base level for foreign intervals)."""
        for level in reversed(range(self.levels)):
            length = self.level_lengths[level]
            if interval.length == length and interval.start % length == 0:
                return level
        return 0

    def interval_for(self, timestamp: Timestamp, level: int = 0) -> TimeInterval:
        """The level-``level`` index interval containing ``timestamp``
        (same ``t > 0`` contract as the fixed scheme)."""
        return self._scheme(level).interval_for(timestamp)

    def previous_interval(self, interval: TimeInterval) -> "TimeInterval | None":
        """The adjacent earlier interval at ``interval``'s own level, or
        ``None`` at the timeline start.  M2's backward probing walk works
        unchanged at any level because each level partitions the
        timeline on its own."""
        if interval.start == 0:
            return None
        length = self.level_lengths[self._infer_level(interval)]
        return TimeInterval(max(0, interval.start - length), interval.start)

    def intervals_overlapping(
        self, window: TimeInterval, level: int = 0
    ) -> List[TimeInterval]:
        """All level-``level`` index intervals overlapping the window."""
        return list(self.iter_intervals_overlapping(window, level))

    def iter_intervals_overlapping(
        self, window: TimeInterval, level: int = 0
    ) -> Iterator[TimeInterval]:
        """Lazily yield the level-``level`` intervals overlapping
        ``window``."""
        return self._scheme(level).iter_intervals_overlapping(window)

    def partition(self, window: TimeInterval, level: int = 0) -> List[TimeInterval]:
        """Aligned level-``level`` intervals covering exactly ``window``
        (window bounds must be multiples of that level's length)."""
        return self._scheme(level).partition(window)

    def partition_clipped(
        self, window: TimeInterval, level: int = 0
    ) -> List[TimeInterval]:
        """Level-``level`` intervals covering ``window``, edges clipped."""
        return self._scheme(level).partition_clipped(window)
