"""Interval-creation strategies for the Model M1 indexing process.

Section VI-3 of the paper partitions each indexing range into fixed-length
intervals and notes that "many other ways of creating indexing intervals
are possible and we plan to explore them as part of future work", and
Section VI-1 explicitly allows the interval set ``Θ(k)`` to differ per
key.  This module implements that future work:

* :class:`FixedLengthPlanner` -- the paper's strategy (same intervals for
  every key, deterministic from ``u``);
* :class:`EquiCountPlanner` -- per-key intervals each bundling roughly the
  same number of events.  On skewed data (DS2's zipf) this avoids both
  over-stuffed early bundles and empty late intervals;
* :class:`GeometricPlanner` -- interval lengths grow geometrically from
  the start of the range, a middle ground favouring recent data.

Fixed-length intervals are computable by the query engine from the run
metadata alone.  Data-dependent planners are not, so the indexer persists
a per-key *interval directory* on the ledger (one state-db entry per key)
that queries consult -- see :class:`repro.temporal.m1.M1Indexer`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from repro.common.errors import TemporalQueryError
from repro.temporal.events import Event
from repro.temporal.intervals import (
    FixedIntervalScheme,
    HierarchicalIntervalScheme,
    TimeInterval,
)


class IntervalPlanner(ABC):
    """Chooses the index intervals ``Θ(k)`` for one key over one range."""

    #: Identifier recorded in the indexing-run metadata.
    name: str = "abstract"

    #: Whether the query engine can recompute this planner's intervals
    #: from run metadata alone (no per-key directory needed).
    deterministic: bool = False

    @abstractmethod
    def plan(self, events: Sequence[Event], window: TimeInterval) -> List[TimeInterval]:
        """Disjoint intervals tiling ``window`` for a key with ``events``.

        ``events`` must be sorted by time and fall inside ``window``.
        The returned intervals must be adjacent (no gaps) and cover
        ``window`` exactly, so a query window can never fall between
        intervals and silently miss events.
        """


class FixedLengthPlanner(IntervalPlanner):
    """The paper's strategy: u-aligned fixed-length intervals."""

    name = "fixed"
    deterministic = True

    def __init__(self, u: int) -> None:
        self.scheme = FixedIntervalScheme(u)

    @property
    def u(self) -> int:
        return self.scheme.u

    def plan(self, events: Sequence[Event], window: TimeInterval) -> List[TimeInterval]:
        return self.scheme.partition_clipped(window)


class EquiCountPlanner(IntervalPlanner):
    """Per-key intervals holding ~``events_per_interval`` events each.

    Boundaries are placed at the timestamps of every n-th event, so each
    bundle (except possibly the last) carries exactly ``n`` events.  A key
    with no events gets a single interval covering the whole range (which
    the indexer then skips, as empty bundles are never written).
    """

    name = "equicount"
    deterministic = False

    def __init__(self, events_per_interval: int) -> None:
        if events_per_interval <= 0:
            raise TemporalQueryError(
                f"events_per_interval must be positive, got {events_per_interval}"
            )
        self.events_per_interval = events_per_interval

    def plan(self, events: Sequence[Event], window: TimeInterval) -> List[TimeInterval]:
        if not events:
            return [window]
        intervals: List[TimeInterval] = []
        start = window.start
        n = self.events_per_interval
        for position in range(n - 1, len(events), n):
            boundary = events[position].time
            if position + 1 == len(events):
                break  # the final chunk extends to the window's end
            if boundary <= start:
                continue  # duplicate timestamps collapsed into one interval
            if boundary >= window.end:
                break
            intervals.append(TimeInterval(start, boundary))
            start = boundary
        intervals.append(TimeInterval(start, window.end))
        return intervals


class GeometricPlanner(IntervalPlanner):
    """Interval lengths grow geometrically across the range.

    The first interval has ``base`` length and every subsequent one is
    ``ratio`` times longer, favouring fine granularity at the start of a
    range.  Useful when queries concentrate on a known hot region.
    """

    name = "geometric"
    deterministic = False

    def __init__(self, base: int, ratio: float = 2.0) -> None:
        if base <= 0:
            raise TemporalQueryError(f"base length must be positive, got {base}")
        if ratio < 1.0:
            raise TemporalQueryError(f"ratio must be >= 1, got {ratio}")
        self.base = base
        self.ratio = ratio

    def plan(self, events: Sequence[Event], window: TimeInterval) -> List[TimeInterval]:
        intervals: List[TimeInterval] = []
        start = window.start
        length = float(self.base)
        while start < window.end:
            remaining = window.end - start
            if length >= remaining:
                # Close the range without truncating the accumulator: on
                # very long windows the float length saturates to inf and
                # int(length) would raise OverflowError mid-plan, leaving
                # the tail of the window unindexed.
                end = window.end
            else:
                end = start + max(1, int(length))
                length *= self.ratio
            intervals.append(TimeInterval(start, end))
            start = end
        return intervals


class HierarchicalPlanner(IntervalPlanner):
    """Coarsest-covering-level planning over a hierarchical scheme.

    The M3 prototype: walk the window left to right and at each position
    emit the *longest* level length whose aligned interval both starts
    here and fits inside the window; where not even a base interval fits
    aligned, clip to the next base boundary (or the window end).  Long
    windows thus cost a few coarse bundles plus ragged edges instead of
    ``|window| / u`` fine bundles, and the result still tiles the window
    exactly -- the TEMP003 verifier holds every plan to the canonical
    coarsest-covering decomposition, so skipping a level is a lint
    failure, not a silent slowdown.

    Like the other data-independent-but-non-fixed planners it rides the
    per-key interval-directory path (``deterministic = False``): the M1
    query engine reads the planned intervals back from the ledger, so no
    query-side code needs to understand levels.
    """

    name = "hierarchical"
    deterministic = False

    def __init__(self, u: int, levels: int = 3, branch: int = 4) -> None:
        self.scheme = HierarchicalIntervalScheme(u, levels=levels, branch=branch)

    def plan(self, events: Sequence[Event], window: TimeInterval) -> List[TimeInterval]:
        lengths = sorted(self.scheme.level_lengths, reverse=True)
        base = self.scheme.level_lengths[0]
        intervals: List[TimeInterval] = []
        position = window.start
        while position < window.end:
            end: Optional[int] = None
            for length in lengths:
                if position % length == 0 and position + length <= window.end:
                    end = position + length
                    break
            if end is None:
                end = min(window.end, (position // base + 1) * base)
            intervals.append(TimeInterval(position, end))
            position = end
        return intervals


def make_planner(
    name: str,
    u: Optional[int] = None,
    events_per_interval: Optional[int] = None,
    base: Optional[int] = None,
    ratio: float = 2.0,
    levels: int = 3,
    branch: int = 4,
) -> IntervalPlanner:
    """Planner factory used by the CLI and benches."""
    if name == "fixed":
        if u is None:
            raise TemporalQueryError("the fixed planner requires u")
        return FixedLengthPlanner(u)
    if name == "equicount":
        if events_per_interval is None:
            raise TemporalQueryError(
                "the equicount planner requires events_per_interval"
            )
        return EquiCountPlanner(events_per_interval)
    if name == "geometric":
        if base is None and u is None:
            raise TemporalQueryError("the geometric planner requires base (or u)")
        return GeometricPlanner(base if base is not None else u, ratio)  # type: ignore[arg-type]
    if name == "hierarchical":
        if u is None:
            raise TemporalQueryError("the hierarchical planner requires u")
        return HierarchicalPlanner(u, levels=levels, branch=branch)
    raise TemporalQueryError(f"unknown planner {name!r}")
