"""TQF: the naive way to run temporal queries on Fabric (Section V).

For each entity key, TQF issues one full ``GetHistoryForKey`` call and
filters the returned states to the query window client-side.  Because the
history iterator is oldest-first and Fabric has no temporal index, fetching
events inside ``(t_s, t_e]`` forces deserialization of every block holding
the key's events in ``(0, t_e]`` -- the bottleneck both models attack.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.common import metrics as metric_names
from repro.common.metrics import NULL_REGISTRY, MetricsRegistry
from repro.fabric.ledger import Ledger
from repro.temporal.events import Event
from repro.temporal.intervals import TimeInterval
from repro.temporal.keys import is_interval_key

#: Range-scan end sentinel: larger than any printable-ASCII key suffix.
PREFIX_END = "\x7f"


class TQFEngine:
    """The baseline temporal query engine.

    Stateless between calls: ``fetch_events`` holds no per-engine mutable
    state, so the parallel executor may invoke it for many keys at once.
    Everything it shares (metrics, history index, block store/cache) is
    lock-guarded underneath.
    """

    #: Identifier used by the facade and benchmark tables.
    model = "tqf"

    def __init__(self, ledger: Ledger, metrics: MetricsRegistry = NULL_REGISTRY) -> None:
        self._ledger = ledger
        self._metrics = metrics

    def list_keys(self, prefix: str) -> List[str]:
        """All base entity keys starting with ``prefix`` (state-db range scan).

        This is the paper's first step: "retrieve the list of all shipments
        and containers using a range-scan query".
        """
        return [
            key
            for key, _ in self._ledger.get_state_by_range(prefix, prefix + PREFIX_END)
            if not is_interval_key(key)
        ]

    def fetch_events(self, key: str, window: TimeInterval) -> List[Event]:
        """Events of ``key`` inside ``window`` via one full GHFK scan.

        The iterator is abandoned as soon as a state past ``window.end``
        appears (histories are ingested in time order), so the cost is
        proportional to the key's blocks in ``(0, t_e]`` -- exactly the
        paper's cost model.
        """
        with self._metrics.timed(metric_names.GHFK_SECONDS):
            return list(self._iter_events(key, window))

    def _iter_events(self, key: str, window: TimeInterval) -> Iterator[Event]:
        # Filter on the *event's own* timestamp, not the transaction's: an
        # ME batch stamps every event with the batch's newest time.  Per-key
        # event times are strictly increasing in history order (ingestion is
        # time-sorted), so stopping at the first too-late event is exact.
        for entry in self._ledger.get_history_for_key(key):
            if entry.is_delete:
                continue
            event = Event.from_value(key, entry.value)
            if event.time > window.end:
                break
            if window.contains(event.time):
                yield event
