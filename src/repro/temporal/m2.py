"""Model M2: interval-tagged keys, no separate indexing phase (Section VII).

Events were ingested by :class:`~repro.temporal.chaincodes.M2SupplyChainChaincode`
under transformed keys ``(k, θ)``, so the indexing information already
lives in state-db and history-db.  To answer a temporal query the engine:

1. range-scans state-db for key ``k``'s index intervals overlapping the
   query window ``τ``,
2. issues one GHFK per overlapping ``(k, θ)``, which touches exactly the
   blocks holding ``k``'s events inside ``θ``,
3. filters the returned events to ``τ``.

Because the transformation breaks ordinary chaincode access to base keys,
:class:`BaseAccessAPI` emulates ``GetState(k)`` and ``GHFK(k)`` on top of
the transformed data (Section VII-B1), probing backwards from the current
index interval for the former and unioning all intervals for the latter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from repro.common import metrics as metric_names
from repro.common.metrics import NULL_REGISTRY, MetricsRegistry
from repro.fabric.historydb import HistoryEntry
from repro.fabric.ledger import Ledger
from repro.temporal.events import Event
from repro.temporal.intervals import FixedIntervalScheme, TimeInterval
from repro.temporal.keys import (
    decode_interval_key,
    encode_interval_key,
    interval_key_range,
)
from repro.temporal.tqf import PREFIX_END


class M2QueryEngine:
    """Temporal queries over Model M2's transformed ledger.

    Stateless between calls (like :class:`~repro.temporal.tqf.TQFEngine`),
    so concurrent ``fetch_events`` calls from the parallel executor are
    safe: per-interval GHFK scans share only lock-guarded structures.
    """

    model = "m2"

    def __init__(self, ledger: Ledger, metrics: MetricsRegistry = NULL_REGISTRY) -> None:
        self._ledger = ledger
        self._metrics = metrics

    def list_keys(self, prefix: str) -> List[str]:
        """Distinct base keys under ``prefix``.

        State-db holds only transformed ``(k, θ)`` keys; they sort by base
        key first, so one range scan with on-the-fly dedup enumerates the
        entities.
        """
        keys: List[str] = []
        last: Optional[str] = None
        for composite, _ in self._ledger.get_state_by_range(prefix, prefix + PREFIX_END):
            base_key, _ = decode_interval_key(composite)
            if base_key != last:
                keys.append(base_key)
                last = base_key
        return keys

    def index_intervals(self, key: str) -> List[TimeInterval]:
        """All index intervals recorded for ``key``, in temporal order."""
        start, end = interval_key_range(key)
        return [
            decode_interval_key(composite)[1]
            for composite, _ in self._ledger.get_state_by_range(start, end)
        ]

    def fetch_events(self, key: str, window: TimeInterval) -> List[Event]:
        """Events of ``key`` in ``window`` via per-interval GHFK calls.

        Unlike Model M1, each GHFK may touch several blocks -- the events
        of ``(k, θ)`` are scattered exactly as the base data was -- but
        only blocks holding events *inside* ``θ``, never the ``(0, t_s]``
        prefix TQF pays for.
        """
        with self._metrics.timed(metric_names.GHFK_SECONDS):
            events: List[Event] = []
            for interval in self.index_intervals(key):
                if not interval.overlaps(window):
                    continue
                composite = encode_interval_key(key, interval)
                for entry in self._ledger.get_history_for_key(composite):
                    if entry.is_delete:
                        continue
                    # Filter on the event's own time (ME batches stamp every
                    # event with the batch's newest transaction time).
                    event = Event.from_value(key, entry.value)
                    if event.time > window.end:
                        break
                    if window.contains(event.time):
                        events.append(event)
        events.sort()
        return events


@dataclass
class BaseAccessResult:
    """Result of a ``GetState-Base`` call: the value plus the number of
    underlying GetState probes it needed (Table IV's parenthesized counts)."""

    value: Any
    probes: int


class BaseAccessAPI:
    """Emulated base-data access on a Model M2 ledger (Section VII-B).

    Applications written against plain Fabric expect ``GetState(k)`` and
    ``GHFK(k)``; under Model M2 those keys do not exist.  This API
    implements the paper's second option: probe backwards from the current
    index interval until a state is found.
    """

    def __init__(
        self,
        ledger: Ledger,
        u: int,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        self._ledger = ledger
        self._scheme = FixedIntervalScheme(u)
        self._metrics = metrics

    @property
    def u(self) -> int:
        return self._scheme.u

    def get_state_base(self, key: str, now: int) -> BaseAccessResult:
        """``GetState(k)`` emulation: the current state of ``(k, θ_max)``.

        Starting from the index interval containing ``now``, issue GetState
        on ``(k, θ)`` and step to the previous interval until a state is
        found (Section VII-B1's second option).
        """
        interval: Optional[TimeInterval] = self._scheme.interval_for(now)
        probes = 0
        while interval is not None:
            probes += 1
            state = self._ledger.get_state_entry(
                encode_interval_key(key, interval)
            )
            if state is not None:
                return BaseAccessResult(value=state.value, probes=probes)
            interval = self._scheme.previous_interval(interval)
        return BaseAccessResult(value=None, probes=probes)

    def ghfk_base(self, key: str, now: int) -> Iterator[HistoryEntry]:
        """``GHFK(k)`` emulation: union of GHFK over every index interval
        from ``(0, u]`` up to the one containing ``now``, oldest first."""
        last = self._scheme.interval_for(now)
        start = 0
        while start < last.end:
            interval = TimeInterval(start, start + self._scheme.u)
            composite = encode_interval_key(key, interval)
            yield from self._ledger.get_history_for_key(composite)
            start += self._scheme.u

    def history_values_base(self, key: str, now: int) -> List[Tuple[int, Any]]:
        """Convenience: ``(timestamp, value)`` list from :meth:`ghfk_base`."""
        return [
            (entry.timestamp, entry.value)
            for entry in self.ghfk_base(key, now)
            if not entry.is_delete
        ]
