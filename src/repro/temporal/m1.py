"""Model M1: periodic on-chain temporal indexes (Section VI).

The **indexing process** runs periodically.  For the range ``(t1, t2]``
since its last run it gathers, per key ``k`` and per index interval
``θ``, the event set ``EV(k, θ)``, and ingests it as one key-value pair
``⟨(k, θ), EV(k, θ)⟩`` followed by a second transaction deleting the pair
from state-db.  The bundle then lives only in history-db, retrievable with
a single block deserialization.

Interval creation is pluggable (:mod:`repro.temporal.planners`).  The
paper's fixed-length strategy is *deterministic*: a query recomputes
``Θ(k)`` from the run metadata ``(t1, t2, u)``.  Data-dependent planners
(equi-count, geometric -- the paper's "future work") additionally persist
a per-key *interval directory* on the ledger that queries consult.

The **query engine** computes the overlapping index intervals, issues one
GHFK per overlapping interval and reads only the first history entry of
each -- the bundle -- leaving the deletion marker's block untouched
(GHFK laziness).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.common import metrics as metric_names
from repro.common.errors import IndexingError, TemporalQueryError
from repro.common.locks import make_lock
from repro.common.metrics import NULL_REGISTRY, MetricsRegistry
from repro.sanitizer.shared import sanitize_shared
from repro.common.timeutils import Stopwatch
from repro.fabric.gateway import Gateway
from repro.fabric.ledger import Ledger
from repro.faults.crashpoints import (
    M1_MID_BUNDLE,
    M1_POST_KEY,
    M1_POST_RECORD_RUN,
    M1_PRE_BUNDLE,
    M1_PRE_RECORD_RUN,
    crash_point,
)
from repro.faults.manifest import RunManifest
from repro.temporal.chaincodes import M1IndexChaincode
from repro.temporal.events import Event, events_to_values
from repro.temporal.intervals import FixedIntervalScheme, TimeInterval
from repro.temporal.keys import encode_interval_key, is_interval_key
from repro.temporal.planners import FixedLengthPlanner, IntervalPlanner
from repro.temporal.tqf import PREFIX_END, TQFEngine

#: State-key prefix of per-key interval directories.  Sorts below every
#: printable entity prefix, so entity range scans never see it.
DIRECTORY_PREFIX = "\x02m1-dir\x00"

#: Run-scheme markers stored in the run metadata.
SCHEME_FIXED = "fixed"
SCHEME_DIRECTORY = "directory"


def directory_key(key: str) -> str:
    """The state key holding ``key``'s index-interval directory."""
    return DIRECTORY_PREFIX + key


@dataclass(frozen=True)
class IndexingRun:
    """One invocation of the indexing process over ``(t1, t2]``.

    ``scheme`` records how queries should reconstruct ``Θ(k)``:
    ``"fixed"`` (recompute from ``u``) or ``"directory"`` (read the
    per-key directory).
    """

    t1: int
    t2: int
    u: int = 0
    scheme: str = SCHEME_FIXED

    def to_value(self) -> Dict[str, object]:
        return {"t1": self.t1, "t2": self.t2, "u": self.u, "scheme": self.scheme}

    @staticmethod
    def from_value(raw: Dict[str, object]) -> "IndexingRun":
        return IndexingRun(
            t1=raw["t1"],  # type: ignore[arg-type]
            t2=raw["t2"],  # type: ignore[arg-type]
            u=raw.get("u", 0),  # type: ignore[arg-type]
            scheme=raw.get("scheme", SCHEME_FIXED),  # type: ignore[arg-type]
        )

    @property
    def window(self) -> TimeInterval:
        return TimeInterval(self.t1, self.t2)


@dataclass
class IndexingReport:
    """What one indexing run did (feeds Table III)."""

    run: IndexingRun
    planner: str
    keys_scanned: int
    indexes_written: int
    events_bundled: int
    seconds: float


class M1Indexer:
    """Executes the Model M1 indexing process through real transactions.

    The indexer is a *client* of the network: it reads histories through
    GHFK (paying the full scan-from-zero cost the paper reports in
    Table III) and submits two transactions per non-empty bundle (plus
    one directory transaction per key for data-dependent planners).
    """

    def __init__(
        self,
        ledger: Ledger,
        gateway: Gateway,
        key_prefixes: List[str],
        metrics: MetricsRegistry = NULL_REGISTRY,
        manifest_path: Optional[str | Path] = None,
    ) -> None:
        """``manifest_path`` enables crash-safe indexing: progress is
        checkpointed to an atomic JSON manifest after each key (the
        pending batch is flushed first, so "checkpointed" always means
        "committed"), and a rerun of the same range resumes -- skipping
        completed keys and re-verifying partially indexed ones against
        the ledger instead of double-writing their bundles."""
        self._ledger = ledger
        self._gateway = gateway
        self._prefixes = list(key_prefixes)
        self._metrics = metrics
        self._scanner = TQFEngine(ledger, metrics=metrics)
        self._manifest = (
            RunManifest(manifest_path) if manifest_path is not None else None
        )

    def run(self, t1: int, t2: int, u: int) -> IndexingReport:
        """Index ``(t1, t2]`` with the paper's fixed-length-``u`` strategy.

        Index intervals stay aligned to multiples of ``u``; when the run's
        bounds are not (Table III indexes every 25K timestamps with u=2K),
        the boundary intervals are clipped to the run so consecutive runs
        tile the timeline without overlap.
        """
        return self.run_with_planner(t1, t2, FixedLengthPlanner(u))

    def run_with_planner(
        self, t1: int, t2: int, planner: IntervalPlanner
    ) -> IndexingReport:
        """Index ``(t1, t2]`` choosing ``Θ(k)`` per key via ``planner``.

        The range must not overlap any previous run: overlapping runs
        would bundle the same events twice and queries would return
        duplicates.  Periodic indexing therefore always picks
        ``t1 = previous run's t2``.
        """
        if t2 <= t1:
            raise IndexingError(f"indexing range ({t1}, {t2}] is empty")
        window = TimeInterval(t1, t2)
        watch = Stopwatch().start()

        manifest_state = None
        if self._manifest is not None:
            manifest_state = self._manifest.load()
            if manifest_state is not None and (
                manifest_state.get("t1") != t1
                or manifest_state.get("t2") != t2
                or manifest_state.get("planner") != planner.name
            ):
                raise IndexingError(
                    f"run manifest {self._manifest.path} records an unfinished "
                    f"({manifest_state.get('t1')}, {manifest_state.get('t2')}] "
                    f"{manifest_state.get('planner')} run; resume or clear it "
                    "before indexing a different range"
                )
        resuming = manifest_state is not None
        completed_keys = set(manifest_state["completed_keys"]) if resuming else set()

        for previous in M1QueryEngine(self._ledger).indexing_runs():
            if resuming and previous.t1 == t1 and previous.t2 == t2:
                # The crashed run got as far as committing record_run;
                # only the manifest cleanup is left.
                assert self._manifest is not None
                self._manifest.clear()
                return IndexingReport(
                    run=previous,
                    planner=planner.name,
                    keys_scanned=0,
                    indexes_written=0,
                    events_bundled=0,
                    seconds=watch.stop(),
                )
            if previous.window.overlaps(window):
                raise IndexingError(
                    f"range {window} overlaps already-indexed run "
                    f"{previous.window}; events would be double-indexed"
                )

        if self._manifest is not None:
            # Persist the run's identity up front so a crash at any later
            # point is recognizably *this* run when it resumes.
            self._save_manifest(t1, t2, planner.name, completed_keys)

        keys_scanned = 0
        indexes_written = 0
        events_bundled = 0
        for prefix in self._prefixes:
            for key in self._scanner.list_keys(prefix):
                if key in completed_keys:
                    continue
                keys_scanned += 1
                events = self._scanner.fetch_events(key, window)
                intervals = planner.plan(events, window)
                self._check_plan(key, intervals, window)
                written, bundled = self._write_bundles(
                    key, events, intervals,
                    verify_existing=self._manifest is not None,
                )
                indexes_written += len(written)
                events_bundled += bundled
                if written and not planner.deterministic:
                    self._extend_directory(key, written, t2)
                if self._manifest is not None:
                    # Flush first: a manifest checkpoint must never claim
                    # transactions that were still pending (and would be
                    # lost) at a kill.
                    self._gateway.flush()
                crash_point(M1_POST_KEY)
                if self._manifest is not None:
                    completed_keys.add(key)
                    self._save_manifest(t1, t2, planner.name, completed_keys)

        if planner.deterministic:
            run = IndexingRun(t1=t1, t2=t2, u=planner.u, scheme=SCHEME_FIXED)  # type: ignore[attr-defined]
        else:
            run = IndexingRun(t1=t1, t2=t2, scheme=SCHEME_DIRECTORY)
        crash_point(M1_PRE_RECORD_RUN)
        self._gateway.submit_transaction(
            M1IndexChaincode.name, "record_run", [run.to_value()]
        )
        self._gateway.flush()
        crash_point(M1_POST_RECORD_RUN)
        if self._manifest is not None:
            self._manifest.clear()
        return IndexingReport(
            run=run,
            planner=planner.name,
            keys_scanned=keys_scanned,
            indexes_written=indexes_written,
            events_bundled=events_bundled,
            seconds=watch.stop(),
        )

    def _save_manifest(
        self, t1: int, t2: int, planner_name: str, completed_keys: set
    ) -> None:
        assert self._manifest is not None
        self._manifest.save(
            {
                "t1": t1,
                "t2": t2,
                "planner": planner_name,
                "completed_keys": sorted(completed_keys),
            }
        )

    def _extend_directory(
        self, key: str, written: List[TimeInterval], t2: int
    ) -> None:
        """Submit the per-key directory extension, skipping intervals a
        crashed run already recorded."""
        pending = written
        if self._manifest is not None:
            existing = {
                (iv.start, iv.end)
                for iv in M1QueryEngine(self._ledger).directory_intervals(key)
            }
            pending = [
                iv for iv in written if (iv.start, iv.end) not in existing
            ]
        if not pending:
            return
        self._gateway.submit_transaction(
            M1IndexChaincode.name,
            "extend_directory",
            [directory_key(key), [[iv.start, iv.end] for iv in pending]],
            timestamp=t2,
        )

    @staticmethod
    def _check_plan(
        key: str, intervals: List[TimeInterval], window: TimeInterval
    ) -> None:
        """Planner contract: adjacent intervals tiling the window exactly."""
        if not intervals:
            raise IndexingError(f"planner produced no intervals for {key!r}")
        if intervals[0].start != window.start or intervals[-1].end != window.end:
            raise IndexingError(
                f"planner intervals for {key!r} do not cover {window}"
            )
        for left, right in zip(intervals, intervals[1:]):
            if left.end != right.start:
                raise IndexingError(
                    f"planner intervals for {key!r} leave a gap at {left.end}"
                )

    def _write_bundles(
        self,
        key: str,
        events: List[Event],
        intervals: List[TimeInterval],
        verify_existing: bool = False,
    ) -> tuple[List[TimeInterval], int]:
        """Submit the two indexing transactions per non-empty interval.

        With ``verify_existing`` (manifest mode) each interval is first
        checked against the ledger: a bundle a crashed run already
        committed is not rewritten, and a committed bundle whose
        ``clear_index`` went missing in the crash gets just the clear.
        Returns the intervals holding bundles (pre-existing included) and
        the number of events newly bundled.
        """
        written: List[TimeInterval] = []
        bundled = 0
        position = 0
        events = sorted(events)
        for interval in intervals:
            bundle: List[Event] = []
            while position < len(events) and events[position].time <= interval.end:
                bundle.append(events[position])
                position += 1
            if not bundle:
                continue  # pairs are ingested only if EV(k, θ) is non-empty
            index_key = encode_interval_key(key, interval)
            have_bundle = have_clear = False
            if verify_existing:
                have_bundle = bool(
                    self._ledger.history_db.locations_for_key(index_key)
                )
                if have_bundle:
                    have_clear = (
                        self._ledger.get_state_entry(index_key) is None
                    )
            if not have_bundle:
                crash_point(M1_PRE_BUNDLE)
                self._gateway.submit_transaction(
                    M1IndexChaincode.name,
                    "write_index",
                    [index_key, events_to_values(bundle)],
                    timestamp=interval.end,
                )
                bundled += len(bundle)
            if not have_clear:
                crash_point(M1_MID_BUNDLE)
                self._gateway.submit_transaction(
                    M1IndexChaincode.name, "clear_index", [index_key],
                    timestamp=interval.end,
                )
            written.append(interval)
        return written, bundled


@sanitize_shared("_bundle_cache")
class M1QueryEngine:
    """Temporal queries over Model M1 indexes.

    ``bundle_cache_size > 0`` enables a client-side LRU over decoded
    bundles.  Unlike caching raw blocks, this is *sound without
    invalidation*: a bundle ``EV(k, θ)`` is written once and then only
    ever deleted from state-db, never rewritten, so a cached copy can
    never go stale.  The LRU is lock-guarded so the parallel query
    executor's workers can share one engine (an unguarded
    ``move_to_end`` races concurrent eviction of the same key).
    """

    model = "m1"

    def __init__(
        self,
        ledger: Ledger,
        metrics: MetricsRegistry = NULL_REGISTRY,
        bundle_cache_size: int = 0,
    ) -> None:
        self._ledger = ledger
        self._metrics = metrics
        self._cache_size = bundle_cache_size
        self._cache_lock = make_lock("M1QueryEngine._cache_lock")
        self._bundle_cache: "OrderedDict[str, List[Event]]" = OrderedDict()

    # -- index metadata ---------------------------------------------------

    def indexing_runs(self) -> List[IndexingRun]:
        """All recorded indexing runs, oldest first."""
        raw = self._ledger.get_state(M1IndexChaincode.META_KEY) or []
        return [IndexingRun.from_value(item) for item in raw]

    def indexed_until(self) -> int:
        """Largest timestamp covered by any indexing run (0 when unindexed)."""
        runs = self.indexing_runs()
        return max((run.t2 for run in runs), default=0)

    def directory_intervals(self, key: str) -> List[TimeInterval]:
        """The per-key interval directory (planner-based runs only)."""
        raw = self._ledger.get_state(directory_key(key)) or []
        return [TimeInterval(start, end) for start, end in raw]

    # -- queries -------------------------------------------------------------

    def list_keys(self, prefix: str) -> List[str]:
        """Base entity keys (M1 leaves original state-db entries intact)."""
        return [
            key
            for key, _ in self._ledger.get_state_by_range(prefix, prefix + PREFIX_END)
            if not is_interval_key(key)
        ]

    def fetch_events(self, key: str, window: TimeInterval) -> List[Event]:
        """Events of ``key`` in ``window`` from index bundles.

        One GHFK per overlapping index interval; each reads exactly one
        block (the bundle write), never the deletion marker's block.
        Raises :class:`TemporalQueryError` if the window extends past the
        indexed range -- unindexed events are invisible to Model M1.
        """
        if window.end > self.indexed_until():
            raise TemporalQueryError(
                f"window {window} extends beyond the indexed range "
                f"(indexed until {self.indexed_until()}); run the M1 indexer first"
            )
        with self._metrics.timed(metric_names.GHFK_SECONDS):
            events: List[Event] = []
            for interval in self._overlapping_intervals(key, window):
                events.extend(self._read_bundle(key, interval, window))
        events.sort()
        return events

    def _overlapping_intervals(
        self, key: str, window: TimeInterval
    ) -> Iterator[TimeInterval]:
        """Candidate index intervals ``O(Θ(k), τ)`` across all runs.

        Fixed-length runs yield u-aligned intervals clipped to the run's
        range -- exactly what the indexer wrote, recomputed with no ledger
        access.  Directory runs consult the key's on-ledger directory.
        """
        directory: List[TimeInterval] | None = None
        for run in self.indexing_runs():
            clipped = run.window.intersection(window)
            if clipped is None:
                continue
            if run.scheme == SCHEME_FIXED:
                scheme = FixedIntervalScheme(run.u)
                for interval in scheme.iter_intervals_overlapping(clipped):
                    bounded = interval.intersection(run.window)
                    if bounded is not None:
                        yield bounded
            else:
                if directory is None:
                    directory = self.directory_intervals(key)
                for interval in directory:
                    if (
                        interval.start >= run.t1
                        and interval.end <= run.t2
                        and interval.overlaps(window)
                    ):
                        yield interval

    def _read_bundle(
        self, key: str, interval: TimeInterval, window: TimeInterval
    ) -> List[Event]:
        """Read ``EV(key, interval)`` with one GHFK call / one block,
        filtered to the query window."""
        index_key = encode_interval_key(key, interval)
        return [
            event
            for event in self._load_bundle(key, index_key)
            if window.contains(event.time)
        ]

    def _load_bundle(self, key: str, index_key: str) -> List[Event]:
        """The full decoded bundle for ``index_key`` (cached when enabled).

        Bundles are immutable once written, so callers may share the
        returned list but must not mutate it.
        """
        if self._cache_size:
            with self._cache_lock:
                cached = self._bundle_cache.get(index_key)
                if cached is not None:
                    self._bundle_cache.move_to_end(index_key)
                    return cached
        bundle: List[Event] = []
        for entry in self._ledger.get_history_for_key(index_key):
            # The first (oldest) entry is the bundle; stop immediately so
            # the deletion marker's block is never deserialized.
            if entry.is_delete:
                break
            bundle = [Event.from_value(key, value) for value in (entry.value or [])]
            break
        if self._cache_size:
            with self._cache_lock:
                self._bundle_cache[index_key] = bundle
                while len(self._bundle_cache) > self._cache_size:
                    self._bundle_cache.popitem(last=False)
        return bundle
