"""EXPLAIN for temporal queries: predict costs without running them.

The history index already knows where every key's writes live, so the
block-deserialization cost of a fetch can be *predicted exactly* for the
index models (and bounded for TQF) before touching a single block file.
Benchmarks use this to sanity-check measured counters; operators use it
to choose u before committing to an indexing run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.common.errors import TemporalQueryError
from repro.common.metrics import NULL_REGISTRY, MetricsRegistry
from repro.fabric.ledger import Ledger
from repro.temporal.intervals import TimeInterval
from repro.temporal.keys import encode_interval_key
from repro.temporal.m1 import M1QueryEngine
from repro.temporal.m2 import M2QueryEngine


@dataclass
class FetchPlan:
    """Predicted cost of one per-key event fetch."""

    model: str
    key: str
    window: TimeInterval
    #: Index intervals the engine would visit (empty for TQF).
    intervals: List[TimeInterval] = field(default_factory=list)
    #: GHFK calls the engine would issue.
    ghfk_calls: int = 0
    #: Exact block deserializations for m1/m2; an upper bound for tqf
    #: (the history index does not record timestamps, so TQF's early
    #: termination point is unknown without reading blocks).
    blocks: int = 0
    blocks_exact: bool = True

    def render(self) -> str:
        bound = "" if self.blocks_exact else " (upper bound)"
        return (
            f"{self.model} fetch {self.key} over {self.window}: "
            f"{self.ghfk_calls} GHFK calls, {self.blocks} blocks{bound}"
        )


class QueryExplainer:
    """Builds :class:`FetchPlan`s from the history index."""

    def __init__(self, ledger: Ledger, metrics: MetricsRegistry = NULL_REGISTRY) -> None:
        self._ledger = ledger
        self._m1 = M1QueryEngine(ledger, metrics=metrics)
        self._m2 = M2QueryEngine(ledger, metrics=metrics)

    def explain_fetch(self, model: str, key: str, window: TimeInterval) -> FetchPlan:
        """The plan for fetching ``key``'s events in ``window`` on ``model``."""
        if model == "tqf":
            return self._explain_tqf(key, window)
        if model == "m1":
            return self._explain_m1(key, window)
        if model == "m2":
            return self._explain_m2(key, window)
        raise TemporalQueryError(f"unknown model {model!r}")

    def _explain_tqf(self, key: str, window: TimeInterval) -> FetchPlan:
        # One GHFK; it deserializes at most every block holding the key
        # (exactly those up to the window's end, unknowable from the index).
        return FetchPlan(
            model="tqf",
            key=key,
            window=window,
            ghfk_calls=1,
            blocks=self._ledger.history_db.block_count_for_key(key),
            blocks_exact=False,
        )

    def _explain_m1(self, key: str, window: TimeInterval) -> FetchPlan:
        intervals = list(self._m1._overlapping_intervals(key, window))
        # Each non-empty bundle costs exactly the one block holding its
        # write; empty candidates cost a GHFK call but zero blocks.
        blocks = 0
        for interval in intervals:
            locations = self._ledger.history_db.locations_for_key(
                encode_interval_key(key, interval)
            )
            if locations:
                blocks += 1
        return FetchPlan(
            model="m1",
            key=key,
            window=window,
            intervals=intervals,
            ghfk_calls=len(intervals),
            blocks=blocks,
        )

    def _explain_m2(self, key: str, window: TimeInterval) -> FetchPlan:
        intervals = [
            interval
            for interval in self._m2.index_intervals(key)
            if interval.overlaps(window)
        ]
        blocks = 0
        for interval in intervals:
            locations = self._ledger.history_db.locations_for_key(
                encode_interval_key(key, interval)
            )
            blocks += len({block for block, _ in locations})
        # When the window ends mid-interval the engine's early termination
        # may skip that last interval's tail blocks, so the prediction is
        # an upper bound there.
        exact = not intervals or window.end >= intervals[-1].end
        return FetchPlan(
            model="m2",
            key=key,
            window=window,
            intervals=intervals,
            ghfk_calls=len(intervals),
            blocks=blocks,
            blocks_exact=exact,
        )

    def explain_join(
        self, model: str, window: TimeInterval, keys: List[str]
    ) -> List[FetchPlan]:
        """Plans for every key a join over ``window`` would fetch."""
        return [self.explain_fetch(model, key, window) for key in keys]
