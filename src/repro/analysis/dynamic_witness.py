"""Cross-check dynamic race witnesses against static CONC findings.

The static rules (CONC001-004) and the dynamic sanitizer look for the
same class of bug with opposite blind spots: the lint sees every code
path but cannot know which objects are actually shared across threads;
the sanitizer only sees executed interleavings but every report it makes
is a concrete witness.  ``repro lint --dynamic-witness race-report.json``
joins the two:

* a **race** whose witness sites land in a file carrying a CONC finding
  *confirms* that finding (the static suspicion has a runtime witness);
* a race in a file with no CONC finding is **statically invisible** --
  the most valuable kind, since it names a pattern the rules miss;
* a CONC finding with no dynamic witness is **unwitnessed** -- possibly
  a false positive, possibly an interleaving the scenarios never hit.

Exit semantics stay strict: any dynamic race fails the run, witnessed
or not, because a race report is never a false alarm about *behaviour*
(both accesses really happened with no ordering between them).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.analysis.runner import LintResult, run_lint
from repro.sanitizer.report import RaceReport, SanitizerReport


def _race_files(race: RaceReport) -> Tuple[str, ...]:
    """Every project-relative file named by either witness."""
    return tuple({race.first.path, race.second.path})


@dataclass
class BridgeResult:
    """The joined static/dynamic verdict for one report + one lint run."""

    report: SanitizerReport
    lint: LintResult
    #: (finding, confirming race) pairs: static suspicion, runtime proof.
    confirmed: List[Tuple[Finding, RaceReport]] = field(default_factory=list)
    #: CONC findings no race touched (false positive or unexplored path).
    unwitnessed: List[Finding] = field(default_factory=list)
    #: Races in files the static rules found nothing in.
    invisible: List[RaceReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Races always fail; static-only findings keep lint semantics."""
        return self.report.ok and self.lint.ok

    def render_text(self) -> str:
        """Human-readable cross-check: verdict per race and per finding."""
        lines = [
            f"dynamic-witness: {len(self.report.races)} race(s) from "
            f"{self.report.source} (seed={self.report.seed}, "
            f"workers={self.report.workers}) vs "
            f"{len(self._conc_findings())} static CONC finding(s)"
        ]
        for finding, race in self.confirmed:
            lines.append(f"CONFIRMED {finding.render()}")
            lines.append(f"  by {race.kind} race on {race.cell()} "
                         f"({race.second.site()})")
        for race in self.invisible:
            lines.append(f"STATICALLY-INVISIBLE race on {race.cell()}:")
            for part in race.render().splitlines()[1:]:
                lines.append(f"  {part.strip()}")
        for finding in self.unwitnessed:
            lines.append(f"UNWITNESSED {finding.render()}")
        if self.report.lock_order_cycles:
            for cycle in self.report.lock_order_cycles:
                lines.append(
                    "DYNAMIC LOCK-ORDER CYCLE: "
                    + " -> ".join(cycle.get("locks", []))
                )
        lines.append(
            f"verdict: {len(self.confirmed)} confirmed, "
            f"{len(self.invisible)} statically invisible, "
            f"{len(self.unwitnessed)} unwitnessed"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        """Machine-readable cross-check for CI annotation."""
        return json.dumps(
            {
                "version": 1,
                "ok": self.ok,
                "races": len(self.report.races),
                "conc_findings": len(self._conc_findings()),
                "confirmed": [
                    {"finding": finding.to_json(), "race": race.to_json()}
                    for finding, race in self.confirmed
                ],
                "invisible": [race.to_json() for race in self.invisible],
                "unwitnessed": [
                    finding.to_json() for finding in self.unwitnessed
                ],
                "lock_order_cycles": list(self.report.lock_order_cycles),
            },
            indent=2,
        )

    def _conc_findings(self) -> List[Finding]:
        """Every CONC finding the lint produced, baselined or not."""
        return [
            finding
            for finding in (*self.lint.new_findings, *self.lint.baselined)
            if finding.rule_id.startswith("CONC")
        ]


def cross_check(
    report_path: str | Path,
    paths: Sequence[Path],
    root: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
) -> BridgeResult:
    """Load a race report, run the CONC rules, and join the verdicts.

    Matching is per file: a race confirms a finding when either witness
    site lives in the finding's file.  That is deliberately coarse --
    the static finding's line is where the *pattern* is (a lock-free
    method body), the dynamic witness's line is where the *access*
    happened, and the two rarely coincide exactly.
    """
    report = SanitizerReport.load(report_path)
    lint = run_lint(
        list(paths),
        root=root,
        baseline_path=baseline_path,
        select=("CONC",),
        cache_path=None,
    )
    result = BridgeResult(report=report, lint=lint)
    findings = result._conc_findings()
    witnessed: set = set()
    for race in report.races:
        files = set(_race_files(race))
        matched = False
        for index, finding in enumerate(findings):
            if finding.path in files:
                result.confirmed.append((finding, race))
                witnessed.add(index)
                matched = True
        if not matched:
            result.invisible.append(race)
    result.unwitnessed = [
        finding
        for index, finding in enumerate(findings)
        if index not in witnessed
    ]
    return result
