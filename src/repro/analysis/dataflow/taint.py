"""Forward taint analysis over the project call graph.

The engine answers one question precisely: *can a nondeterministic value
reach a ledger write, through any chain of helper calls?*  It works in
two layers:

1. **Per-function summaries.**  Each function body is abstractly
   interpreted with an environment mapping local names to *labels*:
   :class:`SourceLabel` (this value derives from a nondeterministic
   source -- wall clock, randomness, environment, uuid, set iteration
   order) or :class:`ParamLabel` (this value derives from parameter
   *i*).  Labels propagate through assignments, augmented assignments,
   tuple unpacking, containers, comprehensions, f-strings, arithmetic,
   ``for`` targets and ``with`` bindings.  A call to an analyzed
   function substitutes that callee's summary; a call to anything else
   conservatively unions its argument labels (so laundering through
   ``str()`` or ``json.dumps`` does not clear taint).  ``sorted(...)``
   is the one sanitizer: it erases set-iteration labels, matching the
   fix CHAIN001 recommends.

2. **Fixpoint.**  Summaries reference callee summaries, so the whole
   table is iterated until stable.  Call chains recorded on labels and
   hits never repeat a function name, which bounds the label universe
   and guarantees termination even on recursive code.

A summary exposes ``sink_hits``: every way a source reaches a
``put_state``-family sink *from this function* -- directly, through
tainted arguments, or inside a transitively-called helper.  DET002 just
reads the hits off chaincode methods.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.dataflow.callgraph import CallGraph
from repro.analysis.dataflow.symbols import (
    FunctionInfo,
    ModuleInfo,
    SymbolTable,
    dotted_path,
)
from repro.analysis.nondeterminism import (
    WRITE_METHODS as _WRITE_METHODS,
    is_set_expression as _is_set_expression,
    set_typed_names as _set_typed_names,
    source_kind,
)

#: Functions whose loop-bearing output order is deterministic again.
_SET_ORDER_KIND = "set iteration order"


@dataclass(frozen=True)
class SourceLabel:
    """A value derived from a nondeterministic source."""

    kind: str  #: human description, e.g. ``"time.time"``
    path: str  #: file the source expression lives in
    line: int
    #: Helper functions the value was returned through, innermost first.
    chain: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ParamLabel:
    """A value derived from the enclosing function's parameter ``index``."""

    index: int


Label = Union[SourceLabel, ParamLabel]


@dataclass(frozen=True)
class ParamSink:
    """Parameter reaches a ``sink`` call, possibly through ``via`` calls."""

    sink: str
    via: Tuple[str, ...] = ()


@dataclass(frozen=True)
class SinkHit:
    """A source value reaching a ledger-write sink.

    ``line`` is in the *summarized* function: the sink call itself, or
    the call that hands the tainted value (or the whole violation) down
    to ``via``.
    """

    line: int
    sink: str
    source: SourceLabel
    via: Tuple[str, ...] = ()


@dataclass
class FunctionSummary:
    """Taint behaviour of one function, callee summaries folded in."""

    qualname: str
    #: Source labels the return value can carry.
    tainted_returns: Set[SourceLabel] = field(default_factory=set)
    #: Parameter indices that can flow to the return value.
    params_to_return: Set[int] = field(default_factory=set)
    #: Parameter index -> sinks it can reach (here or in callees).
    params_to_sink: Dict[int, Set[ParamSink]] = field(default_factory=dict)
    #: Source-to-sink flows visible from this function.
    sink_hits: Set[SinkHit] = field(default_factory=set)

    def snapshot(self) -> Tuple[int, int, int, int]:
        """Monotone size vector used to detect fixpoint convergence."""
        return (
            len(self.tainted_returns),
            len(self.params_to_return),
            sum(len(v) for v in self.params_to_sink.values()),
            len(self.sink_hits),
        )


class TaintAnalysis:
    """Fixpoint taint summaries for every function in the table."""

    def __init__(self, table: SymbolTable, graph: CallGraph) -> None:
        self.table = table
        self.graph = graph
        self.summaries: Dict[str, FunctionSummary] = {}

    @staticmethod
    def build(table: SymbolTable, graph: CallGraph) -> "TaintAnalysis":
        analysis = TaintAnalysis(table, graph)
        for qualname in table.functions:
            analysis.summaries[qualname] = FunctionSummary(qualname)
        # Chains never repeat a function name, so the label universe is
        # finite and this loop terminates; the bound is a backstop.
        for _ in range(max(4, len(table.functions))):
            changed = False
            for info in table.functions.values():
                before = analysis.summaries[info.qualname].snapshot()
                analysis.summaries[info.qualname] = _summarize(analysis, info)
                if analysis.summaries[info.qualname].snapshot() != before:
                    changed = True
            if not changed:
                break
        return analysis

    def summary(self, qualname: str) -> FunctionSummary:
        """The summary for ``qualname`` (empty for unanalyzed functions)."""
        return self.summaries.get(qualname, FunctionSummary(qualname))


def _through(labels: Set[Label], hop: str) -> Set[Label]:
    """Extend source chains by ``hop`` (no-repeat, so chains stay finite)."""
    out: Set[Label] = set()
    for label in labels:
        if isinstance(label, SourceLabel) and hop not in label.chain:
            out.add(replace(label, chain=label.chain + (hop,)))
        else:
            out.add(label)
    return out


def _via(prefix: str, via: Tuple[str, ...]) -> Tuple[str, ...]:
    return via if prefix in via else (prefix,) + via


class _FunctionAnalyzer:
    """One abstract-interpretation pass over a function body."""

    def __init__(self, analysis: TaintAnalysis, info: FunctionInfo) -> None:
        self.analysis = analysis
        self.info = info
        self.module: ModuleInfo = analysis.table.modules[info.module]
        self.summary = FunctionSummary(info.qualname)
        self.env: Dict[str, Set[Label]] = {}
        self.params: Dict[str, int] = {
            name: index for index, name in enumerate(info.param_names)
        }
        self.set_names: Set[str] = _set_typed_names(info.node)
        self.local_types = _local_types(analysis, info)

    def run(self) -> FunctionSummary:
        body: Sequence[ast.stmt] = self.info.node.body  # type: ignore[attr-defined]
        # Two extra passes let taint introduced late in a loop body flow
        # back to reads earlier in it; the env only grows, so this is a
        # (cheap, bounded) fixpoint.
        for _ in range(3):
            before = {name: len(labels) for name, labels in self.env.items()}
            for statement in body:
                self._stmt(statement)
            after = {name: len(labels) for name, labels in self.env.items()}
            if before == after:
                break
        return self.summary

    # -- statements --------------------------------------------------------

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            labels = self._eval(node.value)
            for target in node.targets:
                self._bind(target, labels)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._bind(node.target, self._eval(node.value))
        elif isinstance(node, ast.AugAssign):
            labels = self._eval(node.value) | self._eval(node.target)
            self._bind(node.target, labels)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self._record_return(self._eval(node.value))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            labels = self._eval(node.iter)
            if _is_set_expression(node.iter, self.set_names):
                labels = labels | {
                    SourceLabel(
                        kind=_SET_ORDER_KIND,
                        path=self.info.source.relpath,
                        line=node.iter.lineno,
                    )
                }
            self._bind(node.target, labels)
            for child in (*node.body, *node.orelse):
                self._stmt(child)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                labels = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, labels)
            for child in node.body:
                self._stmt(child)
        elif isinstance(node, (ast.If, ast.While)):
            self._eval(node.test)
            for child in (*node.body, *node.orelse):
                self._stmt(child)
        elif isinstance(node, ast.Try):
            for child in (*node.body, *node.orelse, *node.finalbody):
                self._stmt(child)
            for handler in node.handlers:
                for child in handler.body:
                    self._stmt(child)
        elif isinstance(node, (ast.Expr, ast.Assert, ast.Raise, ast.Delete)):
            for value in ast.iter_child_nodes(node):
                if isinstance(value, ast.expr):
                    self._eval(value)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are summarized on their own
        else:
            for value in ast.iter_child_nodes(node):
                if isinstance(value, ast.expr):
                    self._eval(value)
                elif isinstance(value, ast.stmt):
                    self._stmt(value)

    def _bind(self, target: ast.expr, labels: Set[Label]) -> None:
        if isinstance(target, ast.Name):
            if labels:
                self.env[target.id] = self.env.get(target.id, set()) | labels
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, labels)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, labels)
        # attribute / subscript targets are not tracked (field-insensitive)

    def _record_return(self, labels: Set[Label]) -> None:
        for label in labels:
            if isinstance(label, SourceLabel):
                self.summary.tainted_returns.add(label)
            else:
                self.summary.params_to_return.add(label.index)

    # -- expressions -------------------------------------------------------

    def _eval(self, node: ast.expr) -> Set[Label]:
        if isinstance(node, ast.Name):
            labels: Set[Label] = set(self.env.get(node.id, ()))
            if node.id in self.params:
                labels.add(ParamLabel(self.params[node.id]))
            source = self._name_source(node)
            if source is not None:
                labels.add(source)
            return labels
        if isinstance(node, ast.Attribute):
            dotted = dotted_path(node, self.module.aliases)
            kind = source_kind(dotted) if dotted is not None else None
            if kind is not None:
                return {
                    SourceLabel(
                        kind=kind, path=self.info.source.relpath, line=node.lineno
                    )
                }
            return self._eval(node.value)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            return self._eval_comprehension(node)
        if isinstance(node, ast.Lambda):
            return set()
        # containers, arithmetic, comparisons, f-strings, subscripts,
        # conditionals, starred: the union of the parts.
        labels = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                labels |= self._eval(child)
        return labels

    def _eval_comprehension(self, node: ast.expr) -> Set[Label]:
        """Bind each generator target to its iterable's labels, then take
        the union of everything the comprehension computes."""
        labels: Set[Label] = set()
        for generator in node.generators:  # type: ignore[attr-defined]
            iter_labels = self._eval(generator.iter)
            if _is_set_expression(generator.iter, self.set_names):
                iter_labels = iter_labels | {
                    SourceLabel(
                        kind=_SET_ORDER_KIND,
                        path=self.info.source.relpath,
                        line=generator.iter.lineno,
                    )
                }
            self._bind(generator.target, iter_labels)
            labels |= iter_labels
            for condition in generator.ifs:
                self._eval(condition)
        if isinstance(node, ast.DictComp):
            labels |= self._eval(node.key) | self._eval(node.value)
        else:
            labels |= self._eval(node.elt)  # type: ignore[attr-defined]
        return labels

    def _name_source(self, node: ast.Name) -> Optional[SourceLabel]:
        """A bare from-import of a banned API (``from time import time``)."""
        if isinstance(getattr(node, "ctx", None), ast.Store):
            return None
        dotted = self.module.aliases.get(node.id)
        if dotted is None or "." not in dotted:
            return None
        kind = source_kind(dotted)
        if kind is None:
            return None
        return SourceLabel(kind=kind, path=self.info.source.relpath, line=node.lineno)

    def _eval_call(self, node: ast.Call) -> Set[Label]:
        arg_labels = self._call_arg_labels(node)
        all_args: Set[Label] = set()
        for labels in arg_labels.values():
            all_args |= labels

        # The call itself may be a source: time.time(), uuid.uuid4(), ...
        func = node.func
        dotted: Optional[str] = None
        if isinstance(func, ast.Attribute):
            dotted = dotted_path(func, self.module.aliases)
        elif isinstance(func, ast.Name):
            alias = self.module.aliases.get(func.id)
            dotted = alias if alias is not None and "." in alias else None
        kind = source_kind(dotted) if dotted is not None else None
        if kind is not None:
            return all_args | {
                SourceLabel(kind=kind, path=self.info.source.relpath, line=node.lineno)
            }

        # Direct sink: stub.put_state(key, tainted).
        if isinstance(func, ast.Attribute) and func.attr in _WRITE_METHODS:
            self._record_sink(node.lineno, func.attr, all_args, via=())

        callee = self._resolve_callee(node)
        if callee is None:
            if isinstance(func, ast.Name) and func.id == "sorted":
                # sorted() is the sanctioned fix for set-order findings.
                return {
                    label
                    for label in all_args
                    if not (
                        isinstance(label, SourceLabel)
                        and label.kind == _SET_ORDER_KIND
                    )
                }
            return all_args

        callee_summary = self.analysis.summary(callee.qualname)
        hop = callee.name

        # Arguments that the callee forwards into a sink.
        for position, labels in arg_labels.items():
            for param_sink in callee_summary.params_to_sink.get(position, ()):
                self._record_sink(
                    node.lineno,
                    param_sink.sink,
                    labels,
                    via=_via(hop, param_sink.via),
                )
        # Violations living entirely inside the callee bubble up so a
        # chaincode method "sees" a helper that both reads a clock and
        # writes state.
        for hit in callee_summary.sink_hits:
            self.summary.sink_hits.add(
                SinkHit(
                    line=node.lineno,
                    sink=hit.sink,
                    source=hit.source,
                    via=_via(hop, hit.via),
                )
            )

        result: Set[Label] = set()
        for label in callee_summary.tainted_returns:
            result |= _through({label}, hop)
        for position in callee_summary.params_to_return:
            result |= arg_labels.get(position, set())
        return result

    def _call_arg_labels(self, node: ast.Call) -> Dict[int, Set[Label]]:
        """Labels per callee-parameter position (starred args hit all)."""
        labels: Dict[int, Set[Label]] = {}
        starred: Set[Label] = set()
        position = 0
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                starred |= self._eval(arg.value)
                continue
            labels[position] = self._eval(arg)
            position += 1
        callee = self._resolve_callee(node)
        names = callee.param_names if callee is not None else []
        for keyword in node.keywords:
            value = self._eval(keyword.value)
            if keyword.arg is None:  # **kwargs
                starred |= value
            elif keyword.arg in names:
                labels[names.index(keyword.arg)] = (
                    labels.get(names.index(keyword.arg), set()) | value
                )
            else:
                starred |= value
        if starred:
            span = max(len(names), position, max(labels, default=-1) + 1)
            for index in range(span):
                labels[index] = labels.get(index, set()) | starred
        return labels

    def _resolve_callee(self, node: ast.Call) -> Optional[FunctionInfo]:
        qualname = self.analysis.graph.resolve_call(
            self.info, node, self.local_types
        )
        if qualname is None:
            return None
        return self.analysis.table.functions.get(qualname)

    def _record_sink(
        self, line: int, sink: str, labels: Set[Label], via: Tuple[str, ...]
    ) -> None:
        for label in labels:
            if isinstance(label, SourceLabel):
                self.summary.sink_hits.add(
                    SinkHit(line=line, sink=sink, source=label, via=via)
                )
            else:
                self.summary.params_to_sink.setdefault(label.index, set()).add(
                    ParamSink(sink=sink, via=via)
                )


def _local_types(analysis: TaintAnalysis, info: FunctionInfo) -> Dict[str, str]:
    from repro.analysis.dataflow.callgraph import _local_constructions

    return _local_constructions(info, analysis.table)


def _summarize(analysis: TaintAnalysis, info: FunctionInfo) -> FunctionSummary:
    return _FunctionAnalyzer(analysis, info).run()
