"""The project-wide symbol table dataflow rules resolve names against.

One :class:`SymbolTable` indexes every analyzed file: modules by dotted
name, top-level functions, classes with their methods, and -- because
call resolution needs it -- three kinds of type information:

* class bases resolved *across files* through the import graph, so a
  ``Chaincode`` subclass two modules away from the base is still
  recognized;
* ``__init__`` attribute types inferred from parameter annotations
  (``self._gateway = gateway`` where ``gateway: Gateway``), direct
  construction (``self.ledger = Ledger(...)``) and annotated assignments;
* per-function local construction (``engine = M1QueryEngine(...)``).

Qualified names are dotted module paths (``repro.temporal.m1.M1Indexer.run``);
for trees not rooted at ``src/`` the path relative to the analysis root is
used, which keeps fixture projects self-consistent.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.project import Project, SourceFile


def module_name_for(relpath: str) -> str:
    """Dotted module name of an analyzed file (``src/`` stripped)."""
    parts = relpath[: -len(".py")].split("/") if relpath.endswith(".py") else relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


def import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the dotted path they import, module-wide.

    ``import time as t``        -> ``{"t": "time"}``
    ``from random import seed`` -> ``{"seed": "random.seed"}``
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def dotted_path(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an attribute chain to a dotted path rooted at an import."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


@dataclass
class FunctionInfo:
    """One analyzed function or method."""

    qualname: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    source: SourceFile
    module: str
    class_qualname: Optional[str] = None

    @property
    def param_names(self) -> List[str]:
        """Positional-ish parameter names, ``self``/``cls`` excluded."""
        args = self.node.args  # type: ignore[attr-defined]
        names = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
        if self.class_qualname is not None and names and names[0] in ("self", "cls"):
            names = names[1:]
        return names

    @property
    def scope_name(self) -> str:
        """Display scope: the owning class's bare name, or the module."""
        if self.class_qualname is not None:
            return self.class_qualname.rsplit(".", 1)[-1]
        return self.module


@dataclass
class ClassInfo:
    """One analyzed class, with project-resolved bases and attr types."""

    qualname: str
    name: str
    node: ast.ClassDef
    source: SourceFile
    module: str
    #: Base names as written, resolved to dotted paths where importable.
    base_refs: List[str] = field(default_factory=list)
    #: Qualnames of bases that are classes in this project.
    base_qualnames: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` -> class qualname, inferred from ``__init__``.
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: ``self.<attr>`` names bound to a ``threading`` lock in ``__init__``.
    lock_attrs: Set[str] = field(default_factory=set)
    #: Lock attr -> ``threading`` factory name (``Lock``, ``RLock``, ...),
    #: so lockset rules can tell re-entrant locks from plain ones.
    lock_kinds: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One analyzed module and its import environment."""

    name: str
    source: SourceFile
    aliases: Dict[str, str]
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)


_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

#: The project's concurrency seam (``repro.common.locks``): lock-carrying
#: classes construct their primitives through these factory functions so
#: the dynamic sanitizer can trace them.  The static model maps each back
#: to the ``threading`` primitive it hands out, keeping CONC001-004's
#: view of lock-carrying classes identical to the pre-seam tree.
_SEAM_FACTORIES = {
    "repro.common.locks.make_lock": "Lock",
    "repro.common.locks.make_rlock": "RLock",
    "repro.common.locks.make_condition": "Condition",
}


class SymbolTable:
    """Modules, functions and classes of one project, fully indexed."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    # -- construction -----------------------------------------------------

    @staticmethod
    def build(project: Project) -> "SymbolTable":
        table = SymbolTable()
        for source in project.files:
            if source.tree is None:
                continue
            table._index_module(source)
        table._resolve_bases()
        for info in table.classes.values():
            table._infer_attr_types(info)
        return table

    def _index_module(self, source: SourceFile) -> None:
        module = ModuleInfo(
            name=module_name_for(source.relpath),
            source=source,
            aliases=import_aliases(source.tree),  # type: ignore[arg-type]
        )
        self.modules[module.name] = module
        for node in source.tree.body:  # type: ignore[union-attr]
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{module.name}.{node.name}",
                    name=node.name,
                    node=node,
                    source=source,
                    module=module.name,
                )
                module.functions[node.name] = info
                self.functions[info.qualname] = info
            elif isinstance(node, ast.ClassDef):
                self._index_class(module, node)

    def _index_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{module.name}.{node.name}"
        refs: List[str] = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                refs.append(module.aliases.get(base.id, f"{module.name}.{base.id}"))
            elif isinstance(base, ast.Attribute):
                dotted = dotted_path(base, module.aliases)
                refs.append(dotted if dotted is not None else base.attr)
        info = ClassInfo(
            qualname=qualname,
            name=node.name,
            node=node,
            source=module.source,
            module=module.name,
            base_refs=refs,
        )
        module.classes[node.name] = info
        self.classes[qualname] = info
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = FunctionInfo(
                    qualname=f"{qualname}.{child.name}",
                    name=child.name,
                    node=child,
                    source=module.source,
                    module=module.name,
                    class_qualname=qualname,
                )
                info.methods[child.name] = method
                self.functions[method.qualname] = method

    def _resolve_bases(self) -> None:
        for info in self.classes.values():
            for ref in info.base_refs:
                resolved = self.resolve_class(ref)
                if resolved is not None:
                    info.base_qualnames.append(resolved.qualname)

    # -- attribute-type inference ----------------------------------------

    def _infer_attr_types(self, info: ClassInfo) -> None:
        init = info.methods.get("__init__")
        statements: List[ast.stmt] = []
        if init is not None:
            statements.extend(init.node.body)  # type: ignore[attr-defined]
        statements.extend(info.node.body)
        annotations: Dict[str, str] = {}
        if init is not None:
            module = self.modules[info.module]
            args = init.node.args  # type: ignore[attr-defined]
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                resolved = self._annotation_class(arg.annotation, module)
                if resolved is not None:
                    annotations[arg.arg] = resolved
        for statement in statements:
            for node in ast.walk(statement):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                    if isinstance(target, ast.Attribute):
                        module = self.modules[info.module]
                        annotated = self._annotation_class(node.annotation, module)
                        if annotated is not None and self._is_self_attr(target):
                            info.attr_types[target.attr] = annotated
                if (
                    target is None
                    or not isinstance(target, ast.Attribute)
                    or not self._is_self_attr(target)
                ):
                    continue
                self._record_attr(info, target.attr, value, annotations)

    def _record_attr(
        self,
        info: ClassInfo,
        attr: str,
        value: Optional[ast.expr],
        annotations: Dict[str, str],
    ) -> None:
        if isinstance(value, ast.Name) and value.id in annotations:
            info.attr_types[attr] = annotations[value.id]
        elif isinstance(value, ast.Call):
            module = self.modules[info.module]
            callee = self.constructed_class(value, module)
            if callee is not None:
                info.attr_types[attr] = callee.qualname
            factory = self._lock_factory_name(value, module)
            if factory is not None:
                info.lock_attrs.add(attr)
                info.lock_kinds[attr] = factory

    @staticmethod
    def _is_self_attr(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    def _annotation_class(
        self, annotation: Optional[ast.expr], module: ModuleInfo
    ) -> Optional[str]:
        """The project-class qualname an annotation names, if any.

        Unwraps ``Optional[X]`` / ``X | None`` / string annotations.
        """
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(annotation, ast.Subscript):
            annotation = annotation.slice
        if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
            for side in (annotation.left, annotation.right):
                resolved = self._annotation_class(side, module)
                if resolved is not None:
                    return resolved
            return None
        ref: Optional[str] = None
        if isinstance(annotation, ast.Name):
            ref = module.aliases.get(annotation.id, f"{module.name}.{annotation.id}")
        elif isinstance(annotation, ast.Attribute):
            ref = dotted_path(annotation, module.aliases)
        if ref is None:
            return None
        resolved_class = self.resolve_class(ref)
        return resolved_class.qualname if resolved_class is not None else None

    def constructed_class(
        self, call: ast.Call, module: ModuleInfo
    ) -> Optional[ClassInfo]:
        """The project class a ``Name(...)`` / ``mod.Name(...)`` call builds."""
        ref: Optional[str] = None
        if isinstance(call.func, ast.Name):
            ref = module.aliases.get(call.func.id, f"{module.name}.{call.func.id}")
        elif isinstance(call.func, ast.Attribute):
            ref = dotted_path(call.func, module.aliases)
        return self.resolve_class(ref) if ref is not None else None

    @staticmethod
    def _lock_factory_name(call: ast.Call, module: ModuleInfo) -> Optional[str]:
        """The ``threading`` synchronization-primitive factory ``call``
        invokes (directly or through a ``from threading import`` alias),
        or ``None`` when it is not one."""
        func = call.func
        if isinstance(func, ast.Attribute):
            dotted = dotted_path(func, module.aliases)
            if dotted is None:
                return None
            if dotted.startswith("threading.") and func.attr in _LOCK_FACTORIES:
                return func.attr
            return _SEAM_FACTORIES.get(dotted)
        if isinstance(func, ast.Name):
            dotted = module.aliases.get(func.id)
            if dotted is None:
                return None
            if dotted.startswith("threading."):
                name = dotted.rsplit(".", 1)[-1]
                if name in _LOCK_FACTORIES:
                    return name
            return _SEAM_FACTORIES.get(dotted)
        return None

    @classmethod
    def _is_lock_factory(cls, call: ast.Call, module: ModuleInfo) -> bool:
        """Whether ``call`` constructs a ``threading`` synchronization
        primitive (directly or through a ``from threading import`` alias)."""
        return cls._lock_factory_name(call, module) is not None

    # -- lookups ----------------------------------------------------------

    def resolve_class(self, ref: str) -> Optional[ClassInfo]:
        """The :class:`ClassInfo` a dotted reference names, if analyzed."""
        direct = self.classes.get(ref)
        if direct is not None:
            return direct
        # ``from repro.temporal import m1`` then ``m1.M1Indexer`` resolves
        # through the module segment.
        if "." in ref:
            module_part, _, member = ref.rpartition(".")
            module = self.modules.get(module_part)
            if module is not None:
                return module.classes.get(member)
        return None

    def resolve_function(self, ref: str) -> Optional[FunctionInfo]:
        """The :class:`FunctionInfo` a dotted reference names, if analyzed."""
        direct = self.functions.get(ref)
        if direct is not None:
            return direct
        if "." in ref:
            module_part, _, member = ref.rpartition(".")
            module = self.modules.get(module_part)
            if module is not None:
                return module.functions.get(member)
        return None

    def method_on(self, class_qualname: str, name: str) -> Optional[FunctionInfo]:
        """Method lookup with base-class (cross-file) resolution."""
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            stack.extend(info.base_qualnames)
        return None

    def mro_names(self, class_qualname: str) -> Set[str]:
        """Bare names of every (project-visible) ancestor, self included.

        Unresolvable bases contribute their written name, so a class whose
        base lives outside the analyzed tree still reports that name --
        how ``Chaincode`` subclasses are recognized even when only part of
        the tree is under analysis.
        """
        names: Set[str] = set()
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                names.add(current.rsplit(".", 1)[-1])
                continue
            names.add(info.name)
            stack.extend(info.base_qualnames)
            for ref in info.base_refs:
                if self.resolve_class(ref) is None:
                    names.add(ref.rsplit(".", 1)[-1])
        return names

    def chaincode_classes(self) -> List[ClassInfo]:
        """Every class that (transitively, across files) derives from a
        base named ``Chaincode``."""
        return [
            info
            for qualname, info in sorted(self.classes.items())
            if info.name != "Chaincode" and "Chaincode" in self.mro_names(qualname)
        ]

    def owning_function(
        self, source: SourceFile, node: ast.AST
    ) -> Optional[FunctionInfo]:
        """The indexed function whose body contains ``node``, if any."""
        for info in self.functions.values():
            if info.source is source and any(
                candidate is node for candidate in ast.walk(info.node)
            ):
                return info
        return None
