"""Project-wide dataflow analysis: symbols, call graph, taint, caching.

PR 2's rules are per-file and syntactic; this package gives rules a
*project* view so they can reason across function and module boundaries:

* :mod:`~repro.analysis.dataflow.symbols` -- a symbol table over every
  analyzed file: modules, top-level functions, classes (with base-class
  resolution across files), methods, inferred attribute types;
* :mod:`~repro.analysis.dataflow.callgraph` -- the call graph those
  symbols induce, with DOT / JSON export for the ``repro lint
  --call-graph`` CLI;
* :mod:`~repro.analysis.dataflow.taint` -- a forward taint engine:
  configurable sources propagate through assignments, calls, returns and
  containers to sinks, summarized per function and joined to a fixpoint
  so laundering a value through any helper chain is still visible;
* :mod:`~repro.analysis.dataflow.cache` -- an mtime+SHA keyed result
  cache so repeated full-tree runs cost one stat per file.

Everything here is derived from the :class:`~repro.analysis.project.Project`
the runner already builds -- rules never touch the filesystem.  The
analysis objects are memoized per project (see :func:`dataflow_for`), so
the four rule families that share them pay for one construction.
"""

from __future__ import annotations

from repro.analysis.dataflow.callgraph import CallGraph
from repro.analysis.dataflow.symbols import SymbolTable
from repro.analysis.dataflow.taint import TaintAnalysis
from repro.analysis.project import Project

__all__ = ["CallGraph", "SymbolTable", "TaintAnalysis", "dataflow_for"]


def dataflow_for(project: Project) -> TaintAnalysis:
    """The memoized :class:`TaintAnalysis` (symbols + call graph + taint
    summaries) for ``project``; built on first use, shared by every rule."""
    cached = getattr(project, "_dataflow_analysis", None)
    if cached is None:
        table = SymbolTable.build(project)
        graph = CallGraph.build(table)
        cached = TaintAnalysis.build(table, graph)
        project._dataflow_analysis = cached  # type: ignore[attr-defined]
    return cached
