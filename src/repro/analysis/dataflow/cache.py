"""mtime+SHA keyed result cache for whole lint runs.

The interprocedural rules make every run a *project* analysis, so a
per-file cache would be unsound: an edit to ``helpers.py`` can change
findings in ``chaincodes.py``.  Instead the whole run is cached under a
fingerprint of everything that can influence it:

* every analyzed file's content hash -- revalidated by ``mtime_ns`` +
  size first, so an unchanged tree costs one ``stat()`` per file and
  zero reads;
* the rule selection and the baseline file's hash;
* a schema version, bumped when rules or the result format change.

On a hit the previous :class:`~repro.analysis.runner.LintResult` is
rebuilt from JSON (minus the parsed ``project``, which cached consumers
don't need); on a miss the caller runs the analysis and stores the
fresh result with the stamps already computed for the lookup.  The
cache file is rewritten atomically and an unreadable or stale-schema
cache is simply ignored.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding

#: Bump to invalidate every existing cache (rule or format changes).
#: 2: the CFG/lockset layer landed (CONC002-004, TEMP001 rewrite) --
#: results from schema-1 runs no longer reflect the rule set.
#: 3: results gained ``dropped_baseline`` (pruned stale entries).
#: 5: the symbolic scheme verifier landed (TEMP002-004) -- schema-4
#: results predate three rule families and must not be replayed.
CACHE_SCHEMA = 5


@dataclass(frozen=True)
class FileStamp:
    """One file's identity for cache validation."""

    relpath: str
    mtime_ns: int
    size: int
    sha256: str

    def to_json(self) -> Dict[str, Any]:
        """JSON-object form stored in the cache file."""
        return {
            "relpath": self.relpath,
            "mtime_ns": self.mtime_ns,
            "size": self.size,
            "sha256": self.sha256,
        }


def _relpath_for(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def compute_stamps(
    files: Sequence[Path],
    root: Path,
    previous: Optional[Dict[str, Dict[str, Any]]] = None,
) -> List[FileStamp]:
    """Stamps for ``files``, reusing previous hashes when mtime+size match."""
    previous = previous or {}
    stamps: List[FileStamp] = []
    for path in files:
        relpath = _relpath_for(path, root)
        stat = path.stat()
        cached = previous.get(relpath)
        if (
            cached is not None
            and cached.get("mtime_ns") == stat.st_mtime_ns
            and cached.get("size") == stat.st_size
        ):
            sha = str(cached["sha256"])
        else:
            sha = hashlib.sha256(path.read_bytes()).hexdigest()
        stamps.append(
            FileStamp(
                relpath=relpath,
                mtime_ns=stat.st_mtime_ns,
                size=stat.st_size,
                sha256=sha,
            )
        )
    stamps.sort(key=lambda stamp: stamp.relpath)
    return stamps


def baseline_digest(baseline_path: Optional[Path]) -> str:
    """Hash of the baseline file contents ("absent" when there is none)."""
    if baseline_path is None or not baseline_path.exists():
        return "absent"
    return hashlib.sha256(baseline_path.read_bytes()).hexdigest()


def run_fingerprint(
    stamps: Sequence[FileStamp],
    select: Sequence[str],
    baseline: str,
    witness: str = "absent",
) -> str:
    """One hash covering everything that can change the run's outcome.

    ``witness`` is the digest of the dynamic footprint-witness report
    (``footprint-report.json``): KEY003's findings are a function of
    that file's bytes, so a cached result must not outlive it.
    """
    digest = hashlib.sha256()
    digest.update(f"schema={CACHE_SCHEMA}\n".encode())
    digest.update(f"select={','.join(sorted(select))}\n".encode())
    digest.update(f"baseline={baseline}\n".encode())
    digest.update(f"witness={witness}\n".encode())
    for stamp in stamps:
        digest.update(f"{stamp.relpath}={stamp.sha256}\n".encode())
    return digest.hexdigest()


@dataclass
class CachedResult:
    """The replayable portion of a :class:`LintResult`."""

    new_findings: List[Finding]
    baselined: List[Finding]
    stale_baseline: List[Finding]
    dropped_baseline: List[Tuple[Finding, str]]
    suppressed: List[Finding]
    files_checked: int


class LintCache:
    """The on-disk cache around one run (load, lookup, store)."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self._data: Dict[str, Any] = {}
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            raw = {}
        if isinstance(raw, dict) and raw.get("schema") == CACHE_SCHEMA:
            self._data = raw

    @property
    def previous_stamps(self) -> Dict[str, Dict[str, Any]]:
        """relpath -> stamp fields from the previous run (mtime reuse)."""
        files = self._data.get("files")
        return files if isinstance(files, dict) else {}

    def lookup(self, fingerprint: str) -> Optional[CachedResult]:
        """The previous result if the fingerprint still matches."""
        if self._data.get("fingerprint") != fingerprint:
            return None
        result = self._data.get("result")
        if not isinstance(result, dict):
            return None
        try:
            return CachedResult(
                new_findings=_findings(result["new_findings"]),
                baselined=_findings(result["baselined"]),
                stale_baseline=_findings(result["stale_baseline"]),
                dropped_baseline=[
                    (Finding.from_json(entry), str(entry.get("reason", "")))
                    for entry in result.get("dropped_baseline", [])
                ],
                suppressed=_findings(result["suppressed"]),
                files_checked=int(result["files_checked"]),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def store(
        self,
        fingerprint: str,
        stamps: Sequence[FileStamp],
        result: CachedResult,
    ) -> None:
        """Atomically persist this run (best effort: failures are silent
        -- a missing cache only costs the next run a cold start)."""
        payload = {
            "schema": CACHE_SCHEMA,
            "fingerprint": fingerprint,
            "files": {stamp.relpath: stamp.to_json() for stamp in stamps},
            "result": {
                "new_findings": [f.to_json() for f in result.new_findings],
                "baselined": [f.to_json() for f in result.baselined],
                "stale_baseline": [f.to_json() for f in result.stale_baseline],
                "dropped_baseline": [
                    {**entry.to_json(), "reason": reason}
                    for entry, reason in result.dropped_baseline
                ],
                "suppressed": [f.to_json() for f in result.suppressed],
                "files_checked": result.files_checked,
            },
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            handle, tmp_name = tempfile.mkstemp(
                dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                    json.dump(payload, tmp, indent=2)
                os.replace(tmp_name, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            pass


def _findings(raw: Any) -> List[Finding]:
    if not isinstance(raw, list):
        raise TypeError("findings payload must be a list")
    return [Finding.from_json(entry) for entry in raw]
