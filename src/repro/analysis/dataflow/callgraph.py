"""The project call graph, with resolution rules tuned for this codebase.

A call site resolves to at most one analyzed function, through (in
order): local names (module functions, ``from``-imports), ``self.method``
with cross-file base-class lookup, imported-module attributes
(``mod.func``), constructor calls (edge to ``__init__`` when present,
else to the class itself as a node), methods on ``self.<attr>`` whose
type was inferred from ``__init__``, methods on parameters with class
annotations, and methods on locals assigned from a constructor call.

Unresolvable calls (stdlib, builtins, duck-typed receivers) simply
produce no edge -- the graph under-approximates, which is the right
polarity for the taint engine (an unresolved callee falls back to
argument-union propagation there).

Exports: :meth:`CallGraph.to_dot` renders the *class-level* aggregation
(one node per class or module scope -- small enough to read), and
:meth:`CallGraph.to_json` carries the full function-level edge list plus
the class-level aggregation for tooling.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.dataflow.symbols import (
    ClassInfo,
    FunctionInfo,
    SymbolTable,
    dotted_path,
)


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site."""

    caller: str
    callee: str
    line: int


class CallGraph:
    """Resolved call edges over a :class:`SymbolTable`."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.edges: List[CallEdge] = []
        self._by_caller: Dict[str, List[CallEdge]] = {}

    # -- construction -----------------------------------------------------

    @staticmethod
    def build(table: SymbolTable) -> "CallGraph":
        graph = CallGraph(table)
        for info in table.functions.values():
            local_types = _local_constructions(info, table)
            for call in _call_nodes(info.node):
                callee = graph.resolve_call(info, call, local_types)
                if callee is not None:
                    graph._add(CallEdge(info.qualname, callee, call.lineno))
        return graph

    def _add(self, edge: CallEdge) -> None:
        self.edges.append(edge)
        self._by_caller.setdefault(edge.caller, []).append(edge)

    # -- resolution --------------------------------------------------------

    def resolve_call(
        self,
        caller: FunctionInfo,
        call: ast.Call,
        local_types: Optional[Dict[str, str]] = None,
    ) -> Optional[str]:
        """Qualname of the analyzed function ``call`` invokes, if known."""
        table = self.table
        module = table.modules[caller.module]
        if local_types is None:
            local_types = _local_constructions(caller, table)
        func = call.func

        if isinstance(func, ast.Name):
            ref = module.aliases.get(func.id, f"{module.name}.{func.id}")
            resolved = table.resolve_function(ref)
            if resolved is not None:
                return resolved.qualname
            klass = table.resolve_class(ref)
            if klass is not None:
                return self._constructor_target(klass)
            return None

        if not isinstance(func, ast.Attribute):
            return None

        receiver = func.value
        # self.method() / cls.method()
        if (
            isinstance(receiver, ast.Name)
            and receiver.id in ("self", "cls")
            and caller.class_qualname is not None
        ):
            method = table.method_on(caller.class_qualname, func.attr)
            if method is not None:
                return method.qualname
            return None
        # self.<attr>.method() through inferred attribute types
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and caller.class_qualname is not None
        ):
            owner = table.classes.get(caller.class_qualname)
            attr_type = (owner.attr_types.get(receiver.attr) if owner else None)
            if attr_type is not None:
                method = table.method_on(attr_type, func.attr)
                if method is not None:
                    return method.qualname
            return None
        if isinstance(receiver, ast.Name):
            # parameter or local with a known class type
            class_qualname = local_types.get(receiver.id)
            if class_qualname is not None:
                method = table.method_on(class_qualname, func.attr)
                if method is not None:
                    return method.qualname
            # imported module / imported class attribute
            dotted = dotted_path(func, module.aliases)
            if dotted is not None:
                resolved = table.resolve_function(dotted)
                if resolved is not None:
                    return resolved.qualname
                klass = table.resolve_class(dotted)
                if klass is not None:
                    return self._constructor_target(klass)
            return None
        # deeper attribute chains: resolve through imports only
        dotted = dotted_path(func, module.aliases)
        if dotted is not None:
            resolved = table.resolve_function(dotted)
            if resolved is not None:
                return resolved.qualname
        return None

    def _constructor_target(self, klass: ClassInfo) -> str:
        init = self.table.method_on(klass.qualname, "__init__")
        return init.qualname if init is not None else klass.qualname

    # -- queries -----------------------------------------------------------

    def callees_of(self, qualname: str) -> List[CallEdge]:
        """Every resolved call edge out of one function."""
        return self._by_caller.get(qualname, [])

    def class_edges(self) -> List[Tuple[str, str]]:
        """Deduplicated scope-level edges (class or module granularity)."""
        seen: Set[Tuple[str, str]] = set()
        ordered: List[Tuple[str, str]] = []
        for edge in self.edges:
            pair = (self._scope(edge.caller), self._scope(edge.callee))
            if pair[0] == pair[1] or pair in seen:
                continue
            seen.add(pair)
            ordered.append(pair)
        return ordered

    def _scope(self, qualname: str) -> str:
        info = self.table.functions.get(qualname)
        if info is not None:
            return info.scope_name
        klass = self.table.classes.get(qualname)
        if klass is not None:
            return klass.name
        return qualname

    def reachable_scopes(self, start: str) -> Set[str]:
        """Scopes reachable from ``start`` in the class-level graph."""
        adjacency: Dict[str, Set[str]] = {}
        for src, dst in self.class_edges():
            adjacency.setdefault(src, set()).add(dst)
        seen: Set[str] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency.get(node, ()))
        return seen

    # -- export ------------------------------------------------------------

    def to_dot(self) -> str:
        """Class-level DOT digraph (the readable architecture view)."""
        lines = [
            "digraph callgraph {",
            "  rankdir=LR;",
            '  node [shape=box, fontname="monospace"];',
        ]
        for src, dst in self.class_edges():
            lines.append(f'  "{src}" -> "{dst}";')
        lines.append("}")
        return "\n".join(lines)

    def to_json(self) -> str:
        """Function-level edges plus the class aggregation, versioned."""
        return json.dumps(
            {
                "version": 1,
                "functions": sorted(self.table.functions),
                "edges": [
                    {"caller": e.caller, "callee": e.callee, "line": e.line}
                    for e in self.edges
                ],
                "class_edges": [[src, dst] for src, dst in self.class_edges()],
            },
            indent=2,
        )


def _call_nodes(func_node: ast.AST) -> Iterator[ast.Call]:
    """Calls in a function body, nested defs and classes excluded."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func_node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _local_constructions(info: FunctionInfo, table: SymbolTable) -> Dict[str, str]:
    """Name -> class qualname for annotated params and constructor locals."""
    module = table.modules[info.module]
    types: Dict[str, str] = {}
    args = info.node.args  # type: ignore[attr-defined]
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        resolved = table._annotation_class(arg.annotation, module)
        if resolved is not None:
            types[arg.arg] = resolved
    for node in ast.walk(info.node):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
        ):
            constructed = table.constructed_class(node.value, module)
            if constructed is not None:
                types[node.targets[0].id] = constructed.qualname
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
        ):
            resolved = table._annotation_class(node.annotation, module)
            if resolved is not None:
                types[node.target.id] = resolved
    return types
