"""Orchestrate one symbolic verification pass over a project.

:func:`verify_project` loads the project's temporal modules (see
:mod:`repro.analysis.symbolic.loader`), drives every interval class,
scheme class and planner class through the axiom checks of
:mod:`repro.analysis.symbolic.axioms`, and converts the convicted
violations into :class:`~repro.analysis.findings.Finding` records
anchored at the offending ``def`` line.

The pass is memoized on the project object (the same idiom the lockset
analysis uses): TEMP002, TEMP003 and TEMP004 all consume the same
verification, and the scheme-report artifact reuses it again, so the
probe grid runs once per lint invocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.findings import Finding
from repro.analysis.project import Project
from repro.analysis.symbolic.axioms import (
    Tally,
    Violation,
    check_interval_class,
    check_planner_class,
    check_scheme_class,
)
from repro.analysis.symbolic.loader import LoadedTemporal, load_temporal
from repro.analysis.symbolic.terms import U_GRID

_CACHE_ATTR = "_scheme_verification"


@dataclass
class SchemeVerification:
    """Everything one symbolic pass over a project established."""

    violations: List[Violation] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    #: Individual axiom checks executed (reported and benchmarked).
    checks: int = 0
    #: Per-class descriptors for the scheme-report artifact.
    interval_classes: List[Dict[str, Any]] = field(default_factory=list)
    schemes: List[Dict[str, Any]] = field(default_factory=list)
    planners: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def findings_for(self, rule_id: str) -> List[Finding]:
        """This pass's findings for one rule family."""
        return [f for f in self.findings if f.rule_id == rule_id]


def _finding(loaded: LoadedTemporal, violation: Violation) -> Finding:
    """Anchor one violation at its method's definition line."""
    return Finding(
        path=violation.relpath,
        line=loaded.anchor(
            violation.relpath, violation.class_name, violation.method
        ),
        rule_id=violation.rule,
        message=(
            f"{violation.class_name}.{violation.method}: "
            f"{violation.kind}: {violation.witness}"
        ),
    )


def _descriptor(cls: type, relpath: str, violations: List[Violation]) -> Dict[str, Any]:
    convicted = sorted(
        {v.rule for v in violations if v.class_name == cls.__name__}
    )
    entry: Dict[str, Any] = {
        "class": cls.__name__,
        "file": relpath,
        "verified": not convicted,
        "convicted_rules": convicted,
    }
    levels = getattr(cls, "level_lengths", None)
    if levels is None:
        # Instance attribute: probe a default construction if possible.
        try:
            levels = list(getattr(cls(u=1), "level_lengths", []) or [])
        except Exception:  # repro-lint: disable=ERR001 -- descriptor only, best effort
            levels = []
    if levels:
        entry["level_lengths_u1"] = list(levels)
    return entry


def verify_project(project: Project) -> SchemeVerification:
    """The memoized symbolic verification for ``project`` (the same
    caching idiom as the lockset analysis: one probe-grid run serves
    TEMP002-004 and the scheme-report artifact alike)."""
    cached = getattr(project, _CACHE_ATTR, None)
    if cached is None:
        cached = _verify(project)
        project._scheme_verification = cached  # type: ignore[attr-defined]
    return cached


def _verify(project: Project) -> SchemeVerification:
    tally = Tally()
    result = SchemeVerification()
    for loaded in load_temporal(project):
        result.notes.extend(loaded.notes)
        relpath = loaded.intervals_file.relpath
        violations: List[Violation] = []

        ti_cls = loaded.interval_class()
        if ti_cls is not None:
            class_violations = check_interval_class(ti_cls, relpath, tally)
            violations.extend(class_violations)
            result.interval_classes.append(
                _descriptor(ti_cls, relpath, class_violations)
            )

        scheme_classes = loaded.scheme_classes()
        for cls in scheme_classes:
            scheme_violations = check_scheme_class(
                cls, ti_cls, relpath, tally, result.notes
            )
            violations.extend(scheme_violations)
            result.schemes.append(_descriptor(cls, relpath, scheme_violations))

        planners_relpath: Optional[str] = (
            loaded.planners_file.relpath if loaded.planners_file else None
        )
        if planners_relpath is not None:
            for cls in loaded.planner_classes():
                planner_violations = check_planner_class(
                    cls, ti_cls, planners_relpath, tally, result.notes
                )
                violations.extend(planner_violations)
                result.planners.append(
                    _descriptor(cls, planners_relpath, planner_violations)
                )

        result.violations.extend(violations)
        result.findings.extend(
            _finding(loaded, violation) for violation in violations
        )

    result.checks = tally.checks
    if result.schemes or result.planners:
        result.notes.append(
            f"probe grid: u in {list(U_GRID)}, {result.checks} checks"
        )
    result.findings.sort()
    return result
