"""Load the analyzed project's interval scheme and planner code.

The symbolic verifier proves properties of the *project under
analysis*, not of whatever ``repro`` happens to be importable -- a
mutation-acceptance clone or a fixture tree must be judged on its own
bytes.  So the scheme file (``temporal/intervals.py``) and the planner
file (``temporal/planners.py``) are compiled and executed from the
project's :class:`~repro.analysis.project.SourceFile` text into fresh
synthetic modules.

``planners.py`` imports ``repro.temporal.intervals``; while it executes,
``sys.modules`` temporarily maps that name to the *project's* loaded
intervals module (restored in a ``finally``), so a mutated scheme
propagates into the planners the verifier drives, and both sides share
one ``TimeInterval`` class.  Everything else (``repro.common.errors``,
``repro.temporal.events``) resolves normally.

A file that fails to execute is reported as a load note, never a crash:
the lint runner already surfaces syntax errors, and the verifier must
stay best-effort on trees it cannot run.
"""

from __future__ import annotations

import ast
import sys
import types
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.project import Project, SourceFile

#: Methods every interval *scheme* class must expose to be verified.
SCHEME_METHODS = (
    "interval_for",
    "previous_interval",
    "iter_intervals_overlapping",
    "partition_clipped",
)

#: Methods marking the interval value class itself.
INTERVAL_METHODS = ("contains", "overlaps", "intersection")

_LOAD_COUNTER = 0


@dataclass
class LoadedTemporal:
    """One project's executed temporal modules plus source anchors."""

    intervals_file: SourceFile
    intervals_module: types.ModuleType
    planners_file: Optional[SourceFile] = None
    planners_module: Optional[types.ModuleType] = None
    #: (class name, method name) -> 1-based definition line, per file.
    anchors: Dict[str, Dict[Tuple[str, str], int]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def anchor(self, relpath: str, class_name: str, method: str) -> int:
        """The definition line of ``class.method`` in ``relpath`` (falls
        back to the class line, then line 1, so findings always anchor)."""
        table = self.anchors.get(relpath, {})
        return (
            table.get((class_name, method))
            or table.get((class_name, ""))
            or 1
        )

    def scheme_classes(self) -> List[type]:
        """Classes in the project's intervals module that implement the
        full scheme surface (the fixture trees define partial lookalikes
        that deliberately stay out of scope)."""
        return _classes_with(self.intervals_module, SCHEME_METHODS)

    def interval_class(self) -> Optional[type]:
        """The project's ``TimeInterval`` value class, if one is defined."""
        candidates = _classes_with(self.intervals_module, INTERVAL_METHODS)
        return candidates[0] if candidates else None

    def planner_classes(self) -> List[type]:
        """Concrete planner classes: a ``plan`` method plus the ``name``
        marker, skipping the abstract base."""
        if self.planners_module is None:
            return []
        out = []
        for cls in _module_classes(self.planners_module):
            if not callable(getattr(cls, "plan", None)):
                continue
            name = getattr(cls, "name", None)
            if not isinstance(name, str) or name == "abstract":
                continue
            if getattr(cls, "__abstractmethods__", None):
                continue
            out.append(cls)
        return out


def _module_classes(module: types.ModuleType) -> List[type]:
    return [
        value
        for value in vars(module).values()
        if isinstance(value, type) and value.__module__ == module.__name__
    ]


def _classes_with(module: types.ModuleType, methods: Tuple[str, ...]) -> List[type]:
    return [
        cls
        for cls in _module_classes(module)
        if all(callable(getattr(cls, name, None)) for name in methods)
    ]


def _def_lines(source: SourceFile) -> Dict[Tuple[str, str], int]:
    """(class, method) -> def line; (class, "") -> class line."""
    table: Dict[Tuple[str, str], int] = {}
    if source.tree is None:
        return table
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        table[(node.name, "")] = node.lineno
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                table[(node.name, item.name)] = item.lineno
    return table


def _exec_source(source: SourceFile, tag: str) -> types.ModuleType:
    """Compile and run one project file into a fresh synthetic module."""
    global _LOAD_COUNTER
    _LOAD_COUNTER += 1
    module = types.ModuleType(f"_repro_symbolic_{tag}_{_LOAD_COUNTER}")
    module.__file__ = str(source.path)
    code = compile(source.text, str(source.path), "exec")
    # The synthetic module must be importable by name while its body
    # runs: the dataclass machinery resolves string annotations through
    # ``sys.modules[cls.__module__].__dict__``.  Names are unique per
    # load, so registrations never collide; failed loads are removed.
    sys.modules[module.__name__] = module
    try:
        exec(code, module.__dict__)  # noqa: S102 -- the verifier's whole job
    except BaseException:
        sys.modules.pop(module.__name__, None)
        raise
    return module


def _temporal_pairs(
    project: Project,
) -> List[Tuple[SourceFile, Optional[SourceFile]]]:
    """(intervals.py, planners.py) pairs grouped by their directory."""
    by_dir: Dict[str, Dict[str, SourceFile]] = {}
    for source in project.files:
        if source.tree is None:
            continue
        parent, _, basename = source.relpath.rpartition("/")
        if basename in ("intervals.py", "planners.py") and (
            parent.endswith("temporal") or parent == ""
        ):
            by_dir.setdefault(parent, {})[basename] = source
    pairs = []
    for group in by_dir.values():
        if "intervals.py" in group:
            pairs.append((group["intervals.py"], group.get("planners.py")))
    return pairs


def load_temporal(project: Project) -> List[LoadedTemporal]:
    """Execute every scheme/planner pair the project defines.

    Returns one :class:`LoadedTemporal` per loadable pair; pairs whose
    intervals file cannot execute are skipped with no entry (the runner
    reports unparsable files separately).
    """
    loaded: List[LoadedTemporal] = []
    for intervals_file, planners_file in _temporal_pairs(project):
        try:
            intervals_module = _exec_source(intervals_file, "intervals")
        except BaseException as exc:  # repro-lint: disable=ERR001 -- any project bug
            continue_note = (
                f"{intervals_file.relpath}: scheme module failed to "
                f"execute ({type(exc).__name__}: {exc}); scheme axioms "
                "not verified"
            )
            loaded.append(
                LoadedTemporal(
                    intervals_file=intervals_file,
                    intervals_module=types.ModuleType("_repro_symbolic_empty"),
                    notes=[continue_note],
                )
            )
            continue
        entry = LoadedTemporal(
            intervals_file=intervals_file,
            intervals_module=intervals_module,
        )
        entry.anchors[intervals_file.relpath] = _def_lines(intervals_file)
        if planners_file is not None:
            saved = sys.modules.get("repro.temporal.intervals")
            sys.modules["repro.temporal.intervals"] = intervals_module
            try:
                entry.planners_module = _exec_source(planners_file, "planners")
                entry.planners_file = planners_file
                entry.anchors[planners_file.relpath] = _def_lines(planners_file)
            except BaseException as exc:  # repro-lint: disable=ERR001
                entry.notes.append(
                    f"{planners_file.relpath}: planner module failed to "
                    f"execute ({type(exc).__name__}: {exc}); planner "
                    "completeness not verified"
                )
            finally:
                if saved is not None:
                    sys.modules["repro.temporal.intervals"] = saved
                else:
                    sys.modules.pop("repro.temporal.intervals", None)
        loaded.append(entry)
    return loaded
