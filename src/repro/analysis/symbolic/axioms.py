"""The scheme and planner axioms, checked by bounded symbolic probing.

Every check here materializes the symbolic probe terms of
:mod:`repro.analysis.symbolic.terms` over the ``u``-grid and drives the
*project's own* scheme/planner classes through them, comparing the
results against the algebraic expectations the paper's ``(t1, t2]``
convention dictates.  The axioms:

* **TEMP002 -- scheme axioms.**  ``interval_for`` covers every positive
  timestamp (``start < t <= end`` arithmetically) with ``u``-aligned,
  pairwise-disjoint, gap-free intervals; ``previous_interval`` walks
  back monotonically to ``None`` exactly at the timeline start;
  ``intervals_overlapping`` agrees with ``interval_for`` and returns
  only genuinely overlapping intervals; ``partition`` /
  ``partition_clipped`` tile their window exactly.  Hierarchical
  schemes additionally satisfy per-level alignment and nesting (each
  level-``l`` interval is exactly ``branch`` level-``l-1`` intervals).

* **TEMP003 -- planner completeness.**  Every planner's ``plan`` must
  tile the query window exactly -- adjacent, disjoint, first interval
  starting at ``window.start``, last ending at ``window.end`` -- for
  every event multiset, so no timestamp a query probes can fall between
  planned intervals.  Planners built on a hierarchical scheme must
  return the *canonical coarsest-covering* decomposition (a skipped
  level silently multiplies the per-query GHFK count).  A planner that
  raises on a legal window is incomplete by definition.

* **TEMP004 -- boundary convention.**  The half-open ``(lo, hi]``
  contract: ``contains`` excludes the start and includes the end,
  ``overlaps``/``intersection`` agree with the endpoint arithmetic, no
  interval contains ``0``, ``t = k*u`` lands in ``((k-1)u, ku]``, and
  ``interval_for``'s arithmetic agrees with ``contains`` at every
  boundary.
"""

from __future__ import annotations

import inspect
import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.symbolic.terms import (
    K_RANGE,
    U_GRID,
    materialize_timestamps,
    materialize_windows,
)

#: Fixed seed for the deterministic event-multiset generator: a lint run
#: must produce the same findings on every machine regardless of
#: ``REPRO_SEED`` (the *fuzz* runner is the seeded half of the story).
STATIC_SEED = 0x5EED

#: Walk limit for the previous_interval monotonicity check.
_PREV_WALK_LIMIT = 64

#: Constructor-parameter value grids, keyed by parameter name.  ``u`` is
#: bound to the current grid point; everything else enumerates a small
#: set.  A planner/scheme with a required parameter outside this table
#: is reported as unverifiable instead of guessed at.
_PARAM_GRIDS: Dict[str, Sequence[Any]] = {
    "u": ("<u>",),
    "events_per_interval": (1, 2, 3),
    "base": (1, "<u>"),
    "ratio": (2.0,),
    "levels": (3,),
    "branch": (4,),
}


@dataclass(frozen=True)
class Violation:
    """One convicted axiom, anchored at a class method definition."""

    rule: str
    relpath: str
    class_name: str
    method: str
    kind: str
    witness: str

    def dedup_key(self) -> Tuple[str, str, str, str, str]:
        """Identity used to keep one witness per convicted axiom."""
        return (self.rule, self.relpath, self.class_name, self.method, self.kind)


class Tally:
    """Counts individual axiom checks (reported, and benchmarked)."""

    def __init__(self) -> None:
        self.checks = 0

    def tick(self, n: int = 1) -> None:
        """Record ``n`` executed checks."""
        self.checks += n


class _Probe:
    """Minimal event stand-in: planners only read ``.time``."""

    __slots__ = ("time",)

    def __init__(self, time: int) -> None:
        self.time = time

    def __lt__(self, other: "_Probe") -> bool:
        return self.time < other.time


def _ends(interval: Any) -> Optional[Tuple[int, int]]:
    """``(start, end)`` if the object looks like a time interval."""
    start = getattr(interval, "start", None)
    end = getattr(interval, "end", None)
    if isinstance(start, int) and isinstance(end, int):
        return start, end
    return None


def _constructor_configs(cls: type, u: int) -> Optional[List[Dict[str, Any]]]:
    """Keyword-argument sets to instantiate ``cls`` with, or ``None``
    when a required parameter is outside the known grids."""
    try:
        signature = inspect.signature(cls)
    except (TypeError, ValueError):
        return None
    grids: List[List[Tuple[str, Any]]] = []
    for name, param in signature.parameters.items():
        if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
            continue
        if param.default is not param.empty:
            continue  # optional: let the class default decide
        if name not in _PARAM_GRIDS:
            return None
        values = [u if value == "<u>" else value for value in _PARAM_GRIDS[name]]
        grids.append([(name, value) for value in values])
    return [dict(combo) for combo in itertools.product(*grids)] or [{}]


def _accepts_level(method: Any) -> bool:
    try:
        return "level" in inspect.signature(method).parameters
    except (TypeError, ValueError):
        return False


def canonical_cover(
    level_lengths: Sequence[int], start: int, end: int
) -> List[Tuple[int, int]]:
    """The reference coarsest-covering decomposition of ``(start, end]``.

    At each position take the longest level length whose aligned block
    both starts here and fits inside the window; when not even the base
    length fits aligned, clip to the next base boundary (or the window
    end).  This is the spec the hierarchical planner is held to --
    written independently here so a planner that skips a level (or
    tiles finer than it must) is convicted rather than trusted.
    """
    base = level_lengths[0]
    out: List[Tuple[int, int]] = []
    position = start
    while position < end:
        chosen = None
        for length in sorted(level_lengths, reverse=True):
            if position % length == 0 and position + length <= end:
                chosen = position + length
                break
        if chosen is None:
            next_base = (position // base + 1) * base
            chosen = min(end, next_base)
        out.append((position, chosen))
        position = chosen
    return out


def _event_sets(
    window: Tuple[int, int], u: int, chunk: int
) -> List[List[_Probe]]:
    """Deterministic event multisets for one planner window: empty,
    boundary-hugging, duplicate-heavy, and pseudorandom (fixed seed)."""
    import random

    start, end = window
    rng = random.Random(STATIC_SEED ^ (u << 16) ^ (start * 1000003 + end))
    sets: List[List[int]] = [[]]
    sets.append([end] * max(2, chunk))  # all events on the closing bound
    boundaries = [k * u for k in K_RANGE if start < k * u <= end]
    if boundaries:
        sets.append(sorted(boundaries + [b for b in boundaries]))  # dupes
    span = end - start
    count = min(2 * chunk + 3, span)
    if count > 0:
        sets.append(sorted(rng.randint(start + 1, end) for _ in range(count)))
    return [[_Probe(t) for t in times] for times in sets]


# ---------------------------------------------------------------------------
# TEMP004: the interval value class itself
# ---------------------------------------------------------------------------


def check_interval_class(
    ti_cls: type, relpath: str, tally: Tally
) -> List[Violation]:
    """The half-open ``(lo, hi]`` contract on the interval class."""
    violations: List[Violation] = []

    def convict(method: str, kind: str, witness: str) -> None:
        violations.append(
            Violation("TEMP004", relpath, ti_cls.__name__, method, kind, witness)
        )

    try:
        probe = ti_cls(2, 5)
    except Exception as exc:  # repro-lint: disable=ERR001 -- convict, don't crash
        convict(
            "__init__",
            "construction",
            f"TimeInterval(2, 5) raised {type(exc).__name__}: {exc}",
        )
        return violations
    expectations = [(2, False), (3, True), (5, True), (6, False), (1, False)]
    for timestamp, expected in expectations:
        tally.tick()
        try:
            got = bool(probe.contains(timestamp))
        except Exception as exc:  # repro-lint: disable=ERR001
            convict("contains", "half-open", f"contains({timestamp}) raised {exc!r}")
            break
        if got != expected:
            convict(
                "contains",
                "half-open",
                f"(2, 5].contains({timestamp}) is {got}, must be {expected} "
                "under the exclusive-start/inclusive-end convention",
            )
            break
    pairs = [(0, 2), (2, 5), (1, 3), (5, 9), (4, 9), (0, 1), (2, 3)]
    for (a_lo, a_hi), (b_lo, b_hi) in itertools.product(pairs, repeat=2):
        tally.tick()
        a, b = ti_cls(a_lo, a_hi), ti_cls(b_lo, b_hi)
        expected_overlap = a_lo < b_hi and b_lo < a_hi
        if bool(a.overlaps(b)) != expected_overlap:
            convict(
                "overlaps",
                "overlaps-arithmetic",
                f"({a_lo}, {a_hi}].overlaps(({b_lo}, {b_hi}]) is "
                f"{not expected_overlap}; endpoint arithmetic says "
                f"{expected_overlap}",
            )
            break
        meet = a.intersection(b)
        lo, hi = max(a_lo, b_lo), min(a_hi, b_hi)
        expected_meet = (lo, hi) if lo < hi else None
        got_meet = _ends(meet) if meet is not None else None
        if got_meet != expected_meet:
            convict(
                "intersection",
                "intersection-arithmetic",
                f"({a_lo}, {a_hi}] ∩ ({b_lo}, {b_hi}] returned {got_meet}, "
                f"expected {expected_meet}",
            )
            break
    tally.tick()
    try:
        ti_cls(3, 3)
    except Exception:  # repro-lint: disable=ERR001 -- rejection is the contract
        pass
    else:
        convict(
            "__init__",
            "empty-interval",
            "TimeInterval(3, 3) was accepted; (t, t] is empty under the "
            "half-open convention and must be rejected",
        )
    return violations


# ---------------------------------------------------------------------------
# TEMP002 / TEMP004: interval schemes
# ---------------------------------------------------------------------------


def check_scheme_class(
    cls: type,
    ti_cls: Optional[type],
    relpath: str,
    tally: Tally,
    notes: List[str],
) -> List[Violation]:
    """Drive one scheme class through the probe grid."""
    violations: List[Violation] = []
    verified_any = False
    for u in U_GRID:
        configs = _constructor_configs(cls, u)
        if configs is None:
            notes.append(
                f"{relpath}: {cls.__name__} has a constructor parameter "
                "outside the known grids; scheme not verified"
            )
            return violations
        for kwargs in configs:
            try:
                scheme = cls(**kwargs)
            except Exception as exc:  # repro-lint: disable=ERR001
                violations.append(
                    Violation(
                        "TEMP002", relpath, cls.__name__, "__init__",
                        "construction",
                        f"{cls.__name__}({kwargs}) raised {exc!r}",
                    )
                )
                return violations
            verified_any = True
            violations.extend(
                _check_scheme_instance(scheme, cls, ti_cls, relpath, u, tally)
            )
    if verified_any:
        tally.tick(0)
    return _dedup(violations)


def _check_scheme_instance(
    scheme: Any,
    cls: type,
    ti_cls: Optional[type],
    relpath: str,
    u: int,
    tally: Tally,
) -> List[Violation]:
    violations: List[Violation] = []
    name = cls.__name__

    def convict(rule: str, method: str, kind: str, witness: str) -> None:
        violations.append(Violation(rule, relpath, name, kind=kind,
                                    method=method, witness=f"u={u}: {witness}"))

    level_lengths = list(getattr(scheme, "level_lengths", []) or [])
    single_level = not level_lengths and getattr(scheme, "u", None) == u

    # -- interval_for: cover, alignment, contains agreement ---------------
    dense = list(range(1, min(3 * u + 3, 32)))
    timestamps = sorted(set(materialize_timestamps(u)) | set(dense))
    by_timestamp: Dict[int, Tuple[int, int]] = {}
    for t in timestamps:
        tally.tick()
        try:
            interval = scheme.interval_for(t)
        except Exception as exc:  # repro-lint: disable=ERR001
            convict(
                "TEMP002", "interval_for", "total-cover",
                f"interval_for({t}) raised {type(exc).__name__}: {exc} -- "
                "every positive timestamp must have an index interval",
            )
            continue
        ends = _ends(interval)
        if ends is None:
            convict(
                "TEMP002", "interval_for", "total-cover",
                f"interval_for({t}) returned {interval!r}, not an interval",
            )
            continue
        start, end = ends
        by_timestamp[t] = ends
        if not (start < t <= end):
            convict(
                "TEMP002", "interval_for", "total-cover",
                f"interval_for({t}) = ({start}, {end}] does not contain "
                f"{t} arithmetically (need start < t <= end)",
            )
            continue
        if single_level and (start % u != 0 or end - start != u):
            convict(
                "TEMP002", "interval_for", "alignment",
                f"interval_for({t}) = ({start}, {end}] is not a u-aligned "
                f"length-u interval",
            )
        tally.tick()
        try:
            agreed = bool(interval.contains(t))
        except Exception:  # repro-lint: disable=ERR001
            agreed = False
        if not agreed:
            convict(
                "TEMP004", "interval_for", "contains-mismatch",
                f"interval_for({t}) = ({start}, {end}] but "
                f"contains({t}) is False: scheme arithmetic and the "
                "interval's own boundary test disagree",
            )

    # -- boundary residues: t = k*u belongs left --------------------------
    if single_level:
        for k in K_RANGE:
            tally.tick()
            ends = by_timestamp.get(k * u)
            if ends is not None and ends != ((k - 1) * u, k * u):
                convict(
                    "TEMP004", "interval_for", "boundary-off-by-one",
                    f"interval_for({k}*u = {k * u}) = ({ends[0]}, {ends[1]}]; "
                    f"the boundary timestamp k·u belongs to ((k-1)u, ku] = "
                    f"({(k - 1) * u}, {k * u}]",
                )
                break

    # -- no interval contains 0 -------------------------------------------
    for t in (0, -u):
        tally.tick()
        try:
            leaked = scheme.interval_for(t)
        except Exception:  # repro-lint: disable=ERR001 -- the typed rejection is the spec
            continue
        convict(
            "TEMP004", "interval_for", "zero-boundary",
            f"interval_for({t}) returned {leaked!r}; no (start, end] "
            "interval contains a timestamp <= 0, so the scheme must raise",
        )
        break

    # -- disjointness and gap-freeness over the dense sweep ----------------
    produced = sorted({by_timestamp[t] for t in dense if t in by_timestamp})
    for (a_lo, a_hi), (b_lo, b_hi) in zip(produced, produced[1:]):
        tally.tick()
        if b_lo < a_hi:
            convict(
                "TEMP002", "interval_for", "disjoint",
                f"intervals ({a_lo}, {a_hi}] and ({b_lo}, {b_hi}] overlap; "
                "index intervals must partition the timeline",
            )
            break
        if b_lo > a_hi and not level_lengths:
            convict(
                "TEMP002", "interval_for", "total-cover",
                f"gap between ({a_lo}, {a_hi}] and ({b_lo}, {b_hi}]: "
                f"timestamps in ({a_hi}, {b_lo}] have no index interval",
            )
            break

    # -- previous_interval: monotone walk to None at the start -------------
    violations.extend(
        _check_previous_walk(scheme, name, relpath, u, by_timestamp, tally)
    )

    # -- window probes ------------------------------------------------------
    if ti_cls is not None:
        violations.extend(
            _check_scheme_windows(
                scheme, name, ti_cls, relpath, u, single_level, tally
            )
        )

    # -- hierarchical levels ------------------------------------------------
    if level_lengths:
        violations.extend(
            _check_hierarchy(scheme, name, ti_cls, relpath, u,
                             level_lengths, tally)
        )
    return violations


def _check_previous_walk(
    scheme: Any,
    name: str,
    relpath: str,
    u: int,
    by_timestamp: Dict[int, Tuple[int, int]],
    tally: Tally,
) -> List[Violation]:
    violations: List[Violation] = []
    seed = by_timestamp.get(K_RANGE[-1] * u) or by_timestamp.get(1)
    if seed is None:
        return violations
    try:
        current = scheme.interval_for(seed[1])
    except Exception:  # repro-lint: disable=ERR001 -- already convicted above
        return violations
    for _ in range(_PREV_WALK_LIMIT):
        tally.tick()
        cur = _ends(current)
        if cur is None:
            break
        try:
            previous = scheme.previous_interval(current)
        except Exception as exc:  # repro-lint: disable=ERR001
            violations.append(Violation(
                "TEMP002", relpath, name, "previous_interval", "monotone",
                f"u={u}: previous_interval(({cur[0]}, {cur[1]}]) raised "
                f"{type(exc).__name__}: {exc}",
            ))
            return violations
        if previous is None:
            if cur[0] != 0:
                violations.append(Violation(
                    "TEMP002", relpath, name, "previous_interval", "monotone",
                    f"u={u}: previous_interval(({cur[0]}, {cur[1]}]) is None "
                    "before the walk reached the timeline start at 0 -- "
                    "M2's backward probing loop would stop early and miss "
                    "earlier base states",
                ))
            return violations
        prev = _ends(previous)
        if prev is None or prev[1] != cur[0] or prev[0] >= cur[0]:
            violations.append(Violation(
                "TEMP002", relpath, name, "previous_interval", "monotone",
                f"u={u}: previous_interval(({cur[0]}, {cur[1]}]) = {prev}; "
                f"the previous interval must end exactly at {cur[0]} and "
                "start strictly earlier",
            ))
            return violations
        current = previous
    else:
        violations.append(Violation(
            "TEMP002", relpath, name, "previous_interval", "monotone",
            f"u={u}: previous_interval walk did not terminate within "
            f"{_PREV_WALK_LIMIT} steps",
        ))
    return violations


def _check_scheme_windows(
    scheme: Any,
    name: str,
    ti_cls: type,
    relpath: str,
    u: int,
    single_level: bool,
    tally: Tally,
) -> List[Violation]:
    violations: List[Violation] = []
    for ws, we in materialize_windows(u):
        try:
            window = ti_cls(ws, we)
        except Exception:  # repro-lint: disable=ERR001 -- convicted by the class checks
            continue
        # intervals_overlapping agrees with interval_for.
        lister = getattr(scheme, "intervals_overlapping", None) or (
            lambda w: list(scheme.iter_intervals_overlapping(w))
        )
        tally.tick()
        try:
            listed = [iv for iv in lister(window)]
        except Exception as exc:  # repro-lint: disable=ERR001
            violations.append(Violation(
                "TEMP002", relpath, name, "intervals_overlapping", "agreement",
                f"u={u}: intervals_overlapping(({ws}, {we}]) raised {exc!r}",
            ))
            continue
        listed_ends = [_ends(iv) for iv in listed]
        for ends in listed_ends:
            tally.tick()
            if ends is None or not (ends[0] < we and ws < ends[1]):
                violations.append(Violation(
                    "TEMP002", relpath, name, "intervals_overlapping",
                    "agreement",
                    f"u={u}: intervals_overlapping(({ws}, {we}]) listed "
                    f"{ends}, which does not overlap the window",
                ))
                break
        listed_set = set(filter(None, listed_ends))
        for t in range(ws + 1, min(we, ws + 3 * u + 2) + 1):
            tally.tick()
            try:
                home = _ends(scheme.interval_for(t))
            except Exception:  # repro-lint: disable=ERR001
                continue
            if home is not None and home not in listed_set:
                violations.append(Violation(
                    "TEMP002", relpath, name, "intervals_overlapping",
                    "agreement",
                    f"u={u}: timestamp {t} in window ({ws}, {we}] lives in "
                    f"({home[0]}, {home[1]}], which intervals_overlapping "
                    "did not list -- the planner would never probe its "
                    "bundle and events would silently vanish",
                ))
                break
        # partition_clipped tiles the window exactly.
        tally.tick()
        try:
            pieces = [_ends(iv) for iv in scheme.partition_clipped(window)]
        except Exception as exc:  # repro-lint: disable=ERR001
            violations.append(Violation(
                "TEMP002", relpath, name, "partition_clipped", "tiling",
                f"u={u}: partition_clipped(({ws}, {we}]) raised {exc!r}",
            ))
            continue
        violations.extend(_tiling_violations(
            pieces, ws, we, "TEMP002", relpath, name, "partition_clipped", u,
        ))
        # partition (aligned windows only).
        if single_level and ws % u == 0 and we % u == 0:
            tally.tick()
            try:
                aligned = [_ends(iv) for iv in scheme.partition(window)]
            except Exception as exc:  # repro-lint: disable=ERR001
                violations.append(Violation(
                    "TEMP002", relpath, name, "partition", "tiling",
                    f"u={u}: partition(({ws}, {we}]) raised {exc!r}",
                ))
                continue
            violations.extend(_tiling_violations(
                aligned, ws, we, "TEMP002", relpath, name, "partition", u,
            ))
    return violations


def _check_hierarchy(
    scheme: Any,
    name: str,
    ti_cls: Optional[type],
    relpath: str,
    u: int,
    level_lengths: Sequence[int],
    tally: Tally,
) -> List[Violation]:
    violations: List[Violation] = []
    if not _accepts_level(scheme.interval_for):
        violations.append(Violation(
            "TEMP002", relpath, name, "interval_for", "levels",
            f"u={u}: scheme advertises level_lengths={list(level_lengths)} "
            "but interval_for takes no level parameter",
        ))
        return violations
    for level, length in enumerate(level_lengths):
        for k in (1, 2):
            t = k * length
            tally.tick()
            try:
                ends = _ends(scheme.interval_for(t, level=level))
            except Exception as exc:  # repro-lint: disable=ERR001
                violations.append(Violation(
                    "TEMP002", relpath, name, "interval_for", "levels",
                    f"u={u}: interval_for({t}, level={level}) raised {exc!r}",
                ))
                return violations
            if ends != ((k - 1) * length, k * length):
                violations.append(Violation(
                    "TEMP002", relpath, name, "interval_for", "levels",
                    f"u={u}: interval_for({t}, level={level}) = {ends}; a "
                    f"level-{level} boundary timestamp belongs to "
                    f"({(k - 1) * length}, {k * length}]",
                ))
                return violations
    if ti_cls is None or not _accepts_level(scheme.partition):
        return violations
    for level in range(1, len(level_lengths)):
        length = level_lengths[level]
        finer = level_lengths[level - 1]
        parent = ti_cls(length, 2 * length)
        tally.tick()
        try:
            children = [_ends(iv) for iv in scheme.partition(parent, level=level - 1)]
        except Exception as exc:  # repro-lint: disable=ERR001
            violations.append(Violation(
                "TEMP002", relpath, name, "partition", "nesting",
                f"u={u}: partition of a level-{level} interval at level "
                f"{level - 1} raised {exc!r}",
            ))
            return violations
        expected = [
            (length + i * finer, length + (i + 1) * finer)
            for i in range(length // finer)
        ]
        if children != expected:
            violations.append(Violation(
                "TEMP002", relpath, name, "partition", "nesting",
                f"u={u}: level-{level} interval ({length}, {2 * length}] "
                f"split into {children} at level {level - 1}; nesting "
                f"requires exactly {expected} -- each coarse interval is "
                "the union of its children, or coarse bundles and fine "
                "bundles disagree about which events they hold",
            ))
            return violations
    return violations


def _tiling_violations(
    pieces: List[Optional[Tuple[int, int]]],
    ws: int,
    we: int,
    rule: str,
    relpath: str,
    class_name: str,
    method: str,
    u: int,
) -> List[Violation]:
    """Exact-tiling assertions shared by scheme partitions and planners."""
    where = f"u={u}: {method}(({ws}, {we}])"
    if not pieces or any(piece is None for piece in pieces):
        return [Violation(
            rule, relpath, class_name, method, "tiling",
            f"{where} returned no usable intervals",
        )]
    clean = [piece for piece in pieces if piece is not None]
    if clean[0][0] != ws:
        return [Violation(
            rule, relpath, class_name, method, "tiling",
            f"{where} starts at {clean[0][0]}, not the window start {ws}: "
            f"events in ({ws}, {clean[0][0]}] are never indexed",
        )]
    if clean[-1][1] != we:
        return [Violation(
            rule, relpath, class_name, method, "tiling",
            f"{where} ends at {clean[-1][1]}, not the window end {we}: "
            f"events in ({clean[-1][1]}, {we}] are never indexed",
        )]
    for (a_lo, a_hi), (b_lo, b_hi) in zip(clean, clean[1:]):
        if a_hi != b_lo:
            kind = "overlap" if b_lo < a_hi else "gap"
            return [Violation(
                rule, relpath, class_name, method, "tiling",
                f"{where}: ({a_lo}, {a_hi}] then ({b_lo}, {b_hi}] -- a "
                f"{kind} at {min(a_hi, b_lo)}; intervals must be adjacent "
                "so no timestamp falls between them",
            )]
    return []


# ---------------------------------------------------------------------------
# TEMP003: planners
# ---------------------------------------------------------------------------


def check_planner_class(
    cls: type,
    ti_cls: Optional[type],
    relpath: str,
    tally: Tally,
    notes: List[str],
) -> List[Violation]:
    """Drive one planner class through windows x event multisets."""
    violations: List[Violation] = []
    if ti_cls is None:
        notes.append(
            f"{relpath}: no TimeInterval class available; planner "
            f"{cls.__name__} not verified"
        )
        return violations
    for u in U_GRID:
        configs = _constructor_configs(cls, u)
        if configs is None:
            notes.append(
                f"{relpath}: {cls.__name__} has a constructor parameter "
                "outside the known grids; planner not verified"
            )
            return violations
        for kwargs in configs:
            try:
                planner = cls(**kwargs)
            except Exception as exc:  # repro-lint: disable=ERR001
                violations.append(Violation(
                    "TEMP003", relpath, cls.__name__, "__init__",
                    "construction",
                    f"{cls.__name__}({kwargs}) raised {exc!r}",
                ))
                return _dedup(violations)
            violations.extend(
                _check_planner_instance(planner, cls, ti_cls, relpath, u, tally)
            )
    return _dedup(violations)


def _check_planner_instance(
    planner: Any,
    cls: type,
    ti_cls: type,
    relpath: str,
    u: int,
    tally: Tally,
) -> List[Violation]:
    violations: List[Violation] = []
    name = cls.__name__
    chunk = int(getattr(planner, "events_per_interval", 2) or 2)
    scheme = getattr(planner, "scheme", None)
    level_lengths = list(getattr(scheme, "level_lengths", []) or [])
    windows = list(materialize_windows(u))
    if level_lengths:
        # The generic probe windows top out below the coarsest level, so
        # a planner that never emits coarse intervals would look
        # identical on them.  Add windows where every level must appear.
        top = max(level_lengths)
        base = min(level_lengths)
        windows.extend([
            (0, top),  # exactly one coarsest block
            (0, 2 * top + base),  # two coarse blocks plus a fine tail
            (base, top + base),  # unaligned start straddling a coarse block
            (top, 3 * top),  # coarse blocks away from zero
        ])
    for ws, we in windows:
        try:
            window = ti_cls(ws, we)
        except Exception:  # repro-lint: disable=ERR001
            continue
        for events in _event_sets((ws, we), u, chunk):
            tally.tick()
            try:
                plan = planner.plan(events, window)
            except Exception as exc:  # repro-lint: disable=ERR001
                violations.append(Violation(
                    "TEMP003", relpath, name, "plan", "completeness",
                    f"u={u}: plan of ({ws}, {we}] with "
                    f"{len(events)} event(s) raised "
                    f"{type(exc).__name__}: {exc} -- a planner that cannot "
                    "plan a legal window leaves the range unindexed",
                ))
                return violations
            pieces = [_ends(iv) for iv in plan]
            violations.extend(_tiling_violations(
                pieces, ws, we, "TEMP003", relpath, name, "plan", u,
            ))
            if violations:
                return violations
            clean = [piece for piece in pieces if piece is not None]
            for event in events:
                tally.tick()
                if not any(lo < event.time <= hi for lo, hi in clean):
                    violations.append(Violation(
                        "TEMP003", relpath, name, "plan", "completeness",
                        f"u={u}: event at t={event.time} is in no planned "
                        f"interval of ({ws}, {we}] -- TQF would return it, "
                        "the indexed model would not",
                    ))
                    return violations
            if level_lengths:
                expected = canonical_cover(level_lengths, ws, we)
                tally.tick()
                if clean != expected:
                    violations.append(Violation(
                        "TEMP003", relpath, name, "plan", "coarsest-cover",
                        f"u={u}: hierarchical plan of ({ws}, {we}] produced "
                        f"{clean}, the canonical coarsest-covering "
                        f"decomposition is {expected} -- a skipped level "
                        "multiplies the per-query bundle probes",
                    ))
                    return violations
    # Growth stress: geometric-family planners (a `ratio` attribute > 1)
    # must survive astronomically long windows without their float length
    # accumulator overflowing to infinity.
    ratio = getattr(planner, "ratio", None)
    if isinstance(ratio, float) and ratio > 1.0:
        tally.tick()
        stress = ti_cls(0, u * 2 ** 1100)
        try:
            plan = planner.plan([], stress)
        except Exception as exc:  # repro-lint: disable=ERR001
            violations.append(Violation(
                "TEMP003", relpath, name, "plan", "completeness",
                f"u={u}: plan of the long window (0, u*2^1100] raised "
                f"{type(exc).__name__}: {exc} -- geometric growth must be "
                "capped at the window remainder, not left to overflow",
            ))
            return violations
        pieces = [_ends(iv) for iv in plan]
        violations.extend(_tiling_violations(
            pieces, 0, u * 2 ** 1100, "TEMP003", relpath, name, "plan", u,
        ))
    return violations


def _dedup(violations: Iterable[Violation]) -> List[Violation]:
    """First witness per (rule, file, class, method, axiom)."""
    seen: Dict[Tuple[str, str, str, str, str], Violation] = {}
    for violation in violations:
        seen.setdefault(violation.dedup_key(), violation)
    return list(seen.values())
