"""Assemble the ``scheme-report.json`` artifact.

``repro lint --scheme-report scheme-report.json`` publishes one
machine-readable record of the whole verification story: the symbolic
pass (what was checked, what was convicted, per-class verdicts), the
seeded fuzzing session, and the bridge verdicts joining the two.  CI
uploads it so a reviewer can read off *why* a scheme was accepted --
the hierarchical M3 prototype ships on the strength of this artifact.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.analysis.symbolic.fuzz import SchemeBridge


def build_scheme_report(bridge: SchemeBridge) -> Dict[str, Any]:
    """The scheme-report document for one verified project."""
    verification = bridge.verification
    fuzz = bridge.fuzz
    return {
        "version": 1,
        "ok": verification.ok and not fuzz.witnesses,
        "static": {
            "checks": verification.checks,
            "findings": [finding.to_json() for finding in verification.findings],
            "interval_classes": list(verification.interval_classes),
            "schemes": list(verification.schemes),
            "planners": list(verification.planners),
            "notes": list(verification.notes),
        },
        "fuzz": {
            "seed": fuzz.seed,
            "rounds": fuzz.rounds,
            "checks": fuzz.checks,
            "witnesses": [witness.to_json() for witness in fuzz.witnesses],
        },
        "bridge": {
            "confirmed": [
                {
                    "rule": site[0],
                    "path": site[1],
                    "class": site[2],
                    "method": site[3],
                    "witness": witness.to_json(),
                }
                for site, witness in bridge.confirmed
            ],
            "unwitnessed": [
                {"rule": site[0], "path": site[1], "class": site[2],
                 "method": site[3]}
                for site in bridge.unwitnessed
            ],
            "statically_invisible": [
                witness.to_json() for witness in bridge.invisible
            ],
        },
    }


def render_scheme_report(bridge: SchemeBridge) -> str:
    """The JSON text written to ``--scheme-report``."""
    return json.dumps(build_scheme_report(bridge), indent=2)
