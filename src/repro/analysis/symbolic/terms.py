"""Linear terms over the symbolic interval length ``u``.

The verifier reasons about timestamps and window endpoints as linear
terms ``a·u + b`` with integer coefficients.  A term is *one* value per
concrete ``u`` but *one residue class* symbolically: ``2u + 1`` names
"one past the second boundary" for every ``u`` at once, which is exactly
the vocabulary the paper's ``(k·u, (k+1)·u]`` convention is written in.

Two layers live here:

* the :class:`Lin` algebra -- add/subtract/scale, comparison decidable
  for all ``u >= u_min`` by looking at the leading coefficient (the
  algebraic-simplification half of the engine), and exact floor
  division by ``u`` when the residue is known;
* the probe generators -- the bounded exhaustive enumeration half.
  :func:`boundary_terms` enumerates the residue classes around every
  multiple of ``u`` (``k·u - 1``, ``k·u``, ``k·u + 1`` for small ``k``)
  plus interior points, and :func:`window_terms` builds query windows
  whose endpoints hit every alignment case (aligned/unaligned start and
  end, sub-``u`` windows, single-point windows).  Materializing those
  terms over the :data:`U_GRID` gives a finite check that is exhaustive
  over the residue behaviours the scheme arithmetic can distinguish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

#: Concrete interval lengths the symbolic terms are materialized over.
#: The set deliberately mixes ``u = 1`` (every timestamp is a boundary),
#: small primes (no accidental divisibility), powers of two (the
#: hierarchical branch factor), and a composite.
U_GRID: Tuple[int, ...] = (1, 2, 3, 5, 8)

#: Boundary multiples probed around: ``k·u`` for these ``k``.
K_RANGE: Tuple[int, ...] = (1, 2, 3, 7)


@dataclass(frozen=True, order=True)
class Lin:
    """The linear term ``a·u + b``."""

    a: int
    b: int

    def __add__(self, other: "Lin | int") -> "Lin":
        if isinstance(other, int):
            return Lin(self.a, self.b + other)
        return Lin(self.a + other.a, self.b + other.b)

    def __sub__(self, other: "Lin | int") -> "Lin":
        if isinstance(other, int):
            return Lin(self.a, self.b - other)
        return Lin(self.a - other.a, self.b - other.b)

    def scale(self, factor: int) -> "Lin":
        """The term multiplied through by ``factor``."""
        return Lin(self.a * factor, self.b * factor)

    def at(self, u: int) -> int:
        """The concrete value at one ``u``."""
        return self.a * u + self.b

    def always_positive(self, u_min: int = 1) -> bool:
        """``a·u + b > 0`` for every ``u >= u_min``.

        Linear in ``u``, so it suffices to check the value at ``u_min``
        when the slope is non-negative; a negative slope is eventually
        negative, hence never *always* positive.
        """
        return self.a >= 0 and self.at(u_min) > 0

    def always_le(self, other: "Lin", u_min: int = 1) -> bool:
        """``self <= other`` for every ``u >= u_min``."""
        diff = other - self
        return diff.a >= 0 and diff.at(u_min) >= 0

    def floordiv_u(self, u_min: int = 1) -> Tuple[int, int] | None:
        """``(q, r)`` with ``a·u + b = q·u + r`` and ``0 <= r < u`` for
        every ``u >= u_min`` -- or ``None`` when the residue depends on
        ``u`` (e.g. ``b >= u_min`` could wrap into the next bucket).

        This is the simplification step that turns ``3u + 1`` into
        "bucket 3, offset 1" without ever fixing ``u``.
        """
        if 0 <= self.b < u_min:
            return (self.a, self.b)
        return None

    def __str__(self) -> str:
        if self.a == 0:
            return str(self.b)
        head = "u" if self.a == 1 else f"{self.a}u"
        if self.b == 0:
            return head
        sign = "+" if self.b > 0 else "-"
        return f"{head}{sign}{abs(self.b)}"


def boundary_terms() -> List[Lin]:
    """Timestamp probes covering every residue class the ``(k·u, (k+1)·u]``
    arithmetic can distinguish: exact multiples, one before, one after,
    the first legal timestamp, and interior offsets."""
    terms: List[Lin] = [Lin(0, 1), Lin(0, 2)]
    for k in K_RANGE:
        terms.append(Lin(k, -1))  # k·u - 1: last point of the previous case
        terms.append(Lin(k, 0))  # k·u: the boundary itself, belongs left
        terms.append(Lin(k, 1))  # k·u + 1: first point of the next interval
        terms.append(Lin(k, 2))  # interior
    return terms


def window_terms() -> List[Tuple[Lin, Lin]]:
    """Query-window probes ``(start, end)`` hitting every alignment case:
    aligned/unaligned on either side, spanning several intervals,
    sub-interval, and single-point windows."""
    return [
        (Lin(0, 0), Lin(1, 0)),  # (0, u]: the first index interval
        (Lin(0, 0), Lin(3, 0)),  # aligned multi-interval
        (Lin(1, 0), Lin(3, 0)),  # aligned, not from zero
        (Lin(0, 1), Lin(2, 0)),  # unaligned start, aligned end
        (Lin(1, 0), Lin(2, 1)),  # aligned start, unaligned end
        (Lin(1, 1), Lin(3, -1)),  # unaligned both sides (degenerate at u=1)
        (Lin(2, -1), Lin(2, 1)),  # straddles one boundary only
        (Lin(0, 1), Lin(0, 2)),  # sub-u window
        (Lin(3, 0), Lin(3, 1)),  # single-point window at a boundary + 1
        (Lin(0, 0), Lin(7, 3)),  # long window, unaligned tail
    ]


def materialize_timestamps(u: int) -> List[int]:
    """Concrete, positive, deduplicated timestamp probes for one ``u``."""
    seen = sorted({term.at(u) for term in boundary_terms() if term.at(u) > 0})
    return seen


def materialize_windows(u: int) -> List[Tuple[int, int]]:
    """Concrete non-empty ``(start, end)`` window probes for one ``u``."""
    out: List[Tuple[int, int]] = []
    seen = set()
    for start_term, end_term in window_terms():
        start, end = start_term.at(u), end_term.at(u)
        if start < 0 or end <= start:
            continue  # the case degenerates at this u (e.g. u-1 == 0)
        if (start, end) not in seen:
            seen.add((start, end))
            out.append((start, end))
    return out


def iter_probe_grid() -> Iterator[Tuple[int, List[int], List[Tuple[int, int]]]]:
    """``(u, timestamps, windows)`` for every grid point."""
    for u in U_GRID:
        yield u, materialize_timestamps(u), materialize_windows(u)
