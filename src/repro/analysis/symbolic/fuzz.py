"""Seeded property-based witness runner for the scheme axioms.

The symbolic verifier proves the axioms over a bounded probe grid; this
module attacks the same axioms from the opposite side, in the style of
the PR 7/8 dynamic cross-checks: fuzz random ``(u, window, events)``
tuples (seeded, ``REPRO_SEED``-honoring) against the project's scheme
and planner classes and record every concrete counterexample as a
witness.  :func:`bridge` then joins the two views per
``(rule, file, class, method)`` site:

* **CONFIRMED** -- a static finding whose site also produced a concrete
  fuzz witness: the symbolic conviction has a runtime counterexample.
* **UNWITNESSED** -- a static finding the fuzzer never hit: either the
  probe grid sees a residue class random sampling is unlikely to land
  on (e.g. exact ``k*u`` boundaries), or a conservative conviction.
* **STATICALLY-INVISIBLE** -- a fuzz witness at a site with no static
  finding: the most valuable kind, it names an axiom the bounded grid
  missed and feeds the next probe-term iteration.

Unlike the static rules (which pin :data:`~repro.analysis.symbolic
.axioms.STATIC_SEED` so lint output is machine-independent), the fuzzer
draws its seed from ``REPRO_SEED`` so CI can sweep seeds over time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.project import Project
from repro.analysis.symbolic.axioms import _ends, canonical_cover
from repro.analysis.symbolic.loader import load_temporal
from repro.analysis.symbolic.verifier import SchemeVerification, verify_project
from repro.common.config import repro_seed

#: Default number of random (u, window, events) rounds per class.
DEFAULT_ROUNDS = 40

_SiteKey = Tuple[str, str, str, str]


@dataclass(frozen=True)
class FuzzWitness:
    """One concrete counterexample found by random probing."""

    rule: str
    path: str
    class_name: str
    method: str
    detail: str

    def site(self) -> _SiteKey:
        """The (rule, file, class, method) join key for the bridge."""
        return (self.rule, self.path, self.class_name, self.method)

    def to_json(self) -> Dict[str, str]:
        """JSON-ready form for the scheme-report artifact."""
        return {
            "rule": self.rule,
            "path": self.path,
            "class": self.class_name,
            "method": self.method,
            "detail": self.detail,
        }


@dataclass
class SchemeFuzzReport:
    """Everything one fuzzing session established."""

    seed: int
    rounds: int
    checks: int = 0
    witnesses: List[FuzzWitness] = field(default_factory=list)

    def sites(self) -> Dict[_SiteKey, FuzzWitness]:
        """First witness per site (the join key for the bridge)."""
        first: Dict[_SiteKey, FuzzWitness] = {}
        for witness in self.witnesses:
            first.setdefault(witness.site(), witness)
        return first


@dataclass
class SchemeBridge:
    """The joined static/fuzz verdicts (PR 7/8 bridge style)."""

    verification: SchemeVerification
    fuzz: SchemeFuzzReport
    confirmed: List[Tuple[_SiteKey, FuzzWitness]] = field(default_factory=list)
    unwitnessed: List[_SiteKey] = field(default_factory=list)
    invisible: List[FuzzWitness] = field(default_factory=list)

    def render_text(self) -> str:
        """Human-readable verdicts, one line per site."""
        lines = [
            f"scheme-bridge: {len(self.verification.violations)} static "
            f"finding(s) vs {len(self.fuzz.witnesses)} fuzz witness(es) "
            f"(seed={self.fuzz.seed}, rounds={self.fuzz.rounds})"
        ]
        for site, witness in self.confirmed:
            lines.append(
                f"CONFIRMED {site[0]} at {site[1]} "
                f"({site[2]}.{site[3]}): {witness.detail}"
            )
        for witness in self.invisible:
            lines.append(
                f"STATICALLY-INVISIBLE {witness.rule} at {witness.path} "
                f"({witness.class_name}.{witness.method}): {witness.detail}"
            )
        for site in self.unwitnessed:
            lines.append(
                f"UNWITNESSED {site[0]} at {site[1]} ({site[2]}.{site[3]})"
            )
        lines.append(
            f"verdict: {len(self.confirmed)} confirmed, "
            f"{len(self.invisible)} statically invisible, "
            f"{len(self.unwitnessed)} unwitnessed"
        )
        return "\n".join(lines)


def fuzz_project(
    project: Project,
    rounds: int = DEFAULT_ROUNDS,
    seed: Optional[int] = None,
) -> SchemeFuzzReport:
    """Random witness hunt over every scheme/planner pair in ``project``."""
    resolved_seed = repro_seed(0) if seed is None else seed
    report = SchemeFuzzReport(seed=resolved_seed, rounds=rounds)
    rng = random.Random(resolved_seed)
    for loaded in load_temporal(project):
        ti_cls = loaded.interval_class()
        relpath = loaded.intervals_file.relpath
        if ti_cls is not None:
            _fuzz_interval_class(ti_cls, relpath, rng, rounds, report)
        for cls in loaded.scheme_classes():
            _fuzz_scheme(cls, ti_cls, relpath, rng, rounds, report)
        if loaded.planners_file is not None:
            for cls in loaded.planner_classes():
                _fuzz_planner(
                    cls, ti_cls, loaded.planners_file.relpath,
                    rng, rounds, report,
                )
    return report


def _fuzz_interval_class(
    ti_cls: type,
    relpath: str,
    rng: random.Random,
    rounds: int,
    report: SchemeFuzzReport,
) -> None:
    """Random half-open probes on the interval value class itself, at
    the same (class, method) sites the static TEMP004 checks use so the
    bridge can join the verdicts."""
    name = ti_cls.__name__
    for _ in range(rounds):
        lo = rng.randint(0, 50)
        hi = lo + rng.randint(1, 50)
        try:
            interval = ti_cls(lo, hi)
        except Exception:  # repro-lint: disable=ERR001 -- verdict, not flow
            continue
        for t, expected in ((lo, False), (lo + 1, True), (hi, True), (hi + 1, False)):
            report.checks += 1
            if bool(interval.contains(t)) != expected:
                report.witnesses.append(FuzzWitness(
                    "TEMP004", relpath, name, "contains",
                    f"({lo}, {hi}].contains({t}) is {not expected}, the "
                    f"(start, end] convention requires {expected}",
                ))
                break
        other_lo = rng.randint(0, 50)
        other_hi = other_lo + rng.randint(1, 50)
        try:
            other = ti_cls(other_lo, other_hi)
        except Exception:  # repro-lint: disable=ERR001 -- verdict, not flow
            continue
        report.checks += 1
        expected_overlap = lo < other_hi and other_lo < hi
        if bool(interval.overlaps(other)) != expected_overlap:
            report.witnesses.append(FuzzWitness(
                "TEMP004", relpath, name, "overlaps",
                f"({lo}, {hi}].overlaps(({other_lo}, {other_hi}]) "
                f"disagrees with endpoint arithmetic ({expected_overlap})",
            ))


def _random_scheme(cls: type, u: int) -> Optional[Any]:
    try:
        return cls(u=u)
    except Exception:  # repro-lint: disable=ERR001 -- constructor shapes vary
        try:
            return cls(u)
        except Exception:  # repro-lint: disable=ERR001
            return None


def _fuzz_scheme(
    cls: type,
    ti_cls: Optional[type],
    relpath: str,
    rng: random.Random,
    rounds: int,
    report: SchemeFuzzReport,
) -> None:
    name = cls.__name__
    for _ in range(rounds):
        u = rng.randint(1, 64)
        scheme = _random_scheme(cls, u)
        if scheme is None:
            return
        t = rng.randint(1, 40 * u)
        report.checks += 1
        try:
            interval = scheme.interval_for(t)
            ends = _ends(interval)
        except Exception as exc:  # repro-lint: disable=ERR001
            report.witnesses.append(FuzzWitness(
                "TEMP002", relpath, name, "interval_for",
                f"u={u}: interval_for({t}) raised {exc!r}",
            ))
            continue
        if ends is None or not (ends[0] < t <= ends[1]):
            report.witnesses.append(FuzzWitness(
                "TEMP002", relpath, name, "interval_for",
                f"u={u}: interval_for({t}) = {ends} does not cover {t}",
            ))
            continue
        report.checks += 1
        if not interval.contains(t):
            report.witnesses.append(FuzzWitness(
                "TEMP004", relpath, name, "interval_for",
                f"u={u}: interval_for({t}) arithmetic covers {t} but "
                "contains() denies it",
            ))
        if ti_cls is None:
            continue
        lo = rng.randint(0, 20 * u)
        hi = lo + rng.randint(1, 20 * u)
        try:
            window = ti_cls(lo, hi)
        except Exception:  # repro-lint: disable=ERR001
            continue
        report.checks += 1
        try:
            pieces = [_ends(iv) for iv in scheme.partition_clipped(window)]
        except Exception as exc:  # repro-lint: disable=ERR001
            report.witnesses.append(FuzzWitness(
                "TEMP002", relpath, name, "partition_clipped",
                f"u={u}: partition_clipped(({lo}, {hi}]) raised {exc!r}",
            ))
            continue
        flaw = _tiling_flaw(pieces, lo, hi)
        if flaw is not None:
            report.witnesses.append(FuzzWitness(
                "TEMP002", relpath, name, "partition_clipped",
                f"u={u}: partition_clipped(({lo}, {hi}]): {flaw}",
            ))


def _fuzz_planner(
    cls: type,
    ti_cls: Optional[type],
    relpath: str,
    rng: random.Random,
    rounds: int,
    report: SchemeFuzzReport,
) -> None:
    if ti_cls is None:
        return
    name = cls.__name__
    for _ in range(rounds):
        u = rng.randint(1, 32)
        planner = _random_planner(cls, u, rng)
        if planner is None:
            return
        lo = rng.randint(0, 12 * u)
        hi = lo + rng.randint(1, 12 * u)
        try:
            window = ti_cls(lo, hi)
        except Exception:  # repro-lint: disable=ERR001
            continue
        count = rng.randint(0, 12)
        events = [_FuzzEvent(rng.randint(lo + 1, hi)) for _ in range(count)]
        events.sort(key=lambda event: event.time)
        report.checks += 1
        try:
            plan = planner.plan(events, window)
            pieces = [_ends(iv) for iv in plan]
        except Exception as exc:  # repro-lint: disable=ERR001
            report.witnesses.append(FuzzWitness(
                "TEMP003", relpath, name, "plan",
                f"u={u}: plan(({lo}, {hi}], {count} events) raised {exc!r}",
            ))
            continue
        flaw = _tiling_flaw(pieces, lo, hi)
        if flaw is not None:
            report.witnesses.append(FuzzWitness(
                "TEMP003", relpath, name, "plan",
                f"u={u}: plan(({lo}, {hi}], {count} events): {flaw}",
            ))
            continue
        clean = [piece for piece in pieces if piece is not None]
        for event in events:
            report.checks += 1
            if not any(p_lo < event.time <= p_hi for p_lo, p_hi in clean):
                report.witnesses.append(FuzzWitness(
                    "TEMP003", relpath, name, "plan",
                    f"u={u}: event t={event.time} uncovered by the plan "
                    f"of ({lo}, {hi}]",
                ))
                break
        levels = list(
            getattr(getattr(planner, "scheme", None), "level_lengths", []) or []
        )
        if levels:
            report.checks += 1
            expected = canonical_cover(levels, lo, hi)
            if clean != expected:
                report.witnesses.append(FuzzWitness(
                    "TEMP003", relpath, name, "plan",
                    f"u={u}: hierarchical plan of ({lo}, {hi}] is {clean}, "
                    f"canonical coarsest cover is {expected}",
                ))


class _FuzzEvent:
    __slots__ = ("time",)

    def __init__(self, time: int) -> None:
        self.time = time


def _random_planner(cls: type, u: int, rng: random.Random) -> Optional[Any]:
    for kwargs in (
        {"u": u},
        {"events_per_interval": rng.randint(1, 4)},
        {"base": rng.choice([1, u]), "ratio": 2.0},
        {},
    ):
        try:
            return cls(**kwargs)
        except Exception:  # repro-lint: disable=ERR001
            continue
    return None


def _tiling_flaw(
    pieces: List[Optional[Tuple[int, int]]], lo: int, hi: int
) -> Optional[str]:
    """One-line description of a tiling defect, or None when exact."""
    if not pieces or any(piece is None for piece in pieces):
        return "no usable intervals"
    clean = [piece for piece in pieces if piece is not None]
    if clean[0][0] != lo:
        return f"starts at {clean[0][0]}, window starts at {lo}"
    if clean[-1][1] != hi:
        return f"ends at {clean[-1][1]}, window ends at {hi}"
    for (a_lo, a_hi), (b_lo, b_hi) in zip(clean, clean[1:]):
        if a_hi != b_lo:
            return f"({a_lo}, {a_hi}] then ({b_lo}, {b_hi}]"
    return None


def bridge(
    project: Project,
    rounds: int = DEFAULT_ROUNDS,
    seed: Optional[int] = None,
) -> SchemeBridge:
    """Join the symbolic verdicts with a fresh fuzzing session."""
    verification = verify_project(project)
    fuzz = fuzz_project(project, rounds=rounds, seed=seed)
    result = SchemeBridge(verification=verification, fuzz=fuzz)
    fuzz_sites = fuzz.sites()
    static_sites = {
        (v.rule, v.relpath, v.class_name, v.method)
        for v in verification.violations
    }
    matched: set = set()
    for site in sorted(static_sites):
        witness = fuzz_sites.get(site)
        if witness is not None:
            result.confirmed.append((site, witness))
            matched.add(site)
        else:
            result.unwitnessed.append(site)
    result.invisible = [
        witness
        for site, witness in sorted(fuzz_sites.items())
        if site not in static_sites
    ]
    return result
