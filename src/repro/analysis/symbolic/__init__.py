"""Symbolic interval-algebra verifier for temporal schemes and planners.

The engine behind the TEMP002/TEMP003/TEMP004 rule families: it loads
the analyzed project's ``temporal/intervals.py`` + ``temporal/planners.py``
(:mod:`.loader`), materializes symbolic boundary/window terms over a
``u``-grid (:mod:`.terms`), checks the scheme axioms and planner
completeness (:mod:`.axioms`), and reports convicted violations as
line-anchored findings (:mod:`.verifier`).  A seeded property-based
fuzzer (:mod:`.fuzz`) attacks the same axioms with random tuples and
bridges CONFIRMED / UNWITNESSED / STATICALLY-INVISIBLE verdicts against
the static findings; :mod:`.report` packages everything as the
``scheme-report.json`` artifact.
"""

from repro.analysis.symbolic.axioms import Violation, canonical_cover
from repro.analysis.symbolic.fuzz import (
    SchemeBridge,
    SchemeFuzzReport,
    bridge,
    fuzz_project,
)
from repro.analysis.symbolic.report import build_scheme_report, render_scheme_report
from repro.analysis.symbolic.terms import K_RANGE, U_GRID, Lin
from repro.analysis.symbolic.verifier import SchemeVerification, verify_project

__all__ = [
    "K_RANGE",
    "Lin",
    "SchemeBridge",
    "SchemeFuzzReport",
    "SchemeVerification",
    "U_GRID",
    "Violation",
    "bridge",
    "build_scheme_report",
    "canonical_cover",
    "fuzz_project",
    "render_scheme_report",
    "verify_project",
]
