"""The rule registry: how rule families plug into the analyzer.

A rule is a class with a ``rule_id``, a docstring (shown by
``repro lint --explain``) and one of two hooks:

* :meth:`Rule.check_file` -- called once per analyzed file whose path the
  rule claims via :meth:`Rule.applies_to`; sees a single
  :class:`~repro.analysis.project.SourceFile`.
* :meth:`Rule.check_project` -- called once per run with the whole
  :class:`~repro.analysis.project.Project`; for cross-file invariants
  like crash-point registry coverage.

Registering is one decorator::

    @register
    class MyRule(Rule):
        rule_id = "XYZ001"
        ...

Rules must be side-effect free and must anchor every finding to a real
line so per-line suppressions work.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Type

from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceFile

_REGISTRY: Dict[str, Type["Rule"]] = {}


class Rule:
    """Base class for one rule family (one rule id)."""

    rule_id: str = ""

    def applies_to(self, relpath: str) -> bool:
        """Whether :meth:`check_file` should run on this file at all."""
        return True

    def check_file(self, source: SourceFile, project: Project) -> List[Finding]:
        """Per-file findings (default: none)."""
        return []

    def check_project(self, project: Project) -> List[Finding]:
        """Whole-project findings (default: none)."""
        return []


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule_class.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.rule_id!r}")
    _REGISTRY[rule_class.rule_id] = rule_class
    return rule_class


def all_rules() -> Dict[str, Type[Rule]]:
    """Every registered rule, importing the built-in rule modules once."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return dict(_REGISTRY)


def instantiate(selected: Iterable[str] = ()) -> List[Rule]:
    """Rule instances for a run.

    Each entry of ``selected`` is a rule id *or prefix*: ``DET`` selects
    every ``DET*`` rule, ``DET002`` exactly one.  Matching is
    case-insensitive; an entry matching nothing raises ``KeyError`` (the
    CLI turns that into a usage error, exit code 2).  A selection made
    entirely of blank entries (``--select ""``, ``--select ,``) is a
    usage error too -- it used to silently run *every* rule, so a typo'd
    CI gate would pass vacuously.
    """
    rules = all_rules()
    entries = list(selected)
    patterns = [entry.strip() for entry in entries if entry.strip()]
    if not patterns:
        if entries:
            raise KeyError(
                "empty --select selection: every entry is blank; drop the "
                "flag to run all rules, or name a rule id or prefix"
            )
        return [rules[rule_id]() for rule_id in sorted(rules)]
    wanted = set()
    unknown = []
    for pattern in patterns:
        matched = {
            rule_id
            for rule_id in rules
            if rule_id.upper().startswith(pattern.upper())
        }
        if not matched:
            unknown.append(pattern)
        wanted |= matched
    if unknown:
        raise KeyError(f"unknown rule ids or prefixes: {sorted(unknown)}")
    return [rules[rule_id]() for rule_id in sorted(wanted)]
