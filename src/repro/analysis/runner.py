"""Drive a lint run: discover, parse, check, suppress, baseline, report."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    prune_baseline,
    save_baseline,
)
from repro.analysis.dataflow.cache import (
    CachedResult,
    LintCache,
    baseline_digest,
    compute_stamps,
    run_fingerprint,
)
from repro.analysis.findings import Finding
from repro.analysis.project import (
    Project,
    build_project,
    discover_files,
    find_project_root,
)
from repro.analysis.registry import all_rules, instantiate


@dataclass
class LintResult:
    """Everything one run produced."""

    project: Project
    #: Findings that survived suppressions and the baseline: these fail CI.
    new_findings: List[Finding]
    #: True when this result was replayed from the mtime+SHA cache (its
    #: ``project`` then carries no parsed files).
    from_cache: bool = False
    #: Findings absorbed by the baseline (reported, non-fatal).
    baselined: List[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing (the baseline should shrink).
    stale_baseline: List[Finding] = field(default_factory=list)
    #: Baseline entries dropped before matching because their file or
    #: rule no longer exists, each with the reason (warned, non-fatal).
    dropped_baseline: List[Tuple[Finding, str]] = field(default_factory=list)
    #: Findings silenced by ``# repro-lint: disable=...`` comments.
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.new_findings

    def render_text(self) -> str:
        """Human-readable report: one line per finding plus a summary."""
        lines: List[str] = []
        for finding in self.new_findings:
            lines.append(finding.render())
        if self.stale_baseline:
            lines.append("")
            lines.append("stale baseline entries (fixed findings -- remove them):")
            for entry in self.stale_baseline:
                lines.append(f"  {entry.render()}")
        if self.dropped_baseline:
            lines.append("")
            lines.append(
                "warning: dropped baseline entries (remove them from the file):"
            )
            for entry, reason in self.dropped_baseline:
                lines.append(f"  {entry.render()} -- {reason}")
        summary = (
            f"repro-lint: {self.files_checked} files, "
            f"{len(self.new_findings)} new finding(s)"
        )
        extras = []
        if self.baselined:
            extras.append(f"{len(self.baselined)} baselined")
        if self.suppressed:
            extras.append(f"{len(self.suppressed)} suppressed")
        if extras:
            summary += f" ({', '.join(extras)})"
        lines.append(summary)
        return "\n".join(lines)

    def render_json(self) -> str:
        """Machine-readable report for CI annotation (``--format json``)."""
        return json.dumps(
            {
                "version": 1,
                "ok": self.ok,
                "files_checked": self.files_checked,
                "findings": [finding.to_json() for finding in self.new_findings],
                "baselined": [finding.to_json() for finding in self.baselined],
                "stale_baseline": [
                    entry.to_json() for entry in self.stale_baseline
                ],
                "dropped_baseline": [
                    {**entry.to_json(), "reason": reason}
                    for entry, reason in self.dropped_baseline
                ],
                "suppressed": [finding.to_json() for finding in self.suppressed],
            },
            indent=2,
        )


def run_lint(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
    select: Sequence[str] = (),
    write_baseline: bool = False,
    cache_path: Optional[Path] = None,
) -> LintResult:
    """Run every (selected) rule over ``paths``.

    ``baseline_path`` pointing at a missing file is treated as an empty
    baseline, so a fresh checkout with no grandfathered findings needs
    no baseline file at all.  With ``write_baseline`` the current
    findings (post-suppression) *become* the baseline and the run
    reports clean.

    ``cache_path`` enables the whole-run mtime+SHA cache: when no input
    file, the selection, or the baseline changed since the last run, the
    previous result is replayed without parsing anything (the replayed
    result's ``project`` is empty).  A relative ``cache_path`` is
    anchored at the project root.  Baseline-writing runs bypass it.
    """
    # Validate the selection *before* the cache lookup: an invalid
    # --select must be a usage error even when a previous run's result
    # could be replayed (the cache fingerprint cannot tell a blank
    # selection from "all rules").
    rules = instantiate(select)

    cache: Optional[LintCache] = None
    stamps = None
    fingerprint = None
    if cache_path is not None and not write_baseline:
        files = discover_files(paths)
        resolved_root = root if root is not None else find_project_root(paths)
        if not cache_path.is_absolute():
            # Anchor at the project root, not the CWD, so every checkout
            # (and every fixture project in the tests) gets its own cache.
            cache_path = resolved_root / cache_path
        cache = LintCache(cache_path)
        stamps = compute_stamps(files, resolved_root, cache.previous_stamps)
        from repro.analysis.footprint.export import dynamic_report_digest

        fingerprint = run_fingerprint(
            stamps,
            select,
            baseline_digest(baseline_path),
            witness=dynamic_report_digest(resolved_root),
        )
        cached = cache.lookup(fingerprint)
        if cached is not None:
            return LintResult(
                project=Project(root=resolved_root, files=[]),
                new_findings=cached.new_findings,
                from_cache=True,
                baselined=cached.baselined,
                stale_baseline=cached.stale_baseline,
                dropped_baseline=cached.dropped_baseline,
                suppressed=cached.suppressed,
                files_checked=cached.files_checked,
            )

    project = build_project(paths, root=root)

    raw: List[Finding] = list(project.parse_failures())
    for rule in rules:
        for source in project.files:
            if source.tree is not None and rule.applies_to(source.relpath):
                raw.extend(rule.check_file(source, project))
        raw.extend(rule.check_project(project))

    suppressed: List[Finding] = []
    active: List[Finding] = []
    sources_by_path = {source.relpath: source for source in project.files}
    for finding in sorted(raw):
        source = sources_by_path.get(finding.path)
        if source is not None and source.is_suppressed(finding.line, finding.rule_id):
            suppressed.append(finding)
        else:
            active.append(finding)

    if write_baseline:
        if baseline_path is None:
            raise ValueError("write_baseline requires a baseline path")
        save_baseline(baseline_path, active)
        return LintResult(
            project=project,
            new_findings=[],
            baselined=active,
            suppressed=suppressed,
            files_checked=len(project.files),
        )

    baseline: List[Finding] = []
    dropped: List[Tuple[Finding, str]] = []
    if baseline_path is not None and baseline_path.exists():
        baseline, dropped = prune_baseline(
            load_baseline(baseline_path), project.root, all_rules()
        )
    new, stale = apply_baseline(active, baseline)
    absorbed = [finding for finding in active if finding not in new]
    result = LintResult(
        project=project,
        new_findings=new,
        baselined=absorbed,
        stale_baseline=stale,
        dropped_baseline=dropped,
        suppressed=suppressed,
        files_checked=len(project.files),
    )
    if cache is not None and stamps is not None and fingerprint is not None:
        cache.store(
            fingerprint,
            stamps,
            CachedResult(
                new_findings=result.new_findings,
                baselined=result.baselined,
                stale_baseline=result.stale_baseline,
                dropped_baseline=result.dropped_baseline,
                suppressed=result.suppressed,
                files_checked=result.files_checked,
            ),
        )
    return result
