"""repro-lint: AST-based determinism & durability analysis.

The execute-order-validate pipeline only works if chaincode is
deterministic, and PR 1's crash-recovery guarantees only hold if every
durable write keeps going through the :class:`~repro.faults.fs.FileSystem`
seam and the fsync-before-rename convention.  Neither invariant is
visible to a conventional linter, so this package turns both into
repo-native static-analysis rules that CI enforces:

========  ==============================================================
Rule      What it catches
========  ==============================================================
CHAIN001  nondeterminism inside ``Chaincode`` subclasses: wall clocks,
          randomness, environment reads, uuid1/uuid4, raw file I/O, and
          iteration over unordered sets flowing into ``put_state``
DUR001    durable-write-path code bypassing the ``FileSystem`` seam
          (raw ``open(..., "w")``, ``os.replace``, ``os.rename``,
          ``Path.write_text`` / ``write_bytes``)
DUR002    rename-finalization (``fs.replace``) with no flush+fsync of
          the temp file beforehand in the same function
CRASH001  crash-point registry drift: registered-but-never-fired points,
          fired-but-unregistered points, and points missing from the
          swept tuples / kill-point sweep tests
ERR001    swallowed exceptions: bare ``except:`` or broad
          ``except Exception`` that does not re-raise unchanged
DET002    interprocedural determinism: a nondeterministic value reaching
          ``put_state``/``del_state`` through *any* chain of helper
          calls, tracked by the project-wide taint engine
          (:mod:`repro.analysis.dataflow`); strictly subsumes CHAIN001
TEMP001   Model M1 ingest contract: every ``"write_index"`` submission
          followed by its ``"clear_index"`` tombstone, and θ-boundary
          arithmetic confined to the interval scheme / planners
CONC001   unlocked ``self.attr`` writes in classes that carry a
          ``threading`` lock (``_locked``-suffix methods exempt)
RES001    ``fs.open`` handles not scoped by ``with``, closed in a
          ``finally``, or owned by ``self``
========  ==============================================================

Entry points: the :func:`run_lint` API and the ``repro lint`` CLI
subcommand (see :mod:`repro.cli`).  Findings can be suppressed per line
with ``# repro-lint: disable=RULE`` and grandfathered in a checked-in
baseline file (see :mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.analysis.registry import all_rules
from repro.analysis.runner import LintResult, run_lint

__all__ = ["Finding", "LintResult", "run_lint", "all_rules"]
