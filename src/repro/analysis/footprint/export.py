"""Footprint report formats and the static/dynamic bridge.

Two consumers, two formats:

* ``repro lint --footprint json`` -- the machine-readable per-entry-point
  summary.  This is also the file the runtime loads
  (:class:`repro.fabric.footprint.ChaincodeFootprint`) to drive
  dependency-aware parallel validation, so its schema is versioned.
* ``repro lint --footprint dot`` -- a bipartite entry-point/namespace
  graph for eyeballing which chaincode functions share key space.

The bridge (consumed by KEY003) follows the race sanitizer's
cross-check pattern: a dynamic witness file (``footprint-report.json``,
written by :class:`repro.fabric.footprint.FootprintRecorder` at
endorsement time) is compared against the static footprints.

* **CONFIRMED** -- a witnessed key falls inside a static namespace: the
  static pass predicted this access.
* **STATICALLY-INVISIBLE** -- a witnessed key matches *no* static
  namespace for that function: the inference has a soundness hole (an
  unrecognized dispatch arm, an unmodeled key construction) and the
  parallel validator must not trust the footprint for that chaincode.
* **UNWITNESSED** -- a static namespace no dynamic run ever touched:
  not an error, but a coverage gap worth knowing when reading reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.footprint.inference import (
    READ_KINDS,
    WRITE_KINDS,
    EntryFootprint,
    FootprintAnalysis,
)
from repro.analysis.footprint.namespaces import KeyPattern, matches

#: Version stamp of the JSON export (bumped on shape changes so the
#: runtime loader can reject stale files).
FOOTPRINT_SCHEMA = 1

#: Filename of the dynamic witness report at the project root.
DYNAMIC_REPORT_NAME = "footprint-report.json"

CONFIRMED = "CONFIRMED"
INVISIBLE = "STATICALLY-INVISIBLE"
UNWITNESSED = "UNWITNESSED"


def entry_to_json(entry: EntryFootprint) -> Dict[str, Any]:
    """One entry point's summary as a JSON-ready dict (schema 1)."""
    return {
        "class": entry.class_qualname,
        "chaincode": entry.chaincode,
        "fn": entry.fn,
        "path": entry.path,
        "line": entry.line,
        "reads": [pattern.to_json() for pattern in entry.reads()],
        "writes": [pattern.to_json() for pattern in entry.writes()],
        "hidden_reads": [
            pattern.to_json() for pattern in entry.hidden_reads()
        ],
        "ops": [
            {
                "op": op.kind,
                "line": op.line,
                "pattern": op.pattern.to_json(),
                "via": list(op.via),
            }
            for op in entry.ops
        ],
    }


def footprint_json(analysis: FootprintAnalysis) -> Dict[str, Any]:
    """The full ``--footprint json`` report."""
    return {
        "schema": FOOTPRINT_SCHEMA,
        "entries": [entry_to_json(entry) for entry in analysis.entries],
    }


def footprint_dot(analysis: FootprintAnalysis) -> str:
    """Bipartite DOT graph: entry points on the left, namespaces on the
    right, solid edges for writes and dashed for reads."""
    lines = [
        "digraph footprint {",
        "  rankdir=LR;",
        '  node [fontname="monospace"];',
    ]
    namespaces: Dict[str, str] = {}

    def namespace_node(pattern: KeyPattern) -> str:
        rendered = pattern.render()
        if rendered not in namespaces:
            namespaces[rendered] = f"ns{len(namespaces)}"
            shape = "doubleoctagon" if pattern.kind == "top" else "ellipse"
            lines.append(
                f'  {namespaces[rendered]} [label="{_dot_escape(rendered)}", '
                f"shape={shape}];"
            )
        return namespaces[rendered]

    for index, entry in enumerate(analysis.entries):
        node = f"ep{index}"
        label = f"{entry.class_name}.{entry.fn}"
        lines.append(f'  {node} [label="{_dot_escape(label)}", shape=box];')
        for pattern in entry.writes():
            lines.append(f"  {node} -> {namespace_node(pattern)};")
        for pattern in entry.reads():
            lines.append(
                f"  {node} -> {namespace_node(pattern)} [style=dashed];"
            )
    lines.append("}")
    return "\n".join(lines) + "\n"


def _dot_escape(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\x00", "\\\\x00")
        .replace("\x02", "\\\\x02")
    )


# -- static/dynamic bridge -------------------------------------------------


@dataclass
class BridgeVerdict:
    """One comparison of a dynamic witness against the static footprint."""

    status: str
    chaincode: str
    fn: str
    detail: str
    #: Anchor for findings/reports (path/line of the static entry point,
    #: or of the chaincode's dispatch when the arm itself is missing).
    path: str = ""
    line: int = 0


def load_dynamic_report(root: Path) -> Optional[Dict[str, Any]]:
    """The witness report at the project root, or ``None`` if absent or
    unreadable (the bridge is strictly opt-in)."""
    path = root / DYNAMIC_REPORT_NAME
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(raw, dict) or "chaincodes" not in raw:
        return None
    return raw


def dynamic_report_digest(root: Path) -> str:
    """Content digest of the witness file (folded into the lint cache
    fingerprint: KEY003's output depends on this file's bytes)."""
    import hashlib

    path = root / DYNAMIC_REPORT_NAME
    try:
        return hashlib.sha256(path.read_bytes()).hexdigest()
    except OSError:
        return "absent"


@dataclass
class _FnFootprint:
    entry: Optional[EntryFootprint] = None
    reads: List[KeyPattern] = field(default_factory=list)
    writes: List[KeyPattern] = field(default_factory=list)


def cross_check(
    analysis: FootprintAnalysis, report: Dict[str, Any]
) -> List[BridgeVerdict]:
    """Compare every witnessed key against the static namespaces."""
    by_fn: Dict[Tuple[str, str], _FnFootprint] = {}
    by_chaincode: Dict[str, List[EntryFootprint]] = {}
    for entry in analysis.entries:
        by_fn[(entry.chaincode, entry.fn)] = _FnFootprint(
            entry=entry,
            reads=entry.patterns(READ_KINDS),
            writes=entry.patterns(WRITE_KINDS),
        )
        by_chaincode.setdefault(entry.chaincode, []).append(entry)

    verdicts: List[BridgeVerdict] = []
    witnessed: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {}
    chaincodes = report.get("chaincodes", {})
    if not isinstance(chaincodes, dict):
        return verdicts
    for chaincode in sorted(chaincodes):
        fns = chaincodes[chaincode]
        if not isinstance(fns, dict):
            continue
        anchors = by_chaincode.get(chaincode, [])
        for fn in sorted(fns):
            access = fns[fn] if isinstance(fns[fn], dict) else {}
            static = by_fn.get((chaincode, fn))
            if static is None:
                if not anchors:
                    # The chaincode itself is outside the analyzed tree
                    # (e.g. constructed dynamically in a test); there is
                    # nothing to anchor a verdict to.
                    continue
                anchor = min(anchors, key=lambda e: e.line)
                verdicts.append(
                    BridgeVerdict(
                        status=INVISIBLE,
                        chaincode=chaincode,
                        fn=fn,
                        detail=(
                            "dispatch arm was exercised dynamically but "
                            "not recognized statically"
                        ),
                        path=anchor.path,
                        line=anchor.line,
                    )
                )
                continue
            entry = static.entry
            assert entry is not None
            for side, patterns in (
                ("reads", static.reads),
                ("writes", static.writes),
            ):
                for key in sorted(set(map(str, access.get(side, ())))):
                    hit = any(matches(p, key) for p in patterns)
                    witnessed.setdefault((chaincode, fn), set()).add(
                        (side, key)
                    )
                    verdicts.append(
                        BridgeVerdict(
                            status=CONFIRMED if hit else INVISIBLE,
                            chaincode=chaincode,
                            fn=fn,
                            detail=(
                                f"witnessed {side[:-1]} of {key!r} "
                                + (
                                    "falls inside the static footprint"
                                    if hit
                                    else "matches no static namespace"
                                )
                            ),
                            path=entry.path,
                            line=entry.line,
                        )
                    )
    # Coverage gaps: static namespaces no dynamic run touched.
    for (chaincode, fn), static in sorted(by_fn.items()):
        if (chaincode, fn) not in witnessed and chaincode in {
            str(name) for name in chaincodes
        }:
            entry = static.entry
            assert entry is not None
            if static.reads or static.writes:
                verdicts.append(
                    BridgeVerdict(
                        status=UNWITNESSED,
                        chaincode=chaincode,
                        fn=fn,
                        detail="static footprint never witnessed dynamically",
                        path=entry.path,
                        line=entry.line,
                    )
                )
    return verdicts


def render_bridge_text(verdicts: List[BridgeVerdict]) -> str:
    """Human-readable cross-check report, one line per verdict."""
    lines = []
    for verdict in verdicts:
        lines.append(
            f"[{verdict.status}] {verdict.chaincode}.{verdict.fn}: "
            f"{verdict.detail} ({verdict.path}:{verdict.line})"
        )
    counts: Dict[str, int] = {}
    for verdict in verdicts:
        counts[verdict.status] = counts.get(verdict.status, 0) + 1
    summary = ", ".join(
        f"{counts.get(status, 0)} {status.lower()}"
        for status in (CONFIRMED, INVISIBLE, UNWITNESSED)
    )
    lines.append(f"bridge: {summary}")
    return "\n".join(lines) + "\n"
