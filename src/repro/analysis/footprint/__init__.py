"""Interprocedural chaincode key-footprint inference.

Computes, per chaincode entry point (dispatch arm), a conservative
summary of the state-key namespaces it can read and write -- exact
literal keys, literal-prefix namespaces, client-argument-determined
keys, or ⊤ -- and exports them for the KEY rule family, for human
inspection (``repro lint --footprint``), and for the runtime parallel
validator (:mod:`repro.fabric.footprint`).
"""

from __future__ import annotations

from repro.analysis.footprint.inference import (
    EntryFootprint,
    FootprintAnalysis,
    footprint_for,
)
from repro.analysis.footprint.namespaces import KeyPattern, matches, overlaps

__all__ = [
    "EntryFootprint",
    "FootprintAnalysis",
    "KeyPattern",
    "footprint_for",
    "matches",
    "overlaps",
]
