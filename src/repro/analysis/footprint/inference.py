"""Interprocedural key-footprint inference over the dataflow engine.

Mirrors the taint engine's two layers (per-function abstract
interpretation, then a fixpoint over the call graph), but the abstract
values are *key terms* (:mod:`~repro.analysis.footprint.namespaces`)
instead of taint labels, and the summaries are **ordered**: each
function's summary is the sequence of state-key operations its body can
perform, with callee operations spliced in at the call site.  Ordering
is what lets KEY002 see a read scheduled after a write of the same
namespace inside one invocation.

Entry points are chaincode dispatch arms: ``invoke`` bodies are split on
``if fn == "record_event":`` tests (including ``elif`` chains and
``fn in (...)`` membership tests), so every chaincode function gets its
own footprint even though Fabric funnels them through one method.  Code
outside any recognized arm is treated as a shared prelude and analyzed
before every arm.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.dataflow.callgraph import CallGraph
from repro.analysis.dataflow.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    SymbolTable,
    dotted_path,
)
from repro.analysis.footprint.namespaces import (
    ArgInput,
    Concat,
    KeyPattern,
    LedgerValue,
    Lit,
    Param,
    Term,
    Unknown,
    concat,
    join_terms,
    normalize,
    substitute,
)
from repro.analysis.nondeterminism import source_kind
from repro.analysis.project import Project

#: Stub-API key operations: method name -> (op kind, key argument index).
#: Matching is by attribute name (like the taint engine's sinks) so the
#: pass works on fixture trees that do not contain the real stub class.
READ_OP = "read"
WRITE_OP = "write"
DELETE_OP = "delete"
SCAN_OP = "scan"
HIDDEN_OP = "hidden-read"

_KEY_APIS: Dict[str, Tuple[str, int]] = {
    "get_state": (READ_OP, 0),
    "put_state": (WRITE_OP, 0),
    "del_state": (DELETE_OP, 0),
    "get_state_by_range": (SCAN_OP, 0),
    "get_state_by_range_with_pagination": (SCAN_OP, 0),
    "get_history_for_key": (HIDDEN_OP, 0),
    "get_private_data": (READ_OP, 1),
    "put_private_data": (WRITE_OP, 1),
    "del_private_data": (DELETE_OP, 1),
}

#: APIs whose result set is defined by a selector, not a key: the read
#: surface is the whole state namespace and never enters the RWSet.
_SELECTOR_APIS = {"get_query_result"}

#: Composite-key framing used by the stub: ``\x00<type>\x00attr\x00...``.
_COMPOSITE_FRAME = "\x00"

#: Writing op kinds (used by the rules and the exporter).
WRITE_KINDS = (WRITE_OP, DELETE_OP)
#: Reading op kinds.
READ_KINDS = (READ_OP, SCAN_OP, HIDDEN_OP)

_MAX_RETURN_TERMS = 6
_MAX_ENV_TERMS = 8


@dataclass(frozen=True)
class KeyOp:
    """One state-key operation a function (transitively) performs."""

    kind: str
    line: int
    term: Term
    via: Tuple[str, ...] = ()


@dataclass
class FunctionKeySummary:
    """Ordered key behaviour of one function, callees folded in."""

    qualname: str
    ops: List[KeyOp] = field(default_factory=list)
    returns: Tuple[Term, ...] = ()

    def snapshot(self) -> Tuple[int, int]:
        return (len(self.ops), len(self.returns))


@dataclass
class NormalizedOp:
    """An entry-point operation with its namespace normalized."""

    kind: str
    line: int
    pattern: KeyPattern
    via: Tuple[str, ...] = ()


@dataclass
class EntryFootprint:
    """The inferred footprint of one chaincode function."""

    class_qualname: str
    class_name: str
    #: The runtime chaincode name (the class's ``name`` attribute).
    chaincode: str
    fn: str
    path: str
    line: int
    ops: List[NormalizedOp] = field(default_factory=list)

    def patterns(self, kinds: Sequence[str]) -> List[KeyPattern]:
        """Distinct key patterns of the ops whose kind is in ``kinds``."""
        unique = {op.pattern for op in self.ops if op.kind in kinds}
        return sorted(unique, key=KeyPattern.sort_key)

    def writes(self) -> List[KeyPattern]:
        """Namespaces this entry point can write or delete."""
        return self.patterns(WRITE_KINDS)

    def reads(self) -> List[KeyPattern]:
        """Namespaces whose reads enter the endorsement-time RWSet."""
        return self.patterns(READ_KINDS)

    def hidden_reads(self) -> List[KeyPattern]:
        """GetHistoryForKey surfaces the RWSet never mentions."""
        return self.patterns((HIDDEN_OP,))


class FootprintAnalysis:
    """Fixpoint key summaries plus per-chaincode entry footprints."""

    def __init__(self, table: SymbolTable, graph: CallGraph) -> None:
        self.table = table
        self.graph = graph
        self.summaries: Dict[str, FunctionKeySummary] = {}
        self.entries: List[EntryFootprint] = []

    @staticmethod
    def build(table: SymbolTable, graph: CallGraph) -> "FootprintAnalysis":
        analysis = FootprintAnalysis(table, graph)
        for qualname in table.functions:
            analysis.summaries[qualname] = FunctionKeySummary(qualname)
        # Via chains never repeat a function name and term width is
        # capped, so the summary universe is finite; the bound is a
        # backstop against pathological growth.
        for _ in range(max(4, len(table.functions))):
            changed = False
            for info in table.functions.values():
                before = analysis.summaries[info.qualname].snapshot()
                analysis.summaries[info.qualname] = _KeyAnalyzer(
                    analysis, info
                ).run()
                if analysis.summaries[info.qualname].snapshot() != before:
                    changed = True
            if not changed:
                break
        analysis._build_entries()
        return analysis

    def summary(self, qualname: str) -> FunctionKeySummary:
        """The fixpoint summary of ``qualname`` (empty if unanalyzed)."""
        return self.summaries.get(qualname, FunctionKeySummary(qualname))

    # -- entry-point extraction -------------------------------------------

    def _build_entries(self) -> None:
        for klass in self.table.chaincode_classes():
            invoke = self.table.method_on(klass.qualname, "invoke")
            if invoke is None:
                continue
            chaincode = _class_constants(self.table, klass).get(
                "name", klass.name
            )
            params = invoke.param_names
            fn_param = params[1] if len(params) > 1 else "fn"
            args_param = params[2] if len(params) > 2 else "args"
            arms = _dispatch_arms(invoke, fn_param)
            if not arms:
                arms = [(invoke.name, invoke.node.lineno, None)]  # type: ignore[attr-defined]
            for fn_name, line, body in arms:
                analyzer = _KeyAnalyzer(
                    self,
                    invoke,
                    entry_env={
                        args_param: (ArgInput(),),
                        fn_param: (Lit(fn_name),),
                    },
                )
                summary = analyzer.run_body(
                    body
                    if body is not None
                    else list(invoke.node.body)  # type: ignore[attr-defined]
                )
                self.entries.append(
                    EntryFootprint(
                        class_qualname=klass.qualname,
                        class_name=klass.name,
                        chaincode=chaincode,
                        fn=fn_name,
                        path=invoke.source.relpath,
                        line=line,
                        ops=[
                            NormalizedOp(
                                kind=op.kind,
                                line=op.line,
                                pattern=normalize(op.term),
                                via=op.via,
                            )
                            for op in summary.ops
                        ],
                    )
                )
        self.entries.sort(key=lambda entry: (entry.class_qualname, entry.fn))


def _dispatch_arms(
    invoke: FunctionInfo, fn_param: str
) -> List[Tuple[str, int, List[ast.stmt]]]:
    """``(fn name, line, arm body)`` for each recognized dispatch arm.

    The shared prelude (statements before the first arm) is prepended to
    every arm body so bindings like a decoded argument list stay
    visible.
    """
    arms: List[Tuple[str, int, List[ast.stmt]]] = []
    prelude: List[ast.stmt] = []
    body: Sequence[ast.stmt] = invoke.node.body  # type: ignore[attr-defined]
    for statement in body:
        matched = _match_arm_chain(statement, fn_param)
        if matched is None:
            if not arms:
                prelude.append(statement)
            continue
        for names, line, arm_body in matched:
            for name in names:
                arms.append((name, line, [*prelude, *arm_body]))
    return arms


def _match_arm_chain(
    statement: ast.stmt, fn_param: str
) -> Optional[List[Tuple[List[str], int, List[ast.stmt]]]]:
    """Decompose ``if fn == ...: ... elif fn == ...: ...`` chains."""
    if not isinstance(statement, ast.If):
        return None
    chain: List[Tuple[List[str], int, List[ast.stmt]]] = []
    current: Optional[ast.stmt] = statement
    while isinstance(current, ast.If):
        names = _arm_names(current.test, fn_param)
        if names is None:
            return chain or None
        chain.append((names, current.lineno, list(current.body)))
        orelse = current.orelse
        if len(orelse) == 1 and isinstance(orelse[0], ast.If):
            current = orelse[0]
        else:
            break
    return chain or None


def _arm_names(test: ast.expr, fn_param: str) -> Optional[List[str]]:
    """The function names an ``if`` test dispatches on, if recognizable."""
    if not (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and test.left.id == fn_param
        and len(test.ops) == 1
    ):
        return None
    comparator = test.comparators[0]
    if isinstance(test.ops[0], ast.Eq):
        if isinstance(comparator, ast.Constant) and isinstance(
            comparator.value, str
        ):
            return [comparator.value]
        return None
    if isinstance(test.ops[0], ast.In) and isinstance(
        comparator, (ast.Tuple, ast.List, ast.Set)
    ):
        names = [
            element.value
            for element in comparator.elts
            if isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ]
        return names or None
    return None


def _class_constants(table: SymbolTable, klass: ClassInfo) -> Dict[str, str]:
    """String constants assigned in the class body (bases included)."""
    constants: Dict[str, str] = {}
    seen: Set[str] = set()
    stack = [klass.qualname]
    order: List[ClassInfo] = []
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        info = table.classes.get(current)
        if info is None:
            continue
        order.append(info)
        stack.extend(info.base_qualnames)
    # Walk bases first so subclasses override.
    for info in reversed(order):
        for statement in info.node.body:
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                target, value = statement.targets[0], statement.value
            elif isinstance(statement, ast.AnnAssign):
                target, value = statement.target, statement.value
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                constants[target.id] = value.value
    return constants


def _module_constants(module: ModuleInfo) -> Dict[str, str]:
    """Top-level string constants (``SEPARATOR = "\\x00"``)."""
    cached = getattr(module, "_footprint_constants", None)
    if cached is not None:
        return cached
    constants: Dict[str, str] = {}
    tree = module.source.tree
    if tree is not None:
        for statement in tree.body:
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                target, value = statement.targets[0], statement.value
            elif isinstance(statement, ast.AnnAssign):
                target, value = statement.target, statement.value
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                constants[target.id] = value.value
    module._footprint_constants = constants  # type: ignore[attr-defined]
    return constants


def _via(prefix: str, via: Tuple[str, ...]) -> Optional[Tuple[str, ...]]:
    """Extend a via chain without repeats (``None`` = drop: recursion)."""
    if prefix in via:
        return None
    return (prefix,) + via


class _KeyAnalyzer:
    """One abstract-interpretation pass collecting ordered key ops."""

    def __init__(
        self,
        analysis: FootprintAnalysis,
        info: FunctionInfo,
        entry_env: Optional[Dict[str, Tuple[Term, ...]]] = None,
    ) -> None:
        self.analysis = analysis
        self.info = info
        self.module: ModuleInfo = analysis.table.modules[info.module]
        self.summary = FunctionKeySummary(info.qualname)
        self.env: Dict[str, Tuple[Term, ...]] = dict(entry_env or {})
        self.entry_mode = entry_env is not None
        self.params: Dict[str, int] = (
            {}
            if self.entry_mode
            else {name: index for index, name in enumerate(info.param_names)}
        )
        self.class_constants: Dict[str, str] = {}
        if info.class_qualname is not None:
            klass = analysis.table.classes.get(info.class_qualname)
            if klass is not None:
                self.class_constants = _class_constants(analysis.table, klass)
        self._seen_ops: Set[KeyOp] = set()
        from repro.analysis.dataflow.taint import _local_types

        self.local_types = _local_types(analysis, info)  # type: ignore[arg-type]

    def run(self) -> FunctionKeySummary:
        return self.run_body(list(self.info.node.body))  # type: ignore[attr-defined]

    def run_body(self, body: List[ast.stmt]) -> FunctionKeySummary:
        # Two extra passes let bindings introduced late in a loop body
        # reach uses earlier in it; the env only grows.
        for iteration in range(3):
            if iteration:
                # Ops were already recorded (in order) on the first pass;
                # later passes only refine the env, so re-recording would
                # duplicate and mis-order them.
                before = {name: len(terms) for name, terms in self.env.items()}
                probe = _KeyAnalyzer(self.analysis, self.info)
                probe.env = dict(self.env)
                probe.params = self.params
                probe.entry_mode = self.entry_mode
                probe.class_constants = self.class_constants
                for statement in body:
                    probe._stmt(statement)
                if {
                    name: len(terms) for name, terms in probe.env.items()
                } == before:
                    break
                self.env = probe.env
                self.summary = FunctionKeySummary(self.info.qualname)
                self._seen_ops = set()
            for statement in body:
                self._stmt(statement)
        return self.summary

    # -- statements --------------------------------------------------------

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            terms = self._eval(node.value)
            for target in node.targets:
                self._bind(target, terms)
            self._bind_fields(node.targets, node.value)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._bind(node.target, self._eval(node.value))
                self._bind_fields([node.target], node.value)
        elif isinstance(node, ast.AugAssign):
            terms = _cross_concat(
                self._eval(node.target), self._eval(node.value)
            )
            self._bind(node.target, terms)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self._record_return(self._eval(node.value))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._bind(node.target, self._eval(node.iter))
            for child in (*node.body, *node.orelse):
                self._stmt(child)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                terms = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, terms)
            for child in node.body:
                self._stmt(child)
        elif isinstance(node, (ast.If, ast.While)):
            self._eval(node.test)
            for child in (*node.body, *node.orelse):
                self._stmt(child)
        elif isinstance(node, ast.Try):
            for child in (*node.body, *node.orelse, *node.finalbody):
                self._stmt(child)
            for handler in node.handlers:
                for child in handler.body:
                    self._stmt(child)
        elif isinstance(node, (ast.Expr, ast.Assert, ast.Raise, ast.Delete)):
            for value in ast.iter_child_nodes(node):
                if isinstance(value, ast.expr):
                    self._eval(value)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are summarized on their own
        else:
            for value in ast.iter_child_nodes(node):
                if isinstance(value, ast.expr):
                    self._eval(value)
                elif isinstance(value, ast.stmt):
                    self._stmt(value)

    def _bind(self, target: ast.expr, terms: Tuple[Term, ...]) -> None:
        if isinstance(target, ast.Name):
            if terms:
                merged = tuple(
                    dict.fromkeys((*self.env.get(target.id, ()), *terms))
                )
                if len(merged) > _MAX_ENV_TERMS:
                    merged = (join_terms(merged),)
                self.env[target.id] = merged
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, terms)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, terms)
        # attribute / subscript targets stay untracked (like the taint pass)

    def _bind_fields(
        self, targets: Sequence[ast.expr], value: ast.expr
    ) -> None:
        """Limited field sensitivity: ``event = Event(key=expr)`` binds
        ``event.key`` so a later ``stub.put_state(event.key, ...)``
        resolves to ``expr``'s namespace instead of the whole object."""
        if not isinstance(value, ast.Call):
            return
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            for keyword in value.keywords:
                if keyword.arg is None:
                    continue
                terms = self._eval(keyword.value)
                if terms:
                    self.env[f"{target.id}.{keyword.arg}"] = terms

    def _record_return(self, terms: Tuple[Term, ...]) -> None:
        merged = tuple(dict.fromkeys((*self.summary.returns, *terms)))
        if len(merged) > _MAX_RETURN_TERMS:
            merged = (join_terms(merged),)
        self.summary.returns = merged

    def _record_op(self, op: KeyOp) -> None:
        if op not in self._seen_ops:
            self._seen_ops.add(op)
            self.summary.ops.append(op)

    # -- expressions -------------------------------------------------------

    def _eval(self, node: ast.expr) -> Tuple[Term, ...]:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str):
                return (Lit(node.value),)
            return ()
        if isinstance(node, ast.Name):
            return self._eval_name(node)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.JoinedStr):
            return self._eval_fstring(node)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            return _cross_concat(self._eval(node.left), self._eval(node.right))
        if isinstance(node, ast.Lambda):
            return ()
        if isinstance(node, ast.Subscript):
            # Only the container's namespace flows through an index; the
            # slice (often a dict-literal key) must not, or ``d["name"]``
            # would pretend to be the state key ``"name"``.
            self._eval(node.slice)
            return self._eval(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            return self._eval_comprehension(node)
        # containers, comparisons, conditionals, subscripts, starred:
        # the union of the parts.
        terms: Tuple[Term, ...] = ()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                terms = _merge(terms, self._eval(child))
        return terms

    def _eval_name(self, node: ast.Name) -> Tuple[Term, ...]:
        if isinstance(getattr(node, "ctx", None), ast.Store):
            return ()
        terms: Tuple[Term, ...] = self.env.get(node.id, ())
        if node.id in self.params:
            terms = _merge(terms, (Param(self.params[node.id]),))
        if not terms:
            constant = _module_constants(self.module).get(node.id)
            if constant is not None:
                return (Lit(constant),)
            constant = self.class_constants.get(node.id)
            if constant is not None:
                return (Lit(constant),)
            dotted = self.module.aliases.get(node.id)
            if dotted is not None and source_kind(dotted) is not None:
                return (Unknown(),)
        return terms

    def _eval_attribute(self, node: ast.Attribute) -> Tuple[Term, ...]:
        dotted = self.module.aliases and dotted_path(node, self.module.aliases)
        if dotted and source_kind(dotted) is not None:
            return (Unknown(),)
        if isinstance(node.value, ast.Name):
            field_terms = self.env.get(f"{node.value.id}.{node.attr}")
            if field_terms:
                return field_terms
            if node.value.id in ("self", "cls"):
                constant = self.class_constants.get(node.attr)
                if constant is not None:
                    return (Lit(constant),)
        return self._eval(node.value)

    def _eval_fstring(self, node: ast.JoinedStr) -> Tuple[Term, ...]:
        combos: List[Tuple[Term, ...]] = [()]
        for part in node.values:
            if isinstance(part, ast.Constant):
                options: Tuple[Term, ...] = (
                    (Lit(str(part.value)),) if part.value != "" else (Lit(""),)
                )
            elif isinstance(part, ast.FormattedValue):
                evaluated = self._eval(part.value)
                options = evaluated if evaluated else (ArgInput(),)
                if len(options) > 1:
                    options = (join_terms(options),)
            else:
                options = (Unknown(),)
            combos = [(*combo, option) for combo in combos for option in options]
        return tuple(concat(*combo) for combo in combos)

    def _eval_comprehension(self, node: ast.expr) -> Tuple[Term, ...]:
        terms: Tuple[Term, ...] = ()
        for generator in node.generators:  # type: ignore[attr-defined]
            iter_terms = self._eval(generator.iter)
            self._bind(generator.target, iter_terms)
            terms = _merge(terms, iter_terms)
            for condition in generator.ifs:
                self._eval(condition)
        if isinstance(node, ast.DictComp):
            terms = _merge(terms, self._eval(node.key))
            terms = _merge(terms, self._eval(node.value))
        else:
            terms = _merge(terms, self._eval(node.elt))  # type: ignore[attr-defined]
        return terms

    def _eval_call(self, node: ast.Call) -> Tuple[Term, ...]:
        func = node.func

        # Stub-API key operations, matched by attribute name exactly like
        # the taint engine's ``put_state`` sinks.
        if isinstance(func, ast.Attribute) and func.attr in _KEY_APIS:
            kind, key_index = _KEY_APIS[func.attr]
            key_terms: Tuple[Term, ...] = ()
            for index, arg in enumerate(node.args):
                terms = self._eval(arg)
                if index == key_index:
                    key_terms = terms
            for keyword in node.keywords:
                terms = self._eval(keyword.value)
                if keyword.arg == "key" and not key_terms:
                    key_terms = terms
            for term in key_terms or (Unknown(),):
                self._record_op(KeyOp(kind=kind, line=node.lineno, term=term))
            if kind in (READ_OP, SCAN_OP, HIDDEN_OP):
                return (LedgerValue(),)
            return ()
        if isinstance(func, ast.Attribute) and func.attr in _SELECTOR_APIS:
            self._eval_other_args(node, skip=-1)
            self._record_op(
                KeyOp(kind=HIDDEN_OP, line=node.lineno, term=Unknown())
            )
            return (LedgerValue(),)
        if isinstance(func, ast.Attribute) and func.attr == "get_tx_timestamp":
            return (ArgInput(),)
        if isinstance(func, ast.Attribute) and func.attr == "create_composite_key":
            # ``\x00<type>\x00attr\x00...`` -- modeled explicitly so the
            # returned namespace keeps the frame instead of degrading to
            # the bare object type (which would be *false* precision).
            type_terms = self._eval(node.args[0]) if node.args else ()
            attr_terms: Tuple[Term, ...] = ()
            for arg in node.args[1:]:
                attr_terms = _merge(attr_terms, self._eval(arg))
            type_term = (
                join_terms(type_terms) if type_terms else ArgInput()
            )
            tail = join_terms(attr_terms) if attr_terms else ArgInput()
            return (
                concat(
                    Lit(_COMPOSITE_FRAME),
                    type_term,
                    Lit(_COMPOSITE_FRAME),
                    tail,
                ),
            )
        if isinstance(func, ast.Attribute) and func.attr in (
            "get_state_by_partial_composite_key",
        ):
            type_terms = self._eval(node.args[0]) if node.args else ()
            for arg in node.args[1:]:
                self._eval(arg)
            prefix = concat(
                Lit(_COMPOSITE_FRAME),
                join_terms(type_terms) if type_terms else ArgInput(),
                Lit(_COMPOSITE_FRAME),
            )
            self._record_op(
                KeyOp(kind=SCAN_OP, line=node.lineno, term=prefix)
            )
            return (LedgerValue(),)

        arg_terms = self._call_arg_terms(node)
        all_args: Tuple[Term, ...] = ()
        for terms in arg_terms.values():
            all_args = _merge(all_args, terms)

        # The call itself may be a nondeterministic source.
        dotted: Optional[str] = None
        if isinstance(func, ast.Attribute):
            dotted = dotted_path(func, self.module.aliases)
        elif isinstance(func, ast.Name):
            alias = self.module.aliases.get(func.id)
            dotted = alias if alias is not None and "." in alias else None
        if dotted is not None and source_kind(dotted) is not None:
            return (Unknown(),)

        callee = self._resolve_callee(node)
        if callee is None:
            # Deterministic-function assumption (mirrors the taint
            # engine): an unresolved call computes something from its
            # inputs, so its result lives in the union of their
            # namespaces.
            return all_args

        callee_summary = self.analysis.summary(callee.qualname)
        substitution = {
            index: (terms[0] if len(terms) == 1 else join_terms(terms))
            for index, terms in arg_terms.items()
            if terms
        }
        for op in callee_summary.ops:
            via = _via(callee.name, op.via)
            if via is None:
                continue
            self._record_op(
                replace(
                    op,
                    line=node.lineno,
                    term=substitute(op.term, substitution),
                    via=via,
                )
            )
        if callee_summary.returns:
            return tuple(
                dict.fromkeys(
                    substitute(term, substitution)
                    for term in callee_summary.returns
                )
            )
        # A callee that returns nothing trackable (constructors, helpers
        # built from arithmetic) still computes from its inputs.
        return all_args

    def _eval_other_args(self, node: ast.Call, skip: int) -> None:
        """Evaluate non-key arguments for their side effects (nested
        calls to the stub still record their operations in order)."""
        for index, arg in enumerate(node.args):
            if index != skip:
                self._eval(arg)
        for keyword in node.keywords:
            self._eval(keyword.value)

    def _call_arg_terms(self, node: ast.Call) -> Dict[int, Tuple[Term, ...]]:
        terms: Dict[int, Tuple[Term, ...]] = {}
        starred: Tuple[Term, ...] = ()
        position = 0
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                starred = _merge(starred, self._eval(arg.value))
                continue
            terms[position] = self._eval(arg)
            position += 1
        callee = self._resolve_callee(node)
        names = callee.param_names if callee is not None else []
        for keyword in node.keywords:
            value = self._eval(keyword.value)
            if keyword.arg is None:
                starred = _merge(starred, value)
            elif keyword.arg in names:
                index = names.index(keyword.arg)
                terms[index] = _merge(terms.get(index, ()), value)
            else:
                starred = _merge(starred, value)
        if starred:
            span = max(len(names), position, max(terms, default=-1) + 1)
            for index in range(span):
                terms[index] = _merge(terms.get(index, ()), starred)
        return terms

    def _resolve_callee(self, node: ast.Call) -> Optional[FunctionInfo]:
        qualname = self.analysis.graph.resolve_call(
            self.info, node, self.local_types
        )
        if qualname is None:
            return None
        return self.analysis.table.functions.get(qualname)


def _merge(left: Tuple[Term, ...], right: Tuple[Term, ...]) -> Tuple[Term, ...]:
    merged = tuple(dict.fromkeys((*left, *right)))
    if len(merged) > _MAX_ENV_TERMS:
        return (join_terms(merged),)
    return merged


def _cross_concat(
    left: Tuple[Term, ...], right: Tuple[Term, ...]
) -> Tuple[Term, ...]:
    if not left:
        return right
    if not right:
        return left
    if len(left) > 3:
        left = (join_terms(left),)
    if len(right) > 3:
        right = (join_terms(right),)
    return tuple(
        dict.fromkeys(
            concat(first, second) for first in left for second in right
        )
    )


def footprint_for(project: Project) -> FootprintAnalysis:
    """The memoized :class:`FootprintAnalysis` for ``project`` (shares
    the symbol table and call graph with the taint engine)."""
    cached = getattr(project, "_footprint_analysis", None)
    if cached is None:
        from repro.analysis.dataflow import dataflow_for

        taint = dataflow_for(project)
        cached = FootprintAnalysis.build(taint.table, taint.graph)
        project._footprint_analysis = cached  # type: ignore[attr-defined]
    return cached
