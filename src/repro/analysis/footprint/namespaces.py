"""The key-namespace abstract domain footprint inference computes over.

A chaincode builds state keys four ways, and the domain has one shape
for each:

* a string literal (``stub.put_state("\\x02m1-runs", ...)``) or a class
  constant -- an exact key, :data:`LIT`;
* concatenation / f-strings with a literal head
  (``f"idx\\x00{key}"``) -- a literal *prefix* namespace, :data:`PRE`;
* a value derived deterministically from the transaction's client
  arguments (``key, *_ = args``) -- :data:`ARG`: opaque to the static
  pass but fixed at endorsement time, so the dynamic RWSet witnesses it
  and the parallel validator can group by the exact keys;
* everything else -- a value read back from the ledger, a
  nondeterministic source, unbounded growth -- :data:`TOP`: the
  chaincode can touch *any* key, which is exactly what KEY001 flags.

Internally the inference works on richer *terms* (concatenations with
unresolved parameters) so summaries compose across calls; terms
:func:`normalize` into the four-shape :class:`KeyPattern` lattice when
they escape into reports, rules or the runtime footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple, Union

#: Caps keeping term growth (and therefore the fixpoint) finite: terms
#: wider than this collapse to their normalized pattern, and literal
#: prefixes longer than this are truncated into an open prefix.
MAX_TERM_PARTS = 12
MAX_LITERAL_LENGTH = 256

# -- terms (internal representation) --------------------------------------


@dataclass(frozen=True)
class Lit:
    """A known literal fragment."""

    text: str


@dataclass(frozen=True)
class Param:
    """The enclosing function's parameter ``index`` (pre-substitution)."""

    index: int


@dataclass(frozen=True)
class ArgInput:
    """A value derived from the transaction's client-supplied arguments."""


@dataclass(frozen=True)
class LedgerValue:
    """A value read back from the ledger (unknowable before execution)."""


@dataclass(frozen=True)
class Unknown:
    """A value from a nondeterministic source or untracked construct."""


@dataclass(frozen=True)
class Concat:
    """Ordered concatenation of fragments (f-strings, ``+``, joins)."""

    parts: Tuple["Term", ...]


Term = Union[Lit, Param, ArgInput, LedgerValue, Unknown, Concat]


def concat(*parts: Term) -> Term:
    """Build a concatenation, flattening nested ones and folding adjacent
    literals; collapses to a coarse term when it exceeds the width cap."""
    flat: list[Term] = []
    for part in parts:
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    folded: list[Term] = []
    for part in flat:
        if (
            folded
            and isinstance(part, Lit)
            and isinstance(folded[-1], Lit)
        ):
            folded[-1] = Lit(folded[-1].text + part.text)
        else:
            folded.append(part)
    if len(folded) == 1:
        return folded[0]
    if len(folded) > MAX_TERM_PARTS:
        return _collapse(folded)
    return Concat(tuple(folded))


def _collapse(parts: list[Term]) -> Term:
    """Over-approximate an oversized concatenation without losing its
    literal prefix or its top-ness."""
    pattern = normalize(Concat(tuple(parts[:MAX_TERM_PARTS])))
    tail_is_unknown = any(
        isinstance(part, (LedgerValue, Unknown)) for part in parts
    )
    if pattern.kind == LIT:
        head: Term = Lit(pattern.text)
    elif pattern.kind == PRE:
        head = Lit(pattern.text)
    else:
        return Unknown() if tail_is_unknown else ArgInput()
    tail: Term = Unknown() if tail_is_unknown else ArgInput()
    return Concat((head, tail))


def substitute(term: Term, arguments: Dict[int, Term]) -> Term:
    """Replace :class:`Param` leaves with the caller's argument terms.

    A parameter the caller did not supply stays opaque client input: the
    polarity errs toward :data:`ARG` (precise enough for reports) rather
    than :data:`TOP` (which would make every helper call a KEY001 hit).
    """
    if isinstance(term, Param):
        return arguments.get(term.index, ArgInput())
    if isinstance(term, Concat):
        return concat(*(substitute(part, arguments) for part in term.parts))
    return term


# -- normalized patterns (exported representation) ------------------------

LIT = "lit"
PRE = "pre"
ARG = "arg"
TOP = "top"

#: Lattice order for reporting: most precise first.
_KIND_ORDER = {LIT: 0, PRE: 1, ARG: 2, TOP: 3}


@dataclass(frozen=True)
class KeyPattern:
    """One normalized key namespace: ``lit:<key>``, ``pre:<prefix>``,
    ``arg`` (client-determined) or ``top`` (unresolvable)."""

    kind: str
    text: str = ""

    def render(self) -> str:
        if self.kind in (LIT, PRE):
            return f"{self.kind}:{self.text!r}"
        return "⊤" if self.kind == TOP else self.kind

    def to_json(self) -> Dict[str, Any]:
        """Export shape: ``kind`` plus ``key``/``prefix`` where bound."""
        payload: Dict[str, Any] = {"kind": self.kind}
        if self.kind in (LIT, PRE):
            payload["key" if self.kind == LIT else "prefix"] = self.text
        return payload

    @staticmethod
    def from_json(raw: Dict[str, Any]) -> "KeyPattern":
        kind = str(raw.get("kind", TOP))
        if kind == LIT:
            return KeyPattern(LIT, str(raw.get("key", "")))
        if kind == PRE:
            return KeyPattern(PRE, str(raw.get("prefix", "")))
        return KeyPattern(kind if kind in (ARG, TOP) else TOP)

    def sort_key(self) -> Tuple[int, str]:
        """Deterministic ordering: lattice position, then text."""
        return (_KIND_ORDER.get(self.kind, 9), self.text)


def normalize(term: Term) -> KeyPattern:
    """Collapse a (substitution-free) term into the exported lattice."""
    if isinstance(term, Lit):
        if len(term.text) > MAX_LITERAL_LENGTH:
            return KeyPattern(PRE, term.text[:MAX_LITERAL_LENGTH])
        return KeyPattern(LIT, term.text)
    if isinstance(term, (Param, ArgInput)):
        # Free parameters only escape for functions analyzed outside an
        # entry-point context; client-input polarity keeps them useful.
        return KeyPattern(ARG)
    if isinstance(term, (LedgerValue, Unknown)):
        return KeyPattern(TOP)
    parts = term.parts
    prefix = ""
    rest = 0
    for index, part in enumerate(parts):
        if isinstance(part, Lit):
            prefix += part.text
        else:
            rest = len(parts) - index
            break
    else:
        rest = 0
    if rest == 0:
        return normalize(Lit(prefix))
    tail = parts[len(parts) - rest :]
    if any(isinstance(part, (LedgerValue, Unknown)) for part in tail):
        # An unresolvable fragment *after* a literal head still bounds
        # the namespace; with no head at all the key is unconstrained.
        return KeyPattern(PRE, prefix[:MAX_LITERAL_LENGTH]) if prefix else KeyPattern(TOP)
    return KeyPattern(PRE, prefix[:MAX_LITERAL_LENGTH]) if prefix else KeyPattern(ARG)


def join_terms(terms: Tuple[Term, ...]) -> Term:
    """One term standing for "any of ``terms``" (used to cap env growth)."""
    if not terms:
        return Unknown()
    if len(terms) == 1:
        return terms[0]
    patterns = [normalize(term) for term in terms]
    worst = max(patterns, key=lambda p: _KIND_ORDER.get(p.kind, 9))
    if worst.kind == LIT:
        common = _common_prefix([p.text for p in patterns])
        if all(p.text == patterns[0].text for p in patterns):
            return Lit(patterns[0].text)
        return Concat((Lit(common), ArgInput())) if common else ArgInput()
    if worst.kind == PRE:
        common = _common_prefix(
            [p.text for p in patterns if p.kind in (LIT, PRE)]
        )
        return Concat((Lit(common), ArgInput())) if common else ArgInput()
    return Unknown() if worst.kind == TOP else ArgInput()


def _common_prefix(texts: list[str]) -> str:
    if not texts:
        return ""
    shortest = min(texts, key=len)
    for index, char in enumerate(shortest):
        if any(text[index] != char for text in texts):
            return shortest[:index]
    return shortest


# -- pattern relations -----------------------------------------------------


def overlaps(left: KeyPattern, right: KeyPattern) -> bool:
    """Whether two namespaces can contain a common key (conservative)."""
    if left.kind in (ARG, TOP) or right.kind in (ARG, TOP):
        return True
    if left.kind == LIT and right.kind == LIT:
        return left.text == right.text
    if left.kind == LIT:
        return left.text.startswith(right.text)
    if right.kind == LIT:
        return right.text.startswith(left.text)
    return left.text.startswith(right.text) or right.text.startswith(left.text)


def matches(pattern: KeyPattern, key: str) -> bool:
    """Whether a concrete state key falls inside a namespace."""
    if pattern.kind == LIT:
        return key == pattern.text
    if pattern.kind == PRE:
        return key.startswith(pattern.text)
    return True  # arg and top admit any key
