"""The baseline file: grandfathered findings that do not fail the run.

Workflow: when a new rule lands (or an old one gets stricter) and some
existing findings are judged acceptable-for-now, run::

    repro lint src --write-baseline

and commit the resulting ``lint-baseline.json``.  Subsequent runs
subtract baselined findings and fail only on *new* ones, so the rule can
start gating CI immediately without a flag-day cleanup.  Entries match
on ``(rule, path, message)`` -- not the line number -- so unrelated
edits that shift code do not resurrect them; the stored line is purely
for humans reading the file.  Fixing a baselined finding leaves a stale
entry behind, which the runner reports so the baseline only ever
shrinks.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, List, Tuple

from repro.analysis.findings import Finding

FORMAT_VERSION = 1


def load_baseline(path: Path) -> List[Finding]:
    """Parse a baseline file; raises ``ValueError`` on a malformed one."""
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(raw, dict) or raw.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"baseline {path} has unsupported format {raw.get('version')!r}"
            if isinstance(raw, dict)
            else f"baseline {path} is not a JSON object"
        )
    entries = raw.get("findings", [])
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path}: 'findings' must be a list")
    return [Finding.from_json(entry) for entry in entries]


def save_baseline(path: Path, findings: List[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, one entry per line
    of JSON so diffs review well)."""
    document = {
        "version": FORMAT_VERSION,
        "findings": [finding.to_json() for finding in sorted(findings)],
    }
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")


def prune_baseline(
    baseline: List[Finding],
    root: Path,
    known_rules: Iterable[str],
) -> Tuple[List[Finding], List[Tuple[Finding, str]]]:
    """Split a loaded baseline into (usable, dropped-with-reason).

    An entry whose rule id is no longer registered, or whose file no
    longer exists under the project root, can never match a finding
    again -- keeping it would hide the fact that the baseline has
    rotted.  Such entries are dropped with a reason the runner surfaces
    as a warning, so the committed file gets cleaned up instead of
    accumulating dead weight.
    """
    rules = set(known_rules)
    kept: List[Finding] = []
    dropped: List[Tuple[Finding, str]] = []
    for entry in baseline:
        if entry.rule_id not in rules:
            dropped.append(
                (entry, f"rule {entry.rule_id} is no longer registered")
            )
        elif not (root / entry.path).exists():
            dropped.append((entry, f"file {entry.path} no longer exists"))
        else:
            kept.append(entry)
    return kept, dropped


def apply_baseline(
    findings: List[Finding], baseline: List[Finding]
) -> Tuple[List[Finding], List[Finding]]:
    """Split ``findings`` into (new, stale-baseline-entries).

    Matching is multiset-style on :meth:`Finding.baseline_key`: a
    baseline entry absorbs at most one finding, so two new instances of
    a baselined pattern still surface one new finding.
    """
    budget = Counter(entry.baseline_key() for entry in baseline)
    new: List[Finding] = []
    for finding in sorted(findings):
        key = finding.baseline_key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            new.append(finding)
    remaining = Counter({key: count for key, count in budget.items() if count > 0})
    stale: List[Finding] = []
    for entry in baseline:
        key = entry.baseline_key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            stale.append(entry)
    return new, stale
