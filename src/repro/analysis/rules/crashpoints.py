"""CRASH001: the crash-point registry must match reality.

The kill-point sweep (``tests/faults/test_crash_sweep.py`` /
``test_m1_resume.py``) iterates the registry tuples in
``repro/faults/crashpoints.py`` and kills the process at every named
point.  That guarantee decays in three silent ways:

* a point is registered but its ``crash_point(NAME)`` call was removed
  (or never added) -- the sweep "passes" by never firing it;
* code fires ``crash_point`` with a name the registry does not know --
  the new point is never swept, so crashes there are untested;
* a constant exists but is missing from ``COMMIT_CRASH_POINTS`` /
  ``M1_CRASH_POINTS`` (the tuples the sweep parametrizes over), or a
  swept tuple is no longer referenced by any test under
  ``tests/faults/``.

This rule cross-checks all three.  It keys off the analyzed file whose
path ends in ``repro/faults/crashpoints.py``; when that file is not part
of the run (linting an unrelated subtree) the rule is silent.  The
test-reference check reads ``tests/faults/*.py`` relative to the project
root and is skipped when no such directory exists (e.g. an installed
tree).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceFile
from repro.analysis.registry import Rule, register

_REGISTRY_SUFFIX = "repro/faults/crashpoints.py"
_SWEEP_TUPLES = ("COMMIT_CRASH_POINTS", "M1_CRASH_POINTS")


class _RegistryModel:
    """Parsed view of the crashpoints module."""

    def __init__(self, source: SourceFile) -> None:
        #: constant name -> (string value, definition line)
        self.constants: Dict[str, Tuple[str, int]] = {}
        #: tuple name -> (member constant names, definition line)
        self.tuples: Dict[str, Tuple[List[str], int]] = {}
        assert source.tree is not None
        for node in source.tree.body:  # type: ignore[attr-defined]
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if isinstance(node.value, ast.Constant) and isinstance(node.value.value, str):
                if target.id.isupper():
                    self.constants[target.id] = (node.value.value, node.lineno)
            else:
                members = self._tuple_members(node.value)
                if members is not None:
                    self.tuples[target.id] = (members, node.lineno)

    def _tuple_members(self, node: ast.expr) -> Optional[List[str]]:
        if isinstance(node, (ast.Tuple, ast.List)):
            members: List[str] = []
            for element in node.elts:
                if not isinstance(element, ast.Name):
                    return None
                members.append(element.id)
            return members
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            left = self._resolved(node.left)
            right = self._resolved(node.right)
            if left is not None and right is not None:
                return left + right
        return None

    def _resolved(self, node: ast.expr) -> Optional[List[str]]:
        if isinstance(node, ast.Name) and node.id in self.tuples:
            return self.tuples[node.id][0]
        return self._tuple_members(node)

    def swept_constants(self) -> Set[str]:
        """Constant names reachable from the sweep tuples."""
        swept: Set[str] = set()
        for tuple_name in _SWEEP_TUPLES:
            members, _ = self.tuples.get(tuple_name, ([], 0))
            swept.update(members)
        return swept


def _fire_sites(
    source: SourceFile, registry_values: Dict[str, str]
) -> List[Tuple[str, Optional[str], int]]:
    """Every ``crash_point(...)`` call in ``source``.

    Returns ``(display, resolved_value, line)`` where ``resolved_value``
    is the point's string name when resolvable (a registry constant or a
    string literal) and ``None`` for dynamic arguments.
    """
    if source.tree is None:
        return []
    sites: List[Tuple[str, Optional[str], int]] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "crash_point" or not node.args:
            continue
        argument = node.args[0]
        if isinstance(argument, ast.Name):
            sites.append(
                (argument.id, registry_values.get(argument.id), node.lineno)
            )
        elif isinstance(argument, ast.Constant) and isinstance(argument.value, str):
            value = argument.value
            resolved = value if value in registry_values.values() else None
            sites.append((repr(value), resolved, node.lineno))
        else:
            sites.append((ast.dump(argument)[:40], None, node.lineno))
    return sites


@register
class CrashPointCoverageRule(Rule):
    """CRASH001: registered, fired and swept crash points must agree."""

    rule_id = "CRASH001"

    def check_project(self, project: Project) -> List[Finding]:
        registry_file = project.find(_REGISTRY_SUFFIX)
        if registry_file is None or registry_file.tree is None:
            return []
        model = _RegistryModel(registry_file)
        registry_values = {
            name: value for name, (value, _) in model.constants.items()
        }
        findings: List[Finding] = []

        fired_constants: Set[str] = set()
        for source in project.files:
            if source is registry_file:
                continue
            for display, resolved, line in _fire_sites(source, registry_values):
                if resolved is None:
                    findings.append(
                        Finding(
                            path=source.relpath,
                            line=line,
                            rule_id=self.rule_id,
                            message=(
                                f"crash_point({display}) fires a point the "
                                "registry does not know; add a constant to "
                                "repro/faults/crashpoints.py and a sweep "
                                "tuple entry so the kill-point sweep tests it"
                            ),
                        )
                    )
                else:
                    for name, value in registry_values.items():
                        if value == resolved:
                            fired_constants.add(name)

        swept = model.swept_constants()
        for name, (_, line) in sorted(model.constants.items()):
            if name not in swept:
                findings.append(
                    Finding(
                        path=registry_file.relpath,
                        line=line,
                        rule_id=self.rule_id,
                        message=(
                            f"crash point {name} is registered but missing "
                            "from the swept tuples (COMMIT_CRASH_POINTS / "
                            "M1_CRASH_POINTS); the kill-point sweep will "
                            "never test it"
                        ),
                    )
                )
            elif name not in fired_constants:
                findings.append(
                    Finding(
                        path=registry_file.relpath,
                        line=line,
                        rule_id=self.rule_id,
                        message=(
                            f"crash point {name} is registered but no "
                            "crash_point() call site fires it; the sweep "
                            "passes vacuously -- re-instrument the write "
                            "path or retire the constant"
                        ),
                    )
                )

        findings.extend(self._check_sweep_tests(project, registry_file, model))
        return findings

    def _check_sweep_tests(
        self, project: Project, registry_file: SourceFile, model: _RegistryModel
    ) -> List[Finding]:
        """Each swept tuple must be referenced by some tests/faults test."""
        tests_dir = project.root / "tests" / "faults"
        if not tests_dir.is_dir():
            return []
        corpus = "\n".join(
            path.read_text(encoding="utf-8", errors="replace")
            for path in sorted(tests_dir.glob("*.py"))
        )
        findings: List[Finding] = []
        for tuple_name in _SWEEP_TUPLES:
            if tuple_name not in model.tuples:
                continue
            _, line = model.tuples[tuple_name]
            if tuple_name not in corpus:
                findings.append(
                    Finding(
                        path=registry_file.relpath,
                        line=line,
                        rule_id=self.rule_id,
                        message=(
                            f"sweep tuple {tuple_name} is not referenced by "
                            "any test under tests/faults/; the kill-point "
                            "sweep no longer covers these points"
                        ),
                    )
                )
        return findings
