"""Concurrency rules over lock-carrying classes.

Four rule families share one opt-in convention: any class whose
``__init__`` binds a ``threading`` lock to ``self.<attr>`` is treated
as shared across threads, project-wide.

* **CONC001** (syntactic): attribute writes happen under *a* lock.
* **CONC002** (lockset): the project-wide lock-*acquisition-order*
  graph is acyclic -- cycles are static deadlocks, reported with the
  witness path of every hop; a plain ``Lock`` re-acquired while held is
  the degenerate one-lock case (self-deadlock).
* **CONC003** (lockset): no blocking operation (filesystem-seam I/O,
  ``time.sleep``, future ``.result()``, ``queue.get``) runs while a
  lock is held, directly or through any resolved call chain.  Sites
  where blocking under the lock is the *point* are allowlisted with a
  justification (see ``BLOCKING_ALLOWLIST``).
* **CONC004** (lockset): check-then-act -- a guarded attribute read
  outside the lock feeding a decision whose locked arm writes that same
  attribute; the value can change between the check and the act.

CONC002-004 are built on :mod:`repro.analysis.cfg`: per-function CFGs,
a lockset dataflow, and interprocedural propagation over the call
graph.  The engine over-approximates held locks (may-analysis), so
these rules can report a lock as held on a path that releases it early;
they never miss a lexically-held one.

The ROADMAP's parallel-ingestion work shares three objects across
threads: the :class:`~repro.fabric.gateway.Gateway` (concurrent clients
submitting transactions), and the state-db backends
:class:`~repro.storage.kv.memstore.MemStore` and
:class:`~repro.storage.kv.lsm.LSMStore` (reads racing the indexer's
writes).  Those classes carry a ``threading`` lock for exactly that
reason -- and a lock only helps if every writer takes it.  A new method
that rebinds an attribute without the lock is invisible to tests (races
do not reproduce under pytest) and surfaces as a corrupted table list or
a lost retry count under real load, which is why the Fabric-tuning
literature keeps finding these bugs in the validation/commit path.

The rule is convention-driven, not file-driven: any class whose
``__init__`` binds a ``threading.Lock``/``RLock``/``Condition``/
``Semaphore`` to ``self.<something>`` opts in, project-wide.  Inside
such a class every ``self.attr = ...`` / ``self.attr += ...`` must be
lexically inside a ``with self.<lock>:`` block, except:

* ``__init__`` / ``__new__`` / ``__del__`` -- construction and teardown
  happen before/after the object is shared;
* methods named ``*_locked`` -- the documented convention for helpers
  whose caller already holds the lock;
* rebinding the lock attributes themselves.

Reads are deliberately not checked: the codebase tolerates racy reads
(metrics, ``__len__``) and flagging them would drown the signal.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.cfg import lockset_for
from repro.analysis.cfg.builder import CFGNode
from repro.analysis.cfg.lockset import (
    Chain,
    FunctionLocks,
    LockRef,
    LocksetAnalysis,
    class_locks,
)
from repro.analysis.dataflow import dataflow_for
from repro.analysis.dataflow.symbols import ClassInfo, FunctionInfo
from repro.analysis.findings import Finding
from repro.analysis.project import Project
from repro.analysis.registry import Rule, register

_EXEMPT_METHODS = {"__init__", "__new__", "__del__"}


def _is_lock_guard(item: ast.withitem, lock_attrs: Set[str]) -> bool:
    """Whether a ``with`` item acquires one of the class's locks
    (``with self._lock:`` -- optionally aliased ``as held``)."""
    expr = item.context_expr
    if isinstance(expr, ast.Call):  # with self._lock.acquire_timeout(...)-style
        expr = expr.func
        if isinstance(expr, ast.Attribute):
            expr = expr.value
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr in lock_attrs
    )


@register
class LockedAttributeWriteRule(Rule):
    """CONC001: once a class has a lock, attribute writes take it."""

    rule_id = "CONC001"

    def check_project(self, project: Project) -> List[Finding]:
        analysis = dataflow_for(project)
        findings: List[Finding] = []
        for qualname in sorted(analysis.table.classes):
            klass = analysis.table.classes[qualname]
            if not klass.lock_attrs:
                continue
            for name in sorted(klass.methods):
                if name in _EXEMPT_METHODS or name.endswith("_locked"):
                    continue
                findings.extend(self._check_method(klass, klass.methods[name]))
        return findings

    def _check_method(
        self, klass: ClassInfo, method: FunctionInfo
    ) -> List[Finding]:
        findings: List[Finding] = []

        def flag(node: ast.AST, attr: str) -> None:
            findings.append(
                Finding(
                    path=klass.source.relpath,
                    line=node.lineno,  # type: ignore[attr-defined]
                    rule_id=self.rule_id,
                    message=(
                        f"self.{attr} is written outside `with "
                        f"self.{sorted(klass.lock_attrs)[0]}:` in "
                        f"{klass.name}.{method.name}(); this class is "
                        "shared across threads, so an unlocked write "
                        "races every locked reader -- take the lock (or "
                        "suffix the method `_locked` if the caller holds "
                        "it)"
                    ),
                )
            )

        def written_attrs(statement: ast.stmt) -> List[ast.Attribute]:
            targets: List[ast.expr] = []
            if isinstance(statement, ast.Assign):
                targets = list(statement.targets)
            elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
                targets = [statement.target]
            attrs: List[ast.Attribute] = []
            for target in targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    attrs.extend(
                        element
                        for element in target.elts
                        if isinstance(element, ast.Attribute)
                    )
                elif isinstance(target, ast.Attribute):
                    attrs.append(target)
            return [
                attr
                for attr in attrs
                if isinstance(attr.value, ast.Name)
                and attr.value.id == "self"
                and attr.attr not in klass.lock_attrs
            ]

        def visit(statements: List[ast.stmt], locked: bool) -> None:
            for statement in statements:
                if isinstance(statement, (ast.With, ast.AsyncWith)):
                    holds = locked or any(
                        _is_lock_guard(item, klass.lock_attrs)
                        for item in statement.items
                    )
                    visit(statement.body, holds)
                    continue
                if isinstance(
                    statement,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    continue  # nested scopes escape `self`'s convention
                if not locked:
                    for attr in written_attrs(statement):
                        flag(attr, attr.attr)
                for name in ("body", "orelse", "finalbody"):
                    block = getattr(statement, name, None)
                    if (
                        isinstance(block, list)
                        and block
                        and isinstance(block[0], ast.stmt)
                    ):
                        visit(block, locked)
                for handler in getattr(statement, "handlers", []) or []:
                    visit(handler.body, locked)

        visit(method.node.body, locked=False)  # type: ignore[attr-defined]
        return findings


def _chain_suffix(chain: Optional[Chain]) -> str:
    """Render the call steps below the reporting site (`` via a:1 -> b:2``)."""
    if not chain:
        return ""
    return " via " + " -> ".join(f"{step}:{line}" for step, line in chain)


#: Sites where blocking while holding the lock is the design, not a bug.
#: Keyed by function qualname; the value is the set of blocking-op kinds
#: that site is allowed (anything else still fires) plus the reason the
#: finding message would otherwise demand.
BLOCKING_ALLOWLIST: Dict[str, Tuple[FrozenSet[str], str]] = {
    "repro.fabric.blockcache.BlockCache.get_or_load": (
        frozenset({"future-wait"}),
        "single-flight rendezvous: waiters block on the loader's future by design",
    ),
    "repro.storage.kv.lsm.LSMStore.put": (
        frozenset({"io"}),
        "WAL append must precede the memtable write under the lock (recovery order)",
    ),
    "repro.storage.kv.lsm.LSMStore.delete": (
        frozenset({"io"}),
        "WAL append must precede the memtable delete under the lock (recovery order)",
    ),
    "repro.storage.kv.lsm.LSMStore.flush": (
        frozenset({"io"}),
        "flush publishes the sstable and truncates the WAL atomically w.r.t. writers",
    ),
    "repro.storage.kv.lsm.LSMStore.close": (
        frozenset({"io"}),
        "close must drain the final flush before marking the store closed",
    ),
    "repro.storage.kv.lsm.LSMStore.scrub": (
        frozenset({"io"}),
        "scrub re-verifies table checksums against a stable table list; "
        "concurrent flush/compaction swapping tables mid-scrub would "
        "misreport a replaced file as corrupt",
    ),
    # BlockFileManager: the shared append handle and the current-file
    # number ARE the guarded resource -- every touch (append, rollover,
    # flush-for-read, sealed-file mapping, tail truncation, sync) must
    # happen under the manager lock or readers race the committer
    # (the blockfile-races regression suite exists because they did).
    "repro.storage.blockfile.BlockFileManager.append": (
        frozenset({"io"}),
        "append writes the record and may roll the file under the lock; "
        "a reader must never observe a half-rolled current handle",
    ),
    "repro.storage.blockfile.BlockFileManager._roll_over": (
        frozenset({"io"}),
        "closing the full file and opening its successor must be atomic "
        "w.r.t. readers flushing the shared append handle",
    ),
    "repro.storage.blockfile.BlockFileManager._sealed_map": (
        frozenset({"io"}),
        "the mmap cache is keyed by file number; mapping outside the lock "
        "could map a file the committer is still appending to",
    ),
    "repro.storage.blockfile.BlockFileManager.truncate_tail": (
        frozenset({"io"}),
        "recovery truncation rewrites the current file and rebinds the "
        "append handle; concurrent reads would see a torn file",
    ),
    "repro.storage.blockfile.BlockFileManager.sync": (
        frozenset({"io"}),
        "sync must flush/fsync the same handle generation it observed; "
        "racing a rollover could sync the freshly-closed handle",
    ),
    # BTreeStore: WAL-before-tree ordering under the lock, exactly like
    # the LSM store's entries above.
    "repro.storage.kv.btree.BTreeStore.put": (
        frozenset({"io"}),
        "WAL append must precede the tree write under the lock (recovery "
        "order); the interval checkpoint shares the same critical section",
    ),
    "repro.storage.kv.btree.BTreeStore.delete": (
        frozenset({"io"}),
        "WAL append must precede the tree delete under the lock (recovery "
        "order); the interval checkpoint shares the same critical section",
    ),
    "repro.storage.kv.btree.BTreeStore.checkpoint": (
        frozenset({"io"}),
        "checkpoint publishes the sstable and truncates the WAL atomically "
        "w.r.t. writers; a write between the two would be lost on replay",
    ),
    "repro.storage.kv.btree.BTreeStore.scrub": (
        frozenset({"io"}),
        "scrub verifies the checkpoint against a stable view; a concurrent "
        "checkpoint replacing the file mid-scrub would misreport corruption",
    ),
    "repro.storage.kv.btree.BTreeStore.close": (
        frozenset({"io"}),
        "close must drain the final checkpoint before marking the store "
        "closed",
    ),
}


@register
class LockOrderCycleRule(Rule):
    """CONC002: the project lock-acquisition order must be acyclic.

    Two threads taking the same pair of locks in opposite orders is the
    classic deadlock, and it never reproduces under pytest -- the window
    is microseconds wide.  This rule builds the project-wide graph with
    one edge ``A -> B`` whenever some code path may acquire ``B`` while
    holding ``A`` (lexical ``with`` blocks, explicit ``acquire()``, and
    acquisitions reached through any resolved call chain), then reports
    every cycle with the witness path of each hop, so the fix -- pick
    one global order -- is mechanical.  Re-entrant ``RLock`` self-edges
    are fine and skipped; a plain ``Lock`` re-acquired while already
    held deadlocks a thread against itself and is reported here too.
    The same graph is exported by ``repro lint --lock-graph {dot,json}``.
    """

    rule_id = "CONC002"

    def check_project(self, project: Project) -> List[Finding]:
        analysis = lockset_for(project)
        order = analysis.order
        findings: List[Finding] = []
        for lock, witness in sorted(order.self_deadlocks.items()):
            findings.append(
                Finding(
                    path=witness.path,
                    line=witness.line,
                    rule_id=self.rule_id,
                    message=(
                        f"{lock.short} is a plain threading.{lock.kind} "
                        f"re-acquired while already held in "
                        f"{witness.describe()}; the thread deadlocks "
                        "against itself -- use an RLock or drop the "
                        "nested acquisition"
                    ),
                )
            )
        for cycle in order.cycles():
            hops = []
            for position, lock in enumerate(cycle):
                following = cycle[(position + 1) % len(cycle)]
                witness = order.witness(lock, following)
                hops.append(
                    f"{lock.short} -> {following.short} in {witness.describe()}"
                )
            anchor = order.witness(cycle[0], cycle[1 % len(cycle)])
            findings.append(
                Finding(
                    path=anchor.path,
                    line=anchor.line,
                    rule_id=self.rule_id,
                    message=(
                        "lock-order cycle (possible deadlock): "
                        + "; ".join(hops)
                        + " -- acquire these locks in one global order"
                    ),
                )
            )
        return findings


@register
class BlockingUnderLockRule(Rule):
    """CONC003: no blocking operation while a lock is held.

    A lock held across a filesystem call, ``time.sleep``, a future
    ``.result()`` or a ``queue.get`` serializes every other thread
    behind that latency -- the parallel query path's speedup quietly
    collapses to the slowest disk read.  The rule follows resolved call
    chains, so hiding the I/O two helpers down still fires.  Sites
    where blocking under the lock *is* the contract (the BlockCache
    single-flight wait, the LSM store's WAL-before-memtable ordering)
    are allowlisted by qualname and kind in ``BLOCKING_ALLOWLIST`` with
    the justification the message would otherwise demand; the allowlist
    is per-kind, so ``time.sleep`` under the LSM lock still fires.
    """

    rule_id = "CONC003"

    def check_project(self, project: Project) -> List[Finding]:
        analysis = lockset_for(project)
        findings: List[Finding] = []
        for qualname in sorted(analysis.functions):
            summary = analysis.functions[qualname]
            if summary.info.name in _EXEMPT_METHODS:
                continue
            allowed = BLOCKING_ALLOWLIST.get(qualname, (frozenset(), ""))[0]
            # (line, kind, description, held locks, chain below the call)
            events: List[
                Tuple[int, str, str, FrozenSet[LockRef], Optional[Chain]]
            ] = []
            for op, held in summary.blocking:
                if held:
                    events.append((op.line, op.kind, op.description, held, None))
            for callee, line, held in summary.calls:
                if not held:
                    continue
                for kind, (chain, description) in sorted(
                    analysis.transitive_blocking.get(callee, {}).items()
                ):
                    events.append((line, kind, description, held, chain))
            reported: Set[Tuple[str, str]] = set()
            for line, kind, description, held, chain in sorted(
                events, key=lambda event: (event[0], event[1])
            ):
                if kind in allowed:
                    continue
                for lock in sorted(held):
                    key = (lock.label, kind)
                    if key in reported:
                        continue
                    reported.add(key)
                    findings.append(
                        Finding(
                            path=summary.info.source.relpath,
                            line=line,
                            rule_id=self.rule_id,
                            message=(
                                f"{description} ({kind}) may block while "
                                f"holding {lock.short} in "
                                f"{summary.info.scope_name}."
                                f"{summary.info.name}()"
                                f"{_chain_suffix(chain)}; every other "
                                "thread queues behind this latency -- do "
                                "the blocking work outside the lock, or "
                                "allowlist the site with a justification"
                            ),
                        )
                    )
        return findings


def _stmt_written_attrs(stmt: ast.AST) -> Set[str]:
    """``self.<attr>`` names a simple statement writes (attribute
    rebinding or item assignment through the attribute)."""
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    written: Set[str] = set()
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            candidates: List[ast.expr] = list(target.elts)
        else:
            candidates = [target]
        for candidate in candidates:
            if isinstance(candidate, ast.Subscript):
                candidate = candidate.value
            if (
                isinstance(candidate, ast.Attribute)
                and isinstance(candidate.value, ast.Name)
                and candidate.value.id == "self"
            ):
                written.add(candidate.attr)
    return written


def _guarded_attr_reads(expr: ast.AST, guarded: Set[str]) -> Set[str]:
    """Guarded ``self.<attr>`` names an expression reads."""
    return {
        node.attr
        for node in ast.walk(expr)
        if isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in guarded
    }


@register
class CheckThenActRule(Rule):
    """CONC004: don't check a guarded attribute outside the lock and act
    on the answer inside it.

    ``if self.x: with self._lock: self.x = ...`` is atomic-looking code
    with a race in the gap: another thread can change ``self.x`` between
    the unlocked read and the locked write, so the write acts on a stale
    decision.  An attribute counts as *guarded* when some method writes
    it under the class's lock (or in a ``*_locked`` helper); the rule
    then flags ``if``/``while`` tests that read a guarded attribute --
    directly or through a local assigned from one -- with no lock held,
    when an arm of that same statement writes the attribute under the
    lock.  Reads that never feed a locked write stay legal (the codebase
    tolerates racy reads; see CONC001's rationale).
    """

    rule_id = "CONC004"

    def check_project(self, project: Project) -> List[Finding]:
        analysis = lockset_for(project)
        table = analysis.table
        findings: List[Finding] = []
        for class_qualname in sorted(table.classes):
            klass = table.classes[class_qualname]
            locks = class_locks(table, class_qualname)
            if not locks:
                continue
            lock_refs = frozenset(locks.values())
            guarded = self._guarded_attrs(analysis, klass, lock_refs)
            guarded -= set(locks)
            if not guarded:
                continue
            for name in sorted(klass.methods):
                if name in _EXEMPT_METHODS or name.endswith("_locked"):
                    continue
                summary = analysis.functions.get(klass.methods[name].qualname)
                if summary is not None:
                    findings.extend(
                        self._check_method(summary, guarded, lock_refs)
                    )
        return findings

    @staticmethod
    def _guarded_attrs(
        analysis: LocksetAnalysis,
        klass: ClassInfo,
        lock_refs: FrozenSet[LockRef],
    ) -> Set[str]:
        guarded: Set[str] = set()
        for name in sorted(klass.methods):
            if name in _EXEMPT_METHODS:
                continue
            summary = analysis.functions.get(klass.methods[name].qualname)
            if summary is None:
                continue
            locked_helper = name.endswith("_locked")
            for node in summary.cfg.real_nodes():
                if node.kind != "stmt" or node.stmt is None:
                    continue
                if locked_helper or (
                    summary.held_at[node.index] & lock_refs
                ):
                    guarded |= _stmt_written_attrs(node.stmt)
        return guarded

    def _check_method(
        self,
        summary: FunctionLocks,
        guarded: Set[str],
        lock_refs: FrozenSet[LockRef],
    ) -> List[Finding]:
        findings: List[Finding] = []
        stmt_nodes = {
            id(node.stmt): node
            for node in summary.cfg.real_nodes()
            if node.kind == "stmt" and node.stmt is not None
        }
        #: local name -> guarded attrs its current value was read from
        #: without the lock (assignment order approximates flow order).
        tainted: Dict[str, Set[str]] = {}
        for node in summary.cfg.real_nodes():
            held = summary.held_at[node.index] & lock_refs
            stmt = node.stmt
            if (
                node.kind == "stmt"
                and isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                reads = _guarded_attr_reads(stmt.value, guarded)
                tainted[stmt.targets[0].id] = reads if not held else set()
                continue
            if node.kind not in ("test", "loop"):
                continue
            if not isinstance(stmt, (ast.If, ast.While)):
                continue
            if held:
                continue
            reads = _guarded_attr_reads(stmt.test, guarded)
            for name_node in ast.walk(stmt.test):
                if isinstance(name_node, ast.Name):
                    reads |= tainted.get(name_node.id, set())
            if not reads:
                continue
            finding = self._locked_write_below(
                summary, node.line, stmt, reads, lock_refs, stmt_nodes
            )
            if finding is not None:
                findings.append(finding)
        return findings

    def _locked_write_below(
        self,
        summary: FunctionLocks,
        test_line: int,
        stmt: ast.stmt,
        reads: Set[str],
        lock_refs: FrozenSet[LockRef],
        stmt_nodes: Dict[int, CFGNode],
    ) -> Optional[Finding]:
        for sub in ast.walk(stmt):
            if sub is stmt or not isinstance(sub, ast.stmt):
                continue
            written = _stmt_written_attrs(sub) & reads
            if not written:
                continue
            write_node = stmt_nodes.get(id(sub))
            if write_node is None:
                continue
            if not (summary.held_at[write_node.index] & lock_refs):
                continue
            attr = sorted(written)[0]
            lock = sorted(summary.held_at[write_node.index] & lock_refs)[0]
            return Finding(
                path=summary.info.source.relpath,
                line=test_line,
                rule_id=self.rule_id,
                message=(
                    f"self.{attr} is checked here without {lock.short} "
                    f"but written under it at line {write_node.line} "
                    f"({summary.info.scope_name}.{summary.info.name}()); "
                    "the value can change between the check and the act "
                    "-- move the check inside the locked region"
                ),
            )
        return None
