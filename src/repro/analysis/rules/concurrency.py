"""CONC001: shared-class attributes are written under the class's lock.

The ROADMAP's parallel-ingestion work shares three objects across
threads: the :class:`~repro.fabric.gateway.Gateway` (concurrent clients
submitting transactions), and the state-db backends
:class:`~repro.storage.kv.memstore.MemStore` and
:class:`~repro.storage.kv.lsm.LSMStore` (reads racing the indexer's
writes).  Those classes carry a ``threading`` lock for exactly that
reason -- and a lock only helps if every writer takes it.  A new method
that rebinds an attribute without the lock is invisible to tests (races
do not reproduce under pytest) and surfaces as a corrupted table list or
a lost retry count under real load, which is why the Fabric-tuning
literature keeps finding these bugs in the validation/commit path.

The rule is convention-driven, not file-driven: any class whose
``__init__`` binds a ``threading.Lock``/``RLock``/``Condition``/
``Semaphore`` to ``self.<something>`` opts in, project-wide.  Inside
such a class every ``self.attr = ...`` / ``self.attr += ...`` must be
lexically inside a ``with self.<lock>:`` block, except:

* ``__init__`` / ``__new__`` / ``__del__`` -- construction and teardown
  happen before/after the object is shared;
* methods named ``*_locked`` -- the documented convention for helpers
  whose caller already holds the lock;
* rebinding the lock attributes themselves.

Reads are deliberately not checked: the codebase tolerates racy reads
(metrics, ``__len__``) and flagging them would drown the signal.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.dataflow import dataflow_for
from repro.analysis.dataflow.symbols import ClassInfo, FunctionInfo
from repro.analysis.findings import Finding
from repro.analysis.project import Project
from repro.analysis.registry import Rule, register

_EXEMPT_METHODS = {"__init__", "__new__", "__del__"}


def _is_lock_guard(item: ast.withitem, lock_attrs: Set[str]) -> bool:
    """Whether a ``with`` item acquires one of the class's locks
    (``with self._lock:`` -- optionally aliased ``as held``)."""
    expr = item.context_expr
    if isinstance(expr, ast.Call):  # with self._lock.acquire_timeout(...)-style
        expr = expr.func
        if isinstance(expr, ast.Attribute):
            expr = expr.value
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr in lock_attrs
    )


@register
class LockedAttributeWriteRule(Rule):
    """CONC001: once a class has a lock, attribute writes take it."""

    rule_id = "CONC001"

    def check_project(self, project: Project) -> List[Finding]:
        analysis = dataflow_for(project)
        findings: List[Finding] = []
        for qualname in sorted(analysis.table.classes):
            klass = analysis.table.classes[qualname]
            if not klass.lock_attrs:
                continue
            for name in sorted(klass.methods):
                if name in _EXEMPT_METHODS or name.endswith("_locked"):
                    continue
                findings.extend(self._check_method(klass, klass.methods[name]))
        return findings

    def _check_method(
        self, klass: ClassInfo, method: FunctionInfo
    ) -> List[Finding]:
        findings: List[Finding] = []

        def flag(node: ast.AST, attr: str) -> None:
            findings.append(
                Finding(
                    path=klass.source.relpath,
                    line=node.lineno,  # type: ignore[attr-defined]
                    rule_id=self.rule_id,
                    message=(
                        f"self.{attr} is written outside `with "
                        f"self.{sorted(klass.lock_attrs)[0]}:` in "
                        f"{klass.name}.{method.name}(); this class is "
                        "shared across threads, so an unlocked write "
                        "races every locked reader -- take the lock (or "
                        "suffix the method `_locked` if the caller holds "
                        "it)"
                    ),
                )
            )

        def written_attrs(statement: ast.stmt) -> List[ast.Attribute]:
            targets: List[ast.expr] = []
            if isinstance(statement, ast.Assign):
                targets = list(statement.targets)
            elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
                targets = [statement.target]
            attrs: List[ast.Attribute] = []
            for target in targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    attrs.extend(
                        element
                        for element in target.elts
                        if isinstance(element, ast.Attribute)
                    )
                elif isinstance(target, ast.Attribute):
                    attrs.append(target)
            return [
                attr
                for attr in attrs
                if isinstance(attr.value, ast.Name)
                and attr.value.id == "self"
                and attr.attr not in klass.lock_attrs
            ]

        def visit(statements: List[ast.stmt], locked: bool) -> None:
            for statement in statements:
                if isinstance(statement, (ast.With, ast.AsyncWith)):
                    holds = locked or any(
                        _is_lock_guard(item, klass.lock_attrs)
                        for item in statement.items
                    )
                    visit(statement.body, holds)
                    continue
                if isinstance(
                    statement,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    continue  # nested scopes escape `self`'s convention
                if not locked:
                    for attr in written_attrs(statement):
                        flag(attr, attr.attr)
                for name in ("body", "orelse", "finalbody"):
                    block = getattr(statement, name, None)
                    if (
                        isinstance(block, list)
                        and block
                        and isinstance(block[0], ast.stmt)
                    ):
                        visit(block, locked)
                for handler in getattr(statement, "handlers", []) or []:
                    visit(handler.body, locked)

        visit(method.node.body, locked=False)  # type: ignore[attr-defined]
        return findings
