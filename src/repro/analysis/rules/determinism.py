"""CHAIN001: chaincode must be deterministic.

Fabric's execute-order-validate pipeline endorses a transaction by
running the chaincode on one peer and validating the recorded write set
everywhere else.  Anything that can differ between two executions --
wall clocks, randomness, the process environment, uuid1/uuid4, local
file I/O, or Python's per-process ``str`` hash randomization leaking
through ``set`` iteration order -- silently produces endorsements that
other peers would not reproduce, which surfaces much later as validation
failures (and would corrupt the history-db that the temporal indexes
are built from).

The rule activates inside any class that (transitively, within the same
file) inherits from a base named ``Chaincode`` and flags:

* any use of the ``time``, ``random`` or ``secrets`` modules;
* ``uuid.uuid1`` / ``uuid.uuid4`` / ``uuid.getnode`` (uuid3/uuid5 are
  content hashes and stay legal);
* ``datetime.now`` / ``utcnow`` / ``today`` on anything imported from
  ``datetime``;
* ``os.environ`` / ``os.getenv`` / ``os.urandom`` / ``os.getpid`` /
  ``os.cpu_count``;
* the ``input`` and ``open`` builtins (peer-local I/O);
* ``for`` loops iterating an unordered ``set`` whose body stages writes
  via ``put_state`` / ``del_state`` / ``put_private_data`` (wrap the
  iterable in ``sorted(...)`` to fix).  Plain ``dict`` iteration is
  insertion-ordered in Python and is deliberately not flagged.

Chaincode should derive every varying value from its arguments or from
``stub.get_tx_timestamp()``, which is part of the ordered transaction.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.nondeterminism import (
    BANNED_ATTRS as _BANNED_ATTRS,
    BANNED_BUILTINS as _BANNED_BUILTINS,
    BANNED_MODULES as _BANNED_MODULES,
    DATETIME_CLOCK_ATTRS as _DATETIME_CLOCK_ATTRS,
    WRITE_METHODS as _WRITE_METHODS,
    is_set_expression as _is_set_expression,
    set_typed_names as _set_typed_names,
)
from repro.analysis.project import Project, SourceFile
from repro.analysis.registry import Rule, register


def _import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the dotted path they import, module-wide.

    ``import time as t``        -> ``{"t": "time"}``
    ``from random import seed`` -> ``{"seed": "random.seed"}``
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _dotted_path(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve ``node`` to a dotted path rooted at an imported module."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def _chaincode_classes(tree: ast.AST) -> List[ast.ClassDef]:
    """Classes inheriting (within this file) from a base named Chaincode."""
    classes = [node for node in ast.walk(tree) if isinstance(node, ast.ClassDef)]
    chaincode_names: Set[str] = set()

    def base_name(base: ast.expr) -> Optional[str]:
        if isinstance(base, ast.Name):
            return base.id
        if isinstance(base, ast.Attribute):
            return base.attr
        return None

    # Fixed point over same-file inheritance chains.
    changed = True
    while changed:
        changed = False
        for node in classes:
            if node.name in chaincode_names:
                continue
            for base in node.bases:
                name = base_name(base)
                if name == "Chaincode" or name in chaincode_names:
                    chaincode_names.add(node.name)
                    changed = True
                    break
    return [node for node in classes if node.name in chaincode_names]


def _stages_writes(body: List[ast.stmt]) -> Optional[ast.Call]:
    """First ``put_state``-style call anywhere under ``body``, if any."""
    for statement in body:
        for node in ast.walk(statement):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _WRITE_METHODS
            ):
                return node
    return None


def _walk_class_scope(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested classes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, ast.ClassDef):
            stack.extend(ast.iter_child_nodes(child))


@register
class ChaincodeDeterminismRule(Rule):
    """CHAIN001: no nondeterminism inside ``Chaincode`` subclasses."""

    rule_id = "CHAIN001"

    def check_file(self, source: SourceFile, project: Project) -> List[Finding]:
        if source.tree is None or "Chaincode" not in source.text:
            return []
        aliases = _import_aliases(source.tree)
        findings: List[Finding] = []
        for class_def in _chaincode_classes(source.tree):
            findings.extend(self._check_class(source, class_def, aliases))
        return findings

    def _check_class(
        self, source: SourceFile, class_def: ast.ClassDef, aliases: Dict[str, str]
    ) -> List[Finding]:
        findings: List[Finding] = []

        def flag(node: ast.AST, what: str) -> None:
            findings.append(
                Finding(
                    path=source.relpath,
                    line=getattr(node, "lineno", class_def.lineno),
                    rule_id=self.rule_id,
                    message=(
                        f"nondeterministic {what} in chaincode "
                        f"{class_def.name!r}: endorsements would diverge "
                        "across peers; derive it from the transaction's "
                        "arguments or stub.get_tx_timestamp() instead"
                    ),
                )
            )

        for node in _walk_class_scope(class_def):
            dotted = self._resolve(node, aliases)
            if dotted is not None:
                root, _, rest = dotted.partition(".")
                if root in _BANNED_MODULES:
                    flag(node, f"use of {dotted!r}")
                elif root in _BANNED_ATTRS and rest.split(".")[0] in _BANNED_ATTRS[root]:
                    flag(node, f"use of {dotted!r}")
                elif root == "datetime" and dotted.split(".")[-1] in _DATETIME_CLOCK_ATTRS:
                    flag(node, f"clock read {dotted!r}")
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _BANNED_BUILTINS
                and node.func.id not in aliases
            ):
                flag(node, f"builtin {node.func.id}() call (peer-local I/O)")
            if isinstance(node, (ast.For, ast.AsyncFor)):
                set_names = _set_typed_names(node) | self._enclosing_set_names(class_def, node)
                if _is_set_expression(node.iter, set_names):
                    write_call = _stages_writes(node.body)
                    if write_call is not None:
                        flag(
                            node,
                            "iteration order: looping over an unordered set "
                            f"and calling {write_call.func.attr}() inside the "  # type: ignore[union-attr]
                            "loop; wrap the iterable in sorted(...)",
                        )
        return findings

    @staticmethod
    def _resolve(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
        """Dotted path for attribute chains and bare imported names."""
        if isinstance(node, ast.Attribute):
            return _dotted_path(node, aliases)
        if isinstance(node, ast.Name) and not isinstance(getattr(node, "ctx", None), ast.Store):
            dotted = aliases.get(node.id)
            # Only bare *from*-imports resolve through a Name (e.g.
            # ``from time import time``); a plain ``import time`` only
            # becomes interesting through an Attribute access.
            if dotted is not None and "." in dotted:
                return dotted
        return None

    @staticmethod
    def _enclosing_set_names(class_def: ast.ClassDef, loop: ast.AST) -> Set[str]:
        """Set-typed names of the function containing ``loop``."""
        for node in ast.walk(class_def):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if any(descendant is loop for descendant in ast.walk(node)):
                    return _set_typed_names(node)
        return set()
