"""DET002: interprocedural chaincode determinism.

CHAIN001 sees one file at a time and flags nondeterministic *API use*
inside a ``Chaincode`` subclass.  What it cannot see is the dominant
real-world failure mode: the value is produced somewhere else --

* a module-level helper (``def _stamp(): return time.time()``),
* a two-hop chain (``invoke -> _make_id -> uuid.uuid4``),
* a helper that both reads a clock *and* writes state,

and only the laundered result reaches ``put_state``/``del_state``.  Two
peers executing the same transaction then endorse different write sets,
and the divergence surfaces much later as validation failures that
corrupt the history-db the temporal indexes are built from.

DET002 runs the project-wide taint engine
(:mod:`repro.analysis.dataflow.taint`): wall clocks, randomness,
``os.environ``, ``uuid1``/``uuid4`` and set-iteration order are sources;
``put_state``-family calls are sinks; values propagate through
assignments, returns, containers and any chain of analyzed calls.  Every
method of every ``Chaincode`` subclass (base classes resolved across
files) is then checked for source-to-sink flows.  The finding is
anchored at the call in the chaincode method where the tainted value is
committed (or handed to the helper that commits it) and its message
names the source, its location, and the call chain, so the report is
actionable without re-running the analysis by hand.

A flow CHAIN001 also sees (source and sink in the same chaincode class)
is still reported -- DET002 strictly subsumes CHAIN001's source set, and
the two findings describe different lines: the API use versus the write
it contaminates.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.dataflow import dataflow_for
from repro.analysis.dataflow.taint import SinkHit
from repro.analysis.findings import Finding
from repro.analysis.project import Project
from repro.analysis.registry import Rule, register


def _describe(hit: SinkHit) -> str:
    source = hit.source
    parts = [f"value from {source.kind} ({source.path}) reaches {hit.sink}()"]
    if source.chain:
        parts.append(f"returned through {' -> '.join(source.chain)}")
    if hit.via:
        parts.append(f"committed inside {' -> '.join(hit.via)}")
    return "; ".join(parts)


@register
class InterproceduralDeterminismRule(Rule):
    """DET002: no nondeterministic value may reach a ledger write,
    through any call chain."""

    rule_id = "DET002"

    def check_project(self, project: Project) -> List[Finding]:
        analysis = dataflow_for(project)
        findings: List[Finding] = []
        for klass in analysis.table.chaincode_classes():
            for name in sorted(klass.methods):
                method = klass.methods[name]
                summary = analysis.summary(method.qualname)
                # A diamond of call paths can reach the same sink several
                # ways; keep one hit (the shortest chain) per distinct
                # (line, sink, source) so reports stay readable.
                best: Dict[Tuple[int, str, str, str, int], SinkHit] = {}
                for hit in summary.sink_hits:
                    key = (
                        hit.line,
                        hit.sink,
                        hit.source.kind,
                        hit.source.path,
                        hit.source.line,
                    )
                    current = best.get(key)
                    if current is None or len(hit.via) + len(hit.source.chain) < len(
                        current.via
                    ) + len(current.source.chain):
                        best[key] = hit
                for key in sorted(best):
                    hit = best[key]
                    findings.append(
                        Finding(
                            path=klass.source.relpath,
                            line=hit.line,
                            rule_id=self.rule_id,
                            message=(
                                f"nondeterministic {_describe(hit)} in "
                                f"chaincode {klass.name!r}: endorsements "
                                "would diverge across peers; derive the "
                                "value from transaction arguments or "
                                "stub.get_tx_timestamp()"
                            ),
                        )
                    )
        return findings
