"""ERR001: no swallowed or blanket-converted exceptions.

A bare ``except:`` or broad ``except Exception`` in this codebase is
worse than sloppy -- it is actively dangerous to the fault harness:
:class:`~repro.common.errors.SimulatedCrashError` (the signal that the
process "died" at a crash point) derives from the library's own
hierarchy, so a blanket handler that logs, ignores, or wraps the
exception quietly *survives the simulated crash* and invalidates every
recovery guarantee the kill-point sweep claims to prove.  Broad handlers
also erase the :mod:`repro.common.errors` taxonomy that callers key
their own handling on.

Flagged: an ``except`` clause that is bare or names ``Exception`` /
``BaseException`` (directly or in a tuple) -- unless the handler body
contains a bare ``raise``, which makes it a cleanup/logging handler that
re-raises the original exception unchanged.  Wrapping via
``raise XError(...) from exc`` does **not** exempt the handler: the
wrap is exactly how a simulated crash gets swallowed.  Fix by narrowing
to the specific exceptions the guarded code can raise and mapping them
into the ``common/errors.py`` taxonomy; truly unavoidable broad catches
get a ``# repro-lint: disable=ERR001`` with a justifying comment.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceFile
from repro.analysis.registry import Rule, register

_BROAD_NAMES = {"Exception", "BaseException"}


def _broad_catch(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    for node in types:
        name = node.id if isinstance(node, ast.Name) else (
            node.attr if isinstance(node, ast.Attribute) else None
        )
        if name in _BROAD_NAMES:
            return True
    return False


def _reraises_unchanged(handler: ast.ExceptHandler) -> bool:
    """A bare ``raise`` anywhere in the handler body (not counting nested
    function definitions, which run later if at all)."""
    stack: List[ast.AST] = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


@register
class SwallowedExceptionRule(Rule):
    """ERR001: bare/broad except must re-raise unchanged or be narrowed."""

    rule_id = "ERR001"

    def check_file(self, source: SourceFile, project: Project) -> List[Finding]:
        if source.tree is None:
            return []
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _broad_catch(node):
                continue
            if _reraises_unchanged(node):
                continue
            described = "bare except:" if node.type is None else "broad except Exception"
            findings.append(
                Finding(
                    path=source.relpath,
                    line=node.lineno,
                    rule_id=self.rule_id,
                    message=(
                        f"{described} swallows the exception taxonomy (and "
                        "would swallow SimulatedCrashError, breaking the "
                        "fault harness); narrow the catch and map it into "
                        "common/errors.py, or re-raise unchanged"
                    ),
                )
            )
        return findings
