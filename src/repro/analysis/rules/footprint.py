"""KEY001-003: chaincode key-footprint discipline.

The footprint inference (:mod:`repro.analysis.footprint`) computes, per
chaincode entry point, the namespaces of state keys it can touch.  Three
things can go wrong with a chaincode's key behaviour, one rule each:

* **KEY001** -- a write whose key namespace is unresolvable (⊤): the key
  is derived from a ledger read or a nondeterministic source, so nothing
  can be said statically about what the function writes.  Such a
  chaincode defeats footprint-driven parallel validation (every
  transaction conflicts with everything) and is usually a smell: Fabric
  keys should be derived from client arguments or constants so the
  endorsement-time RWSet is decided by the proposal alone.
* **KEY002** -- a read scheduled *after* a write of an overlapping
  namespace inside one invocation.  Fabric's simulated reads return the
  *committed* state, never the invocation's own staged writes, so
  ``put_state(k, v); get_state(k)`` silently yields the old value -- one
  of the best-documented chaincode pitfalls.
* **KEY003** -- the static/dynamic bridge: a key witnessed in an actual
  endorsement-time RWSet (``footprint-report.json``) that matches *no*
  static namespace for that function.  This is a soundness hole in the
  inference or an unrecognized dispatch shape, and it means the parallel
  validator must not trust the static footprint for that chaincode.
  Silent when no witness report exists; the report's digest is folded
  into the lint cache fingerprint so stale results cannot be served.
"""

from __future__ import annotations

from typing import List

from repro.analysis.findings import Finding
from repro.analysis.footprint.export import (
    INVISIBLE,
    cross_check,
    load_dynamic_report,
)
from repro.analysis.footprint.inference import (
    READ_KINDS,
    WRITE_KINDS,
    footprint_for,
)
from repro.analysis.footprint.namespaces import TOP, overlaps
from repro.analysis.project import Project
from repro.analysis.registry import Rule, register


@register
class UnboundedWriteRule(Rule):
    """KEY001: every chaincode write must have an inferable namespace."""

    rule_id = "KEY001"

    def check_project(self, project: Project) -> List[Finding]:
        analysis = footprint_for(project)
        findings: List[Finding] = []
        for entry in analysis.entries:
            seen = set()
            for op in entry.ops:
                if op.kind not in WRITE_KINDS or op.pattern.kind != TOP:
                    continue
                chain = " -> ".join(op.via) if op.via else "the entry point"
                key = (op.line, op.kind, chain)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    Finding(
                        path=entry.path,
                        line=op.line,
                        rule_id=self.rule_id,
                        message=(
                            f"chaincode {entry.chaincode!r} fn {entry.fn!r} "
                            f"performs a {op.kind} whose key namespace is "
                            f"unresolvable (via {chain}): the key derives "
                            "from a ledger read or nondeterministic source, "
                            "so the write set cannot be bounded statically; "
                            "derive keys from client arguments or constants"
                        ),
                    )
                )
        return findings


@register
class ReadYourWriteRule(Rule):
    """KEY002: no read of a namespace the invocation already wrote."""

    rule_id = "KEY002"

    def check_project(self, project: Project) -> List[Finding]:
        analysis = footprint_for(project)
        findings: List[Finding] = []
        for entry in analysis.entries:
            seen = set()
            for index, op in enumerate(entry.ops):
                if op.kind not in WRITE_KINDS:
                    continue
                for later in entry.ops[index + 1 :]:
                    if later.kind not in READ_KINDS:
                        continue
                    if not overlaps(op.pattern, later.pattern):
                        continue
                    key = (later.line, later.kind, op.line)
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(
                        Finding(
                            path=entry.path,
                            line=later.line,
                            rule_id=self.rule_id,
                            message=(
                                f"chaincode {entry.chaincode!r} fn "
                                f"{entry.fn!r} reads namespace "
                                f"{later.pattern.render()} after writing "
                                f"{op.pattern.render()} in the same "
                                "invocation: simulated reads return the "
                                "committed state, not the staged write, so "
                                "the read observes the pre-transaction "
                                "value; restructure to read before writing"
                            ),
                        )
                    )
        return findings


@register
class FootprintBridgeRule(Rule):
    """KEY003: dynamically witnessed keys must fall inside the static
    footprint (silent when no witness report exists)."""

    rule_id = "KEY003"

    def check_project(self, project: Project) -> List[Finding]:
        report = load_dynamic_report(project.root)
        if report is None:
            return []
        analysis = footprint_for(project)
        findings: List[Finding] = []
        for verdict in cross_check(analysis, report):
            if verdict.status != INVISIBLE or not verdict.path:
                continue
            findings.append(
                Finding(
                    path=verdict.path,
                    line=verdict.line,
                    rule_id=self.rule_id,
                    message=(
                        f"chaincode {verdict.chaincode!r} fn "
                        f"{verdict.fn!r}: {verdict.detail}; the static "
                        "footprint is unsound for this function and must "
                        "not drive parallel validation until the "
                        "inference recognizes this key construction"
                    ),
                )
            )
        return findings
