"""RES001: FileSystem-seam handles must be closed on every path.

Every handle in the write path comes from the
:class:`~repro.faults.fs.FileSystem` seam (``fs.open``), so the fault
harness can interpose on it.  A handle that leaks when an exception
fires between open and close is worse here than in ordinary code: the
kill-point sweep *deliberately* raises mid-write, so a leaked handle
keeps a ``.tmp`` file pinned, its buffered bytes unflushed, and the
crash-recovery assertions then exercise a state no real crash produces.

The rule accepts the three lifetimes the codebase actually uses:

* ``with fs.open(...) as handle:`` -- scoped;
* ``handle = fs.open(...)`` followed by ``handle.close()`` inside a
  ``finally`` block of the same function -- the atomic
  write-temp/fsync/replace idiom;
* ``self._file = fs.open(...)`` -- object-owned, closed by the owner's
  ``close()``.

Everything else is flagged: a discarded ``fs.open(...)`` expression, a
handle passed straight into another call, or a local whose ``close()``
only runs on the happy path (an exception between open and close leaks
it -- move the close into ``finally`` or use ``with``).

The seam implementation itself (``repro/faults/fs.py``) is exempt, as
are receivers that do not look like a FileSystem (the same ``fs`` /
``*_fs`` naming heuristic DUR001/DUR002 rely on).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceFile
from repro.analysis.registry import Rule, register
from repro.analysis.rules.durability import _receiver_is_filesystem

_SEAM_IMPLEMENTATION = "repro/faults/fs.py"


def _seam_open_calls(func: ast.AST) -> List[ast.Call]:
    return [
        node
        for node in ast.walk(func)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "open"
        and _receiver_is_filesystem(node.func.value)
    ]


def _with_managed(func: ast.AST) -> Set[int]:
    """ids of open calls used as a ``with`` context expression."""
    managed: Set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                managed.add(id(item.context_expr))
    return managed


def _assigned_name(func: ast.AST, call: ast.Call) -> Optional[ast.expr]:
    """The single assignment target when ``call`` is the right-hand side
    of an ``=``, else None."""
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and node.value is call:
            if len(node.targets) == 1:
                return node.targets[0]
            return None
        if isinstance(node, ast.AnnAssign) and node.value is call:
            return node.target
    return None


def _close_calls(func: ast.AST, name: str) -> List[ast.Call]:
    return [
        node
        for node in ast.walk(func)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "close"
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == name
    ]


def _in_finally(func: ast.AST, call: ast.Call) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Try) and any(
            candidate is call
            for statement in node.finalbody
            for candidate in ast.walk(statement)
        ):
            return True
    return False


@register
class SeamHandleLifetimeRule(Rule):
    """RES001: every fs.open handle is scoped, finally-closed, or
    object-owned."""

    rule_id = "RES001"

    def applies_to(self, relpath: str) -> bool:
        return not relpath.endswith(_SEAM_IMPLEMENTATION)

    def check_file(self, source: SourceFile, project: Project) -> List[Finding]:
        if source.tree is None:
            return []
        findings: List[Finding] = []
        for func in ast.walk(source.tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_function(source, func))
        return findings

    def _check_function(self, source: SourceFile, func: ast.AST) -> List[Finding]:
        findings: List[Finding] = []
        managed = _with_managed(func)

        def flag(call: ast.Call, why: str) -> None:
            findings.append(
                Finding(
                    path=source.relpath,
                    line=call.lineno,
                    rule_id=self.rule_id,
                    message=(
                        f"fs.open() handle {why}; the kill-point sweep "
                        "raises mid-write, so this leaks the handle (and "
                        "its unflushed bytes) exactly when crash recovery "
                        "is being tested -- use `with`, or close it in a "
                        "`finally`"
                    ),
                )
            )

        for call in _seam_open_calls(func):
            if id(call) in managed:
                continue
            target = _assigned_name(func, call)
            if target is None:
                flag(call, "is never bound to a name")
                continue
            if isinstance(target, ast.Attribute):
                continue  # object-owned handle; its owner's close() runs it
            if not isinstance(target, ast.Name):
                flag(call, "is unpacked into a structured target")
                continue
            closes = _close_calls(func, target.id)
            if not closes:
                flag(call, f"bound to {target.id!r} is never closed here")
            elif not any(_in_finally(func, close) for close in closes):
                flag(
                    call,
                    f"bound to {target.id!r} is only closed on the happy path",
                )
        return findings
