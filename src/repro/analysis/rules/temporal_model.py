"""TEMP001: the Model M1 ingest contract, statically enforced.

Section VI's indexing process ingests one bundle ``⟨(k, θ), EV(k, θ)⟩``
as a ``write_index`` transaction and then *must* delete the pair from
state-db with a ``clear_index`` transaction -- the tombstone is what
moves the bundle out of the hot state database and into history-db,
where GHFK retrieves it with a single block read.  A code path that
writes a bundle but can skip the tombstone silently regrows state-db
and changes every Table III number, and nothing at runtime notices.

The rule enforces two invariants over ``repro/temporal/``:

* **Tombstone post-dominance.**  Every call that submits a
  ``"write_index"`` transaction (in ``m1.py`` / ``chaincodes.py`` and
  their fixtures) must be followed by a ``"clear_index"`` submission on
  *every* path: some node of the real post-dominator tree (built on the
  per-function CFG from :mod:`repro.analysis.cfg`) after the write must
  contain the clear.  A plain statement or an ``if`` header qualifies --
  the latter accepts the manifest-resume idiom, where the clear sits
  behind its own ``if not have_clear:`` recovery check that every path
  runs through.  Loop headers deliberately do *not* qualify: a loop
  header post-dominates its whole body, so accepting it would bless a
  clear hidden in a sibling arm the write's path never takes.  Compared
  to the PR-3 sibling-statement walk this catches the extra case of a
  conditional early ``return`` slipped between write and clear (the
  clear no longer post-dominates), while accepting exactly the same
  legitimate ingest shapes.

* **Interval arithmetic goes through the scheme.**  M1 and M2 agree on
  ``θ`` boundaries only because both sides compute them with
  :class:`~repro.temporal.intervals.FixedIntervalScheme` (or a
  planner).  Hand-rolled ``//``/``%`` math on the index length ``u``
  outside ``intervals.py``/``planners.py`` is exactly how an off-by-one
  on the half-open ``(start, end]`` convention sneaks in and makes the
  indexer and the query engine disagree about which bundle covers a
  timestamp.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.analysis.cfg import CFG, build_cfg, postdominators
from repro.analysis.cfg.builder import CFGNode
from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceFile
from repro.analysis.registry import Rule, register

_WRITE_MARKER = "write_index"
_CLEAR_MARKER = "clear_index"

#: Files allowed to do raw interval math: they *define* the scheme.
_SCHEME_FILES = ("intervals.py", "planners.py")

#: Files whose ingest sequences are checked for the tombstone.
_INGEST_FILES = ("m1.py", "chaincodes.py")


def _call_submits(node: ast.Call, marker: str) -> bool:
    """Whether a call carries the string literal ``marker`` as an
    argument -- how both the indexer (``submit_transaction(...,
    "write_index", ...)``) and any future client code name the
    transaction function."""
    for arg in node.args:
        if isinstance(arg, ast.Constant) and arg.value == marker:
            return True
    for keyword in node.keywords:
        value = keyword.value
        if isinstance(value, ast.Constant) and value.value == marker:
            return True
    return False


def _tombstone_postdominates(
    cfg: CFG,
    pdom: Dict[int, Set[int]],
    write_node: CFGNode,
    write_pos: Tuple[int, int],
) -> bool:
    """Real post-dominance: some CFG node on *every* path from the write
    to the exit contains a ``clear_index`` submission textually after
    the write.  Accepting nodes are plain statements and ``if`` headers
    (the resume idiom's guarded clear); loop headers are excluded --
    they post-dominate their entire body, so a clear in a sibling arm
    would be blessed even though the write's path skips it."""
    for index in pdom[write_node.index]:
        candidate = cfg.nodes[index]
        if candidate.kind == "stmt":
            stmt = candidate.stmt
        elif candidate.kind == "test" and isinstance(candidate.stmt, ast.If):
            stmt = candidate.stmt
        else:
            continue
        assert stmt is not None
        for child in ast.walk(stmt):
            if (
                isinstance(child, ast.Call)
                and _call_submits(child, _CLEAR_MARKER)
                and (child.lineno, child.col_offset) > write_pos
            ):
                return True
    return False


def _references_u(node: ast.expr) -> bool:
    """Whether an operand names the index length ``u`` (``u``, ``run.u``,
    ``self._u``...)."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and (child.id == "u" or child.id.endswith("_u")):
            return True
        if isinstance(child, ast.Attribute) and (
            child.attr == "u" or child.attr.endswith("_u")
        ):
            return True
    return False


@register
class M1ModelInvariantRule(Rule):
    """TEMP001: bundle writes need their tombstone; θ math goes through
    the interval scheme."""

    rule_id = "TEMP001"

    def applies_to(self, relpath: str) -> bool:
        return "temporal/" in relpath

    def check_file(self, source: SourceFile, project: Project) -> List[Finding]:
        if source.tree is None:
            return []
        findings: List[Finding] = []
        basename = source.relpath.rsplit("/", 1)[-1]
        if basename in _INGEST_FILES:
            findings.extend(self._check_ingests(source))
        if basename not in _SCHEME_FILES:
            findings.extend(self._check_interval_math(source))
        return findings

    def _check_ingests(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for func in ast.walk(source.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            writes = [
                node
                for node in ast.walk(func)
                if isinstance(node, ast.Call)
                and _call_submits(node, _WRITE_MARKER)
            ]
            if not writes:
                continue
            cfg = build_cfg(func)
            pdom = postdominators(cfg)
            for node in writes:
                write_node = cfg.node_containing(node)
                if write_node is None:
                    # Inside a nested def: the walk visits that function
                    # separately, with its own CFG.
                    continue
                if not _tombstone_postdominates(
                    cfg, pdom, write_node, (node.lineno, node.col_offset)
                ):
                    findings.append(
                        Finding(
                            path=source.relpath,
                            line=node.lineno,
                            rule_id=self.rule_id,
                            message=(
                                "M1 bundle write is not followed by its "
                                "clear_index tombstone on this path; the "
                                "pair ⟨(k, θ), EV(k, θ)⟩ would stay in "
                                "state-db and Section VI's storage contract "
                                "breaks -- submit clear_index after every "
                                "write_index"
                            ),
                        )
                    )
        return findings

    def _check_interval_math(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, (ast.FloorDiv, ast.Mod))
            ):
                continue
            if _references_u(node.left) or _references_u(node.right):
                operator = "//" if isinstance(node.op, ast.FloorDiv) else "%"
                findings.append(
                    Finding(
                        path=source.relpath,
                        line=node.lineno,
                        rule_id=self.rule_id,
                        message=(
                            f"hand-rolled `{operator}` arithmetic on the "
                            "index length u; compute θ boundaries through "
                            "FixedIntervalScheme (or a planner) so the "
                            "indexer and query engine can never disagree "
                            "about the (start, end] convention"
                        ),
                    )
                )
        return findings
