"""TEMP001: the Model M1 ingest contract, statically enforced.

Section VI's indexing process ingests one bundle ``⟨(k, θ), EV(k, θ)⟩``
as a ``write_index`` transaction and then *must* delete the pair from
state-db with a ``clear_index`` transaction -- the tombstone is what
moves the bundle out of the hot state database and into history-db,
where GHFK retrieves it with a single block read.  A code path that
writes a bundle but can skip the tombstone silently regrows state-db
and changes every Table III number, and nothing at runtime notices.

The rule enforces two invariants over ``repro/temporal/``:

* **Tombstone post-dominance.**  Every call that submits a
  ``"write_index"`` transaction (in ``m1.py`` / ``chaincodes.py`` and
  their fixtures) must be followed, on the fall-through path, by a
  ``"clear_index"`` submission: walking up from the write, some later
  sibling statement at some nesting level must contain the clear.  This
  deliberately *weak* form of post-dominance accepts the real
  manifest-resume idiom (write and clear each guarded by their own
  recovery check) while still catching the mutations that matter --
  the clear deleted outright, or a new branch that writes without
  clearing (the clear in the *other* arm does not post-dominate).

* **Interval arithmetic goes through the scheme.**  M1 and M2 agree on
  ``θ`` boundaries only because both sides compute them with
  :class:`~repro.temporal.intervals.FixedIntervalScheme` (or a
  planner).  Hand-rolled ``//``/``%`` math on the index length ``u``
  outside ``intervals.py``/``planners.py`` is exactly how an off-by-one
  on the half-open ``(start, end]`` convention sneaks in and makes the
  indexer and the query engine disagree about which bundle covers a
  timestamp.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceFile
from repro.analysis.registry import Rule, register

_WRITE_MARKER = "write_index"
_CLEAR_MARKER = "clear_index"

#: Files allowed to do raw interval math: they *define* the scheme.
_SCHEME_FILES = ("intervals.py", "planners.py")

#: Files whose ingest sequences are checked for the tombstone.
_INGEST_FILES = ("m1.py", "chaincodes.py")


def _call_submits(node: ast.Call, marker: str) -> bool:
    """Whether a call carries the string literal ``marker`` as an
    argument -- how both the indexer (``submit_transaction(...,
    "write_index", ...)``) and any future client code name the
    transaction function."""
    for arg in node.args:
        if isinstance(arg, ast.Constant) and arg.value == marker:
            return True
    for keyword in node.keywords:
        value = keyword.value
        if isinstance(value, ast.Constant) and value.value == marker:
            return True
    return False


def _contains_submit(node: ast.AST, marker: str) -> bool:
    return any(
        isinstance(child, ast.Call) and _call_submits(child, marker)
        for child in ast.walk(node)
    )


def _statement_chain(func: ast.AST, target: ast.stmt) -> List[tuple]:
    """(statement list, index) pairs from the target outward to the
    function body, following the containment chain."""
    chain: List[tuple] = []

    def descend(statements: List[ast.stmt]) -> bool:
        for index, statement in enumerate(statements):
            if statement is target:
                chain.append((statements, index))
                return True
            for block in _child_blocks(statement):
                if descend(block):
                    chain.append((statements, index))
                    return True
        return False

    descend(func.body)  # type: ignore[attr-defined]
    return chain


def _child_blocks(statement: ast.stmt) -> List[List[ast.stmt]]:
    blocks: List[List[ast.stmt]] = []
    for name in ("body", "orelse", "finalbody"):
        block = getattr(statement, name, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            blocks.append(block)
    for handler in getattr(statement, "handlers", []) or []:
        blocks.append(handler.body)
    return blocks


def _owning_statement(func: ast.AST, node: ast.AST) -> Optional[ast.stmt]:
    """The top-level-ish statement whose subtree holds ``node``: the
    innermost statement appearing directly in some statement list."""
    best: Optional[ast.stmt] = None

    def visit(statements: List[ast.stmt]) -> None:
        nonlocal best
        for statement in statements:
            if any(child is node for child in ast.walk(statement)):
                best = statement
                for block in _child_blocks(statement):
                    visit(block)
                return

    visit(func.body)  # type: ignore[attr-defined]
    return best


def _tombstone_follows(func: ast.AST, write_stmt: ast.stmt) -> bool:
    """Weak post-dominance: some later sibling (at any enclosing level)
    contains a clear_index submission, or the write's own statement does
    (write and clear sequenced inside one compound statement)."""
    if _contains_submit(write_stmt, _CLEAR_MARKER):
        # Same statement subtree: only accept when the clear is *after*
        # the write textually, which the sibling walk below cannot see.
        write_line = min(
            child.lineno
            for child in ast.walk(write_stmt)
            if isinstance(child, ast.Call) and _call_submits(child, _WRITE_MARKER)
        )
        for child in ast.walk(write_stmt):
            if (
                isinstance(child, ast.Call)
                and _call_submits(child, _CLEAR_MARKER)
                and child.lineno > write_line
            ):
                return True
    for statements, index in _statement_chain(func, write_stmt):
        for later in statements[index + 1 :]:
            if _contains_submit(later, _CLEAR_MARKER):
                return True
    return False


def _references_u(node: ast.expr) -> bool:
    """Whether an operand names the index length ``u`` (``u``, ``run.u``,
    ``self._u``...)."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and (child.id == "u" or child.id.endswith("_u")):
            return True
        if isinstance(child, ast.Attribute) and (
            child.attr == "u" or child.attr.endswith("_u")
        ):
            return True
    return False


@register
class M1ModelInvariantRule(Rule):
    """TEMP001: bundle writes need their tombstone; θ math goes through
    the interval scheme."""

    rule_id = "TEMP001"

    def applies_to(self, relpath: str) -> bool:
        return "temporal/" in relpath

    def check_file(self, source: SourceFile, project: Project) -> List[Finding]:
        if source.tree is None:
            return []
        findings: List[Finding] = []
        basename = source.relpath.rsplit("/", 1)[-1]
        if basename in _INGEST_FILES:
            findings.extend(self._check_ingests(source))
        if basename not in _SCHEME_FILES:
            findings.extend(self._check_interval_math(source))
        return findings

    def _check_ingests(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for func in ast.walk(source.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(func):
                if not (
                    isinstance(node, ast.Call)
                    and _call_submits(node, _WRITE_MARKER)
                ):
                    continue
                statement = _owning_statement(func, node)
                if statement is None or not _tombstone_follows(func, statement):
                    findings.append(
                        Finding(
                            path=source.relpath,
                            line=node.lineno,
                            rule_id=self.rule_id,
                            message=(
                                "M1 bundle write is not followed by its "
                                "clear_index tombstone on this path; the "
                                "pair ⟨(k, θ), EV(k, θ)⟩ would stay in "
                                "state-db and Section VI's storage contract "
                                "breaks -- submit clear_index after every "
                                "write_index"
                            ),
                        )
                    )
        return findings

    def _check_interval_math(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, (ast.FloorDiv, ast.Mod))
            ):
                continue
            if _references_u(node.left) or _references_u(node.right):
                operator = "//" if isinstance(node.op, ast.FloorDiv) else "%"
                findings.append(
                    Finding(
                        path=source.relpath,
                        line=node.lineno,
                        rule_id=self.rule_id,
                        message=(
                            f"hand-rolled `{operator}` arithmetic on the "
                            "index length u; compute θ boundaries through "
                            "FixedIntervalScheme (or a planner) so the "
                            "indexer and query engine can never disagree "
                            "about the (start, end] convention"
                        ),
                    )
                )
        return findings
