"""TEMP002/TEMP003/TEMP004: the symbolic temporal-scheme verifier.

Where TEMP001 polices *how* temporal code is written (tombstones,
arithmetic through the scheme), these three families prove *what it
computes*: the :mod:`repro.analysis.symbolic` engine executes the
analyzed project's own ``temporal/intervals.py`` and
``temporal/planners.py`` against symbolic boundary terms materialized
over a ``u``-grid and convicts any scheme or planner that violates the
paper's interval axioms.

* **TEMP002** -- scheme-axiom violation: ``interval_for`` fails to
  cover a positive timestamp, produces overlapping or misaligned
  intervals, ``previous_interval`` breaks the monotone walk to the
  timeline start, ``intervals_overlapping`` disagrees with
  ``interval_for``, or ``partition``/``partition_clipped`` do not tile
  their window; hierarchical schemes add per-level alignment and
  branch-exact nesting.

* **TEMP003** -- planner incompleteness/overlap: a planner's ``plan``
  leaves a gap or overlap in the query window, misses an event's
  timestamp, raises on a legal window, or (for hierarchical planners)
  deviates from the canonical coarsest-covering decomposition.

* **TEMP004** -- boundary convention: the half-open ``(lo, hi]``
  contract -- ``contains`` off-by-one at either endpoint,
  ``overlaps``/``intersection`` disagreeing with endpoint arithmetic,
  an interval that contains ``0``, ``t = k*u`` landing in the wrong
  bucket, or ``interval_for`` arithmetic contradicting
  ``TimeInterval.contains``.

All three rules share one memoized verification pass per project, so
selecting the whole TEMP family costs a single probe-grid run.
"""

from __future__ import annotations

from typing import List

from repro.analysis.findings import Finding
from repro.analysis.project import Project
from repro.analysis.registry import Rule, register
from repro.analysis.symbolic.verifier import verify_project


class _SchemeRule(Rule):
    """Shared shape: surface the memoized verifier's findings."""

    def check_project(self, project: Project) -> List[Finding]:
        return verify_project(project).findings_for(self.rule_id)


@register
class SchemeAxiomRule(_SchemeRule):
    """TEMP002: an interval scheme violates the timeline axioms.

    The symbolic verifier drove the scheme through boundary and window
    probes over the ``u``-grid and found a timestamp with no index
    interval, overlapping or gapped intervals, a non-monotone
    ``previous_interval`` walk, an ``intervals_overlapping`` listing
    that disagrees with ``interval_for``, a ``partition`` /
    ``partition_clipped`` that does not tile its window, or a
    hierarchical level that is misaligned or breaks nesting.  Any of
    these makes M1/M2 disagree with TQF on some query.
    """

    rule_id = "TEMP002"


@register
class PlannerCompletenessRule(_SchemeRule):
    """TEMP003: an interval planner's plan is incomplete or overlapping.

    The verifier planned every probe window under every event multiset
    and found a plan that leaves part of the window uncovered, overlaps
    itself, misses an event timestamp, raises on a legal window, or --
    for planners over a hierarchical scheme -- deviates from the
    canonical coarsest-covering decomposition (a skipped level
    multiplies the per-query bundle probes without changing answers,
    silently destroying the M3 speedup).
    """

    rule_id = "TEMP003"


@register
class BoundaryConventionRule(_SchemeRule):
    """TEMP004: the half-open ``(lo, hi]`` boundary convention is broken.

    ``TimeInterval.contains`` includes its start or excludes its end,
    ``overlaps``/``intersection`` disagree with endpoint arithmetic, an
    interval claims the unindexable timestamp ``0``, the boundary
    timestamp ``t = k*u`` lands in the wrong bucket, or the scheme's
    arithmetic and the interval's own ``contains`` disagree about the
    same timestamp.  Off-by-ones here are precisely the bugs that make
    the indexer and the query engine read different bundles.
    """

    rule_id = "TEMP004"
