"""DUR001/DUR002: durable writes must follow the crash-safety convention.

PR 1's crash-recovery guarantees rest on two conventions that nothing
else enforces:

* **DUR001 -- use the seam.**  Every durable write goes through a
  :class:`~repro.faults.fs.FileSystem` object (``fs.open``,
  ``fs.replace``, ``fs.remove``) so the fault harness can interpose.
  A raw write-mode ``open()``, ``os.replace``/``os.rename``, or
  ``Path.write_text``/``write_bytes`` in the write path is invisible to
  the kill-point sweep: the tests would keep passing while the new code
  path silently loses data on a real crash.

* **DUR002 -- fsync before rename.**  Atomic finalization is
  write-temp / flush+fsync / rename.  Renaming a temp file whose bytes
  may still sit in the page cache re-orders against the metadata update
  on many filesystems, so a power loss can leave the *final* name with
  truncated content -- exactly the subtle failure mode the state-db
  literature warns about.  The rule requires a ``*.fsync(...)`` call
  before any ``fs.replace(...)`` in the same function (conditional
  fsyncs satisfy it: the ``durability="flush"`` configuration loosens
  the guarantee on purpose).

Both rules only police the write path -- ``repro/storage/``,
``repro/fabric/`` and ``repro/faults/`` -- and skip
``repro/faults/fs.py`` itself, which *is* the seam and legitimately
calls the builtins.  Read-mode opens are always fine.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceFile
from repro.analysis.registry import Rule, register

_SCOPES = ("repro/storage/", "repro/fabric/", "repro/faults/")
_SEAM_IMPLEMENTATION = "repro/faults/fs.py"

_WRITE_MODE_CHARS = set("wax+")
_PATH_WRITE_METHODS = {"write_text", "write_bytes"}


def _in_write_path(relpath: str) -> bool:
    if relpath.endswith(_SEAM_IMPLEMENTATION):
        return False
    return any(scope in relpath for scope in _SCOPES)


def _open_mode(call: ast.Call) -> Optional[str]:
    """The literal mode of an ``open()`` call (default ``"r"``), or
    ``None`` when the mode is not a string literal."""
    mode_node: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    else:
        for keyword in call.keywords:
            if keyword.arg == "mode":
                mode_node = keyword.value
    if mode_node is None:
        return "r"
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return None


def _receiver_is_filesystem(node: ast.expr) -> bool:
    """Heuristic: the receiver of ``.replace``/``.fsync`` names the seam
    (``fs``, ``self._fs``, ``REAL_FS``, ...)."""
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        return False
    return name.lower() == "fs" or name.lower().endswith("_fs") or name.endswith("FS")


@register
class SeamBypassRule(Rule):
    """DUR001: no durable write may bypass the FileSystem seam."""

    rule_id = "DUR001"

    def applies_to(self, relpath: str) -> bool:
        return _in_write_path(relpath)

    def check_file(self, source: SourceFile, project: Project) -> List[Finding]:
        if source.tree is None:
            return []
        findings: List[Finding] = []

        def flag(node: ast.AST, what: str) -> None:
            findings.append(
                Finding(
                    path=source.relpath,
                    line=node.lineno,  # type: ignore[attr-defined]
                    rule_id=self.rule_id,
                    message=(
                        f"{what} bypasses the FileSystem seam; route it "
                        "through fs.open/fs.replace so the fault harness "
                        "(and the kill-point sweep) can see the write"
                    ),
                )
            )

        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = _open_mode(node)
                if mode is None or _WRITE_MODE_CHARS & set(mode):
                    described = "a non-literal mode" if mode is None else f"mode {mode!r}"
                    flag(node, f"raw open() with {described}")
            elif isinstance(func, ast.Attribute) and func.attr in {"replace", "rename"}:
                if isinstance(func.value, ast.Name) and func.value.id == "os":
                    flag(node, f"os.{func.attr}()")
            elif isinstance(func, ast.Attribute) and func.attr in _PATH_WRITE_METHODS:
                flag(node, f".{func.attr}()")
        return findings


@register
class FsyncBeforeRenameRule(Rule):
    """DUR002: fs.replace finalization requires a prior flush+fsync."""

    rule_id = "DUR002"

    def applies_to(self, relpath: str) -> bool:
        return _in_write_path(relpath)

    def check_file(self, source: SourceFile, project: Project) -> List[Finding]:
        if source.tree is None:
            return []
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_function(source, node))
        return findings

    def _check_function(self, source: SourceFile, func: ast.AST) -> List[Finding]:
        replace_calls: List[ast.Call] = []
        fsync_lines: List[int] = []
        for node in ast.walk(func):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr == "replace" and _receiver_is_filesystem(node.func.value):
                # str.replace takes the same two positional arguments, so
                # the receiver heuristic is what keeps this precise.
                replace_calls.append(node)
            elif node.func.attr == "fsync":
                fsync_lines.append(node.lineno)
        return [
            Finding(
                path=source.relpath,
                line=call.lineno,
                rule_id=self.rule_id,
                message=(
                    "fs.replace() finalizes a file that was never fsynced "
                    "in this function; a power loss can publish the final "
                    "name with truncated content -- fsync the temp handle "
                    "before renaming"
                ),
            )
            for call in replace_calls
            if not any(line < call.lineno for line in fsync_lines)
        ]
