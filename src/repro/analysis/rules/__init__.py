"""Built-in rule families.  Importing this package registers them all."""

from __future__ import annotations

from repro.analysis.rules import (
    concurrency,
    crashpoints,
    dataflow_determinism,
    determinism,
    durability,
    exceptions,
    footprint,
    resources,
    scheme,
    temporal_model,
)

__all__ = [
    "concurrency",
    "crashpoints",
    "dataflow_determinism",
    "determinism",
    "durability",
    "exceptions",
    "footprint",
    "resources",
    "scheme",
    "temporal_model",
]
