"""Built-in rule families.  Importing this package registers them all."""

from __future__ import annotations

from repro.analysis.rules import crashpoints, determinism, durability, exceptions

__all__ = ["crashpoints", "determinism", "durability", "exceptions"]
