"""What "nondeterministic" means, shared by CHAIN001 and the taint engine.

Both the per-file rule (:mod:`repro.analysis.rules.determinism`) and the
interprocedural one (:mod:`repro.analysis.rules.dataflow_determinism`,
via :mod:`repro.analysis.dataflow.taint`) must agree exactly on which
APIs diverge between two executions of the same chaincode -- otherwise
DET002 could not claim to subsume CHAIN001.  This module is the single
definition, dependency-free so the rule layer and the dataflow layer can
both import it without cycles.
"""

from __future__ import annotations

import ast
from typing import List, Set

#: Modules any use of which is nondeterministic inside chaincode.
BANNED_MODULES = {"time", "random", "secrets"}

#: module -> attribute names that are banned (other attributes are fine).
BANNED_ATTRS = {
    "uuid": {"uuid1", "uuid4", "getnode"},
    "os": {"environ", "getenv", "urandom", "getpid", "cpu_count", "getloadavg"},
}

#: Methods that read a wall clock on datetime/date objects.
DATETIME_CLOCK_ATTRS = {"now", "utcnow", "today"}

#: Builtins that do peer-local I/O.
BANNED_BUILTINS = {"input", "open"}

#: Stub methods that stage a write into the transaction's write set.
WRITE_METHODS = {"put_state", "del_state", "put_private_data", "del_private_data"}


def is_set_expression(node: ast.expr, set_names: Set[str]) -> bool:
    """Whether ``node`` evaluates to an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in {"set", "frozenset"}:
            return True
        # seen.union(...), seen.intersection(...), seen.difference(...)
        if isinstance(node.func, ast.Attribute) and node.func.attr in {
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        }:
            return is_set_expression(node.func.value, set_names)
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        return is_set_expression(node.left, set_names) or is_set_expression(
            node.right, set_names
        )
    return False


def set_typed_names(func: ast.AST) -> Set[str]:
    """Names assigned or annotated as sets anywhere in ``func``."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and is_set_expression(node.value, names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            annotation = node.annotation
            base = annotation.value if isinstance(annotation, ast.Subscript) else annotation
            if isinstance(base, ast.Name) and base.id in {"set", "frozenset", "Set", "FrozenSet"}:
                names.add(node.target.id)
    return names


def source_kind(dotted: str) -> str | None:
    """Human label if a dotted path names a nondeterministic API."""
    root, _, rest = dotted.partition(".")
    if root in BANNED_MODULES:
        return dotted
    if root in BANNED_ATTRS and rest.split(".")[0] in BANNED_ATTRS[root]:
        return dotted
    if root == "datetime" and dotted.split(".")[-1] in DATETIME_CLOCK_ATTRS:
        return dotted
    return None


__all__: List[str] = [
    "BANNED_MODULES",
    "BANNED_ATTRS",
    "DATETIME_CLOCK_ATTRS",
    "BANNED_BUILTINS",
    "WRITE_METHODS",
    "is_set_expression",
    "set_typed_names",
    "source_kind",
]
