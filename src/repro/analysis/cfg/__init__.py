"""Control-flow analysis: CFGs, dominance, and the lockset engine.

Where :mod:`~repro.analysis.dataflow` answers "what value can reach
here?", this package answers "what *order* do things happen in?":

* :mod:`~repro.analysis.cfg.builder` -- per-function CFG construction
  from the AST (branches, loops, try/except/finally, ``with``), with
  documented over-approximations whose polarity every rule relies on;
* :mod:`~repro.analysis.cfg.dominance` -- reflexive dominators and
  post-dominators (the real footing for TEMP001's "the tombstone always
  follows the write" check);
* :mod:`~repro.analysis.cfg.lockset` -- which locks are held at each
  node, propagated interprocedurally through the call graph, plus the
  project lock-acquisition-order graph behind CONC002/CONC003/CONC004
  and ``repro lint --lock-graph``.

Like the dataflow layer, the whole analysis is memoized per project
(:func:`lockset_for`), so the three CONC rule families and the CLI
export share one construction.
"""

from __future__ import annotations

from repro.analysis.cfg.builder import CFG, CFGNode, build_cfg
from repro.analysis.cfg.dominance import dominators, postdominators
from repro.analysis.cfg.lockset import (
    BlockingOp,
    FunctionLocks,
    LockOrderGraph,
    LockRef,
    LocksetAnalysis,
    LockWitness,
)
from repro.analysis.dataflow import dataflow_for
from repro.analysis.project import Project

__all__ = [
    "CFG",
    "CFGNode",
    "BlockingOp",
    "FunctionLocks",
    "LockOrderGraph",
    "LockRef",
    "LockWitness",
    "LocksetAnalysis",
    "build_cfg",
    "dominators",
    "postdominators",
    "lockset_for",
]


def lockset_for(project: Project) -> LocksetAnalysis:
    """The memoized :class:`LocksetAnalysis` for ``project``; reuses the
    symbol table and call graph the dataflow layer already built."""
    cached = getattr(project, "_lockset_analysis", None)
    if cached is None:
        dataflow = dataflow_for(project)
        cached = LocksetAnalysis.build(dataflow.table, dataflow.graph)
        project._lockset_analysis = cached  # type: ignore[attr-defined]
    return cached
