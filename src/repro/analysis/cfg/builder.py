"""Per-function control-flow graphs over the *normal* execution order.

One :func:`build_cfg` call turns a function's AST into a statement-level
CFG: every simple statement is one node, every compound statement
contributes a header node (the ``if``/``while`` test, the ``for`` iter,
the ``with`` items) plus the nodes of its blocks, and two synthetic
nodes bracket the function (``entry``/``exit``).  Edges follow normal
control flow plus the *explicit* abnormal flows: ``return``/``raise``
to exit, ``break``/``continue`` to their loop, exception edges from a
``try`` body into its handlers, and abrupt jumps routed through
enclosing ``finally`` blocks.

Deliberate approximations (documented so rule authors can rely on them):

* Implicit exceptions (any call may raise) are modeled only *inside*
  ``try`` statements, where every body node gets an edge to each
  handler.  Outside a ``try`` the graph is normal-flow -- the polarity
  the tombstone post-dominance check needs.
* A ``finally`` body is built once; when abrupt jumps route through it,
  its exits connect to the union of continuations (normal successor
  plus the abrupt targets).  This over-approximates the path set, which
  makes post-dominance strictly harder to establish and lock sets
  strictly larger -- the safe direction for every rule built on top.
* ``while``/``for`` headers always carry a loop-exit edge, even for
  ``while True:`` -- same over-approximation, same polarity.

Each node also records the ``with`` items lexically enclosing it inside
this function (outermost first).  Python's ``with`` guarantees release
on *every* exit path, so "which locks does this ``with`` hold here" is
a lexical fact, not a dataflow one; the lockset analysis combines these
stamps with a dataflow over explicit ``.acquire()``/``.release()``
calls (see :mod:`~repro.analysis.cfg.lockset`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Tuple

#: Indices of the two synthetic nodes every CFG starts with.
ENTRY = 0
EXIT = 1


@dataclass
class CFGNode:
    """One CFG node: a simple statement or a compound-statement header."""

    index: int
    #: ``entry`` / ``exit`` / ``stmt`` / ``test`` (if, match) / ``loop``
    #: (while, for) / ``with`` / ``try`` / ``handler`` / ``finally``.
    kind: str
    #: The owning AST statement (the full compound statement for header
    #: nodes); ``None`` only for the synthetic entry/exit pair.
    stmt: Optional[ast.AST]
    line: int
    succs: Set[int] = field(default_factory=set)
    preds: Set[int] = field(default_factory=set)
    #: ``with`` items lexically enclosing this node, outermost first.
    #: A ``with`` header node carries only the items *enclosing* it --
    #: its own items take effect in its body.
    with_items: Tuple[ast.withitem, ...] = ()

    def header_exprs(self) -> List[ast.expr]:
        """The expressions evaluated *at* this node (a simple statement's
        whole expression tree; only the test/iter/items of a header --
        the blocks have their own nodes)."""
        stmt = self.stmt
        if stmt is None or self.kind in ("try", "handler", "finally"):
            return []
        if isinstance(stmt, ast.If) or isinstance(stmt, ast.While):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if isinstance(stmt, ast.Match):
            return [stmt.subject]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return [item.context_expr for item in stmt.items]
        if isinstance(stmt, ast.stmt):
            return [
                child
                for child in ast.iter_child_nodes(stmt)
                if isinstance(child, ast.expr)
            ]
        return []


@dataclass
class CFG:
    """The control-flow graph of one function."""

    func: ast.AST
    nodes: List[CFGNode]

    @property
    def entry(self) -> CFGNode:
        return self.nodes[ENTRY]

    @property
    def exit(self) -> CFGNode:
        return self.nodes[EXIT]

    def real_nodes(self) -> Iterator[CFGNode]:
        """Every node except the synthetic entry/exit pair."""
        for node in self.nodes:
            if node.kind not in ("entry", "exit"):
                yield node

    def node_containing(self, target: ast.AST) -> Optional[CFGNode]:
        """The node at which ``target`` (an expression) is evaluated:
        the simple statement containing it, or the header whose
        test/iter/items contain it."""
        for node in self.real_nodes():
            for expr in node.header_exprs():
                if expr is target or any(
                    child is target for child in ast.walk(expr)
                ):
                    return node
        return None


@dataclass
class _FinallyFrame:
    """One enclosing ``finally`` an abrupt jump must route through."""

    marker: int
    #: Abrupt continuations that entered this finally: re-dispatched
    #: from the finally body's exits once it is built.
    pending: List[Tuple[str, Optional[int]]] = field(default_factory=list)


@dataclass
class _LoopFrame:
    header: int
    breaks: Set[int] = field(default_factory=set)


class _Builder:
    def __init__(self, func: ast.AST) -> None:
        self.func = func
        line = getattr(func, "lineno", 1)
        self.nodes: List[CFGNode] = [
            CFGNode(index=ENTRY, kind="entry", stmt=None, line=line),
            CFGNode(index=EXIT, kind="exit", stmt=None, line=line),
        ]
        self._loops: List[_LoopFrame] = []
        self._finallies: List[_FinallyFrame] = []
        #: Handler-entry node ids of enclosing ``try`` statements.
        self._handlers: List[List[int]] = []
        self._withs: List[ast.withitem] = []

    # -- graph primitives -------------------------------------------------

    def new_node(self, kind: str, stmt: ast.AST) -> int:
        node = CFGNode(
            index=len(self.nodes),
            kind=kind,
            stmt=stmt,
            line=getattr(stmt, "lineno", 1),
            with_items=tuple(self._withs),
        )
        self.nodes.append(node)
        return node.index

    def edge(self, src: int, dst: int) -> None:
        self.nodes[src].succs.add(dst)
        self.nodes[dst].preds.add(src)

    def connect(self, preds: Set[int], dst: int) -> None:
        for src in preds:
            self.edge(src, dst)

    # -- abrupt-flow routing ----------------------------------------------

    def _abrupt(self, source: int, kind: str, target: Optional[int]) -> None:
        """Route ``return``/``raise``/``break``/``continue`` from
        ``source``, detouring through the innermost enclosing
        ``finally`` when there is one."""
        if self._finallies:
            frame = self._finallies[-1]
            self.edge(source, frame.marker)
            frame.pending.append((kind, target))
        else:
            self._dispatch(source, kind, target)

    def _dispatch(self, source: int, kind: str, target: Optional[int]) -> None:
        if kind == "exit":
            self.edge(source, EXIT)
        elif kind == "break":
            if self._loops:
                self._loops[-1].breaks.add(source)
            else:  # pragma: no cover - syntactically invalid input
                self.edge(source, EXIT)
        elif kind == "continue":
            if self._loops:
                self.edge(source, self._loops[-1].header)
            else:  # pragma: no cover - syntactically invalid input
                self.edge(source, EXIT)
        elif kind == "raise":
            if self._handlers:
                for handler in self._handlers[-1]:
                    self.edge(source, handler)
            # An exception can always escape past the handlers.
            self.edge(source, EXIT)
        elif target is not None:  # pragma: no cover - defensive
            self.edge(source, target)

    # -- statement dispatch ------------------------------------------------

    def build(self) -> CFG:
        body: List[ast.stmt] = self.func.body  # type: ignore[attr-defined]
        exits = self.block(body, {ENTRY})
        self.connect(exits, EXIT)
        return CFG(func=self.func, nodes=self.nodes)

    def block(self, statements: List[ast.stmt], preds: Set[int]) -> Set[int]:
        for statement in statements:
            preds = self.statement(statement, preds)
        return preds

    def statement(self, stmt: ast.stmt, preds: Set[int]) -> Set[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, preds)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, preds)
        node = self.new_node("stmt", stmt)
        self.connect(preds, node)
        if isinstance(stmt, ast.Return):
            self._abrupt(node, "exit", None)
            return set()
        if isinstance(stmt, ast.Raise):
            self._abrupt(node, "raise", None)
            return set()
        if isinstance(stmt, ast.Break):
            self._abrupt(node, "break", None)
            return set()
        if isinstance(stmt, ast.Continue):
            self._abrupt(node, "continue", None)
            return set()
        # Nested defs/classes are opaque single nodes: their bodies run
        # in another frame with their own conventions.
        return {node}

    def _if(self, stmt: ast.If, preds: Set[int]) -> Set[int]:
        test = self.new_node("test", stmt)
        self.connect(preds, test)
        exits = self.block(stmt.body, {test})
        if stmt.orelse:
            exits |= self.block(stmt.orelse, {test})
        else:
            exits |= {test}
        return exits

    def _loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, preds: Set[int]
    ) -> Set[int]:
        header = self.new_node("loop", stmt)
        self.connect(preds, header)
        frame = _LoopFrame(header=header)
        self._loops.append(frame)
        body_exits = self.block(stmt.body, {header})
        self.connect(body_exits, header)
        self._loops.pop()
        if stmt.orelse:
            exits = self.block(stmt.orelse, {header})
        else:
            exits = {header}
        return exits | frame.breaks

    def _with(self, stmt: ast.With | ast.AsyncWith, preds: Set[int]) -> Set[int]:
        header = self.new_node("with", stmt)
        self.connect(preds, header)
        self._withs.extend(stmt.items)
        exits = self.block(stmt.body, {header})
        del self._withs[len(self._withs) - len(stmt.items):]
        return exits

    def _try(self, stmt: ast.Try, preds: Set[int]) -> Set[int]:
        fin_frame: Optional[_FinallyFrame] = None
        if stmt.finalbody:
            marker = self.new_node("finally", stmt)
            fin_frame = _FinallyFrame(marker=marker)
            self._finallies.append(fin_frame)

        handler_entries = [
            self.new_node("handler", handler) for handler in stmt.handlers
        ]
        if handler_entries:
            self._handlers.append(handler_entries)
        first_body_index = len(self.nodes)
        body_exits = self.block(stmt.body, preds)
        # Any statement of the body may raise into any handler.
        for index in range(first_body_index, len(self.nodes)):
            if self.nodes[index].kind in ("handler",):
                continue
            for handler in handler_entries:
                self.edge(index, handler)
        if not body_exits and not handler_entries and fin_frame is None:
            return set()
        if stmt.orelse:
            body_exits = self.block(stmt.orelse, body_exits)
        if handler_entries:
            self._handlers.pop()
        exits = set(body_exits)
        for handler, entry in zip(stmt.handlers, handler_entries):
            exits |= self.block(handler.body, {entry})

        if fin_frame is None:
            return exits
        self._finallies.pop()
        self.connect(exits, fin_frame.marker)
        fin_exits = self.block(stmt.finalbody, {fin_frame.marker})
        for kind, target in fin_frame.pending:
            for node in fin_exits:
                self._abrupt(node, kind, target)
        return fin_exits

    def _match(self, stmt: ast.Match, preds: Set[int]) -> Set[int]:
        test = self.new_node("test", stmt)
        self.connect(preds, test)
        exits: Set[int] = {test}
        for case in stmt.cases:
            exits |= self.block(case.body, {test})
        return exits


def build_cfg(func: ast.AST) -> CFG:
    """The CFG of one ``FunctionDef`` / ``AsyncFunctionDef``."""
    return _Builder(func).build()
