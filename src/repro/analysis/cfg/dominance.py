"""Dominators and post-dominators over a :class:`~repro.analysis.cfg.builder.CFG`.

The iterative set-based formulation: ``dom(n)`` starts at "all nodes"
and shrinks to ``{n} | intersect(dom(p) for p in preds(n))`` until a
fixpoint.  Our CFGs are a few dozen nodes per function, so the simple
algorithm is both fast enough and obviously correct -- no need for
Lengauer-Tarjan here.

Both relations are **reflexive**: ``n in dominators(cfg)[n]`` always.
Post-dominance is dominance on the reversed graph rooted at the exit
node.  A node that cannot reach the exit (e.g. the body of a loop whose
only escape is an uncaught exception we did not model) gets the
degenerate post-dominator set ``{itself}``, which means "nothing is
guaranteed to run after this" -- the conservative answer for rules that
ask "does X always happen afterwards?".
"""

from __future__ import annotations

from typing import Dict, Set

from repro.analysis.cfg.builder import CFG, ENTRY, EXIT


def _iterate(
    cfg: CFG, root: int, edges_in: Dict[int, Set[int]]
) -> Dict[int, Set[int]]:
    everything = set(range(len(cfg.nodes)))
    dom: Dict[int, Set[int]] = {
        node.index: {node.index} if node.index == root else set(everything)
        for node in cfg.nodes
    }
    changed = True
    while changed:
        changed = False
        for node in cfg.nodes:
            if node.index == root:
                continue
            preds = edges_in[node.index]
            if preds:
                merged = set.intersection(*(dom[p] for p in preds))
            else:
                # Unreachable from the root: nothing constrains it.
                merged = set()
            updated = merged | {node.index}
            if updated != dom[node.index]:
                dom[node.index] = updated
                changed = True
    return dom


def dominators(cfg: CFG) -> Dict[int, Set[int]]:
    """``dominators(cfg)[n]`` = every node on all entry-to-``n`` paths."""
    edges_in = {node.index: set(node.preds) for node in cfg.nodes}
    return _iterate(cfg, ENTRY, edges_in)


def postdominators(cfg: CFG) -> Dict[int, Set[int]]:
    """``postdominators(cfg)[n]`` = every node on all ``n``-to-exit paths.

    Nodes that cannot reach the exit collapse to ``{n}`` (see module
    docstring).
    """
    edges_in = {node.index: set(node.succs) for node in cfg.nodes}
    pdom = _iterate(cfg, EXIT, edges_in)
    everything = set(range(len(cfg.nodes)))
    for index, nodes in pdom.items():
        # The iteration leaves dead-end nodes at "everything minus what
        # shrank": if a node never reached a fixpoint constrained by the
        # exit, its set still contains nodes not on any path. Detect the
        # tell-tale (exit not in the set while the node is not exit) and
        # collapse to the reflexive singleton.
        if index != EXIT and EXIT not in nodes:
            pdom[index] = {index}
        elif nodes == everything and index != EXIT:  # pragma: no cover
            pdom[index] = {index}
    return pdom
