"""Lockset dataflow: which locks are held at each CFG node, project-wide.

The analysis runs in three layers:

1. **Per-function** (:func:`analyze_function`): build the CFG, stamp
   every node with the locks held there.  ``with self._lock:`` blocks
   contribute *lexically* (Python guarantees release on every exit
   path), explicit ``self._lock.acquire()`` / ``.release()`` calls
   contribute through a forward may-union dataflow (once a lock *may*
   be held, it stays in the set until a release kills it -- the
   conservative polarity for every rule built on top).  Each function
   yields a summary: acquisition sites, blocking operations, resolved
   call sites, and intra-function lock-order edges.

2. **Interprocedural fixpoint** (:class:`LocksetAnalysis`): acquisition
   and blocking summaries propagate backwards over the existing
   :class:`~repro.analysis.dataflow.callgraph.CallGraph` edges until
   stable, keeping the *first* witness chain per fact so findings are
   deterministic.

3. **The lock-order graph** (:class:`LockOrderGraph`): one edge
   ``A -> B`` whenever some thread may acquire ``B`` while holding
   ``A``, each edge carrying a :class:`LockWitness` (function, file,
   line, call chain).  Re-entrant ``RLock`` self-edges are dropped (a
   thread re-taking its own RLock is fine); a plain ``Lock`` self-edge
   is a guaranteed self-deadlock and is reported separately.  Cycles
   across distinct locks are the CONC002 deadlock findings.

Lock identity is ``(defining class, attribute, factory kind)`` -- the
same abstraction CONC001 uses, extended with the ``threading`` factory
name so re-entrancy is visible.  Locks that are not ``self.<attr>``
class attributes (locals, globals) are out of scope; the codebase's
convention puts every shared lock on an instance.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.cfg.builder import CFG, CFGNode, build_cfg
from repro.analysis.dataflow.callgraph import CallGraph, _local_constructions
from repro.analysis.dataflow.symbols import (
    FunctionInfo,
    SymbolTable,
    dotted_path,
)

#: A call chain: ``((caller, line), (callee, line), ...)`` ending at the
#: function containing the interesting fact.
Chain = Tuple[Tuple[str, int], ...]


@dataclass(frozen=True, order=True)
class LockRef:
    """One lock: the class attribute that holds it."""

    owner: str  #: qualname of the defining class
    attr: str
    kind: str  #: ``threading`` factory name (``Lock``, ``RLock``, ...)

    @property
    def reentrant(self) -> bool:
        return self.kind == "RLock"

    @property
    def label(self) -> str:
        """Globally unique id: ``repro.fabric.blockcache.BlockCache._lock``."""
        return f"{self.owner}.{self.attr}"

    @property
    def short(self) -> str:
        """Display name: ``BlockCache._lock``."""
        return f"{self.owner.rsplit('.', 1)[-1]}.{self.attr}"


@dataclass(frozen=True)
class BlockingOp:
    """One potentially-blocking operation at a source line."""

    kind: str  #: ``sleep`` | ``io`` | ``future-wait`` | ``queue-get``
    line: int
    description: str


@dataclass(frozen=True)
class LockWitness:
    """Where an edge of the lock-order graph was observed."""

    holder: str  #: qualname of the function where the held lock is held
    path: str  #: relpath of that function's file
    line: int  #: line of the acquisition (or of the call leading to it)
    chain: Chain  #: call steps from ``holder`` down to the acquisition

    def describe(self) -> str:
        """Human-readable witness: ``func (file:line) via a:1 -> b:2``."""
        base = f"{self.holder} ({self.path}:{self.line})"
        if len(self.chain) > 1:
            via = " -> ".join(f"{step}:{line}" for step, line in self.chain[1:])
            return f"{base} via {via}"
        return base


@dataclass
class FunctionLocks:
    """The per-function lockset summary."""

    info: FunctionInfo
    cfg: CFG
    #: node index -> locks that may be held when the node starts.
    held_before: Dict[int, FrozenSet[LockRef]]
    #: node index -> locks that may be held while the node executes.
    held_at: Dict[int, FrozenSet[LockRef]]
    #: every acquisition site (``with`` item or ``.acquire()``).
    acquires: List[Tuple[LockRef, int]] = field(default_factory=list)
    #: blocking ops paired with the locks held around them.
    blocking: List[Tuple[BlockingOp, FrozenSet[LockRef]]] = field(default_factory=list)
    #: ``(held, acquired, line)`` intra-function order edges.
    order_edges: List[Tuple[LockRef, LockRef, int]] = field(default_factory=list)
    #: resolved call sites: ``(callee qualname, line, locks held)``.
    calls: List[Tuple[str, int, FrozenSet[LockRef]]] = field(default_factory=list)


# -- lock / blocking-op recognition ---------------------------------------


def class_locks(table: SymbolTable, class_qualname: str) -> Dict[str, LockRef]:
    """Lock attrs visible on a class, own and inherited."""
    result: Dict[str, LockRef] = {}
    seen: Set[str] = set()
    stack = [class_qualname]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        info = table.classes.get(current)
        if info is None:
            continue
        for attr in info.lock_attrs:
            if attr not in result:
                result[attr] = LockRef(
                    owner=info.qualname,
                    attr=attr,
                    kind=info.lock_kinds.get(attr, "Lock"),
                )
        stack.extend(info.base_qualnames)
    return result


def _self_lock_attr(expr: ast.AST, locks: Dict[str, LockRef]) -> Optional[LockRef]:
    """``self.<attr>`` resolving to one of the class's locks, or None."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return locks.get(expr.attr)
    return None


def _with_item_lock(item: ast.withitem, locks: Dict[str, LockRef]) -> Optional[LockRef]:
    """The lock a ``with`` item acquires (``with self._lock:``,
    optionally through a call such as ``self._lock.acquire_timeout(..)``)."""
    expr: ast.AST = item.context_expr
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Attribute):
            expr = func.value
    return _self_lock_attr(expr, locks)


def _acquire_release(
    call: ast.Call, locks: Dict[str, LockRef]
) -> Optional[Tuple[str, LockRef]]:
    """Classify ``self.<lock>.acquire()`` / ``.release()`` calls."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in ("acquire", "release"):
        lock = _self_lock_attr(func.value, locks)
        if lock is not None:
            return func.attr, lock
    return None


#: Filesystem-seam methods that hit the disk.  ``read``/``write`` only
#: count on an fs-named receiver so plain file-handle writes (already
#: serialized by their owner) do not drown the signal.
_FS_BLOCKING_ATTRS = {"open", "fsync", "replace", "read", "write"}
_QUEUE_FACTORIES = {"Queue", "LifoQueue", "PriorityQueue", "SimpleQueue"}


def _receiver_is_filesystem(node: ast.AST) -> bool:
    # Mirrors the naming heuristic of rules/durability.py: the rules
    # layer may not be imported from the engine, so the three-line
    # convention is restated here.
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        return False
    return name.lower() == "fs" or name.lower().endswith("_fs") or name.endswith("FS")


def _queue_locals(func_node: ast.AST, aliases: Dict[str, str]) -> Set[str]:
    """Locals assigned from a ``queue.*`` constructor."""
    names: Set[str] = set()
    for node in ast.walk(func_node):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
        ):
            dotted = dotted_path(node.value.func, aliases)
            if (
                dotted is not None
                and dotted.startswith("queue.")
                and dotted.rsplit(".", 1)[-1] in _QUEUE_FACTORIES
            ):
                names.add(node.targets[0].id)
    return names


def _render(expr: ast.AST) -> str:
    # ast.unparse is total on anything the parser produced.
    return ast.unparse(expr)


def classify_blocking(
    call: ast.Call, aliases: Dict[str, str], queue_locals: Set[str]
) -> Optional[BlockingOp]:
    """Whether one call is a potentially-blocking operation."""
    func = call.func
    dotted = dotted_path(func, aliases)
    if dotted == "time.sleep":
        return BlockingOp("sleep", call.lineno, "time.sleep(...)")
    if isinstance(func, ast.Name) and func.id == "open" and func.id not in aliases:
        return BlockingOp("io", call.lineno, "builtin open(...)")
    if isinstance(func, ast.Attribute):
        if func.attr == "result" and not call.keywords and len(call.args) <= 1:
            return BlockingOp(
                "future-wait", call.lineno, f"{_render(func.value)}.result()"
            )
        if func.attr in _FS_BLOCKING_ATTRS and _receiver_is_filesystem(func.value):
            return BlockingOp(
                "io", call.lineno, f"{_render(func.value)}.{func.attr}(...)"
            )
        if (
            func.attr == "get"
            and isinstance(func.value, ast.Name)
            and func.value.id in queue_locals
        ):
            return BlockingOp("queue-get", call.lineno, f"{func.value.id}.get(...)")
    return None


def _calls_in(expr: ast.AST) -> Iterator[ast.Call]:
    """Calls inside one expression, in document (pre)order."""
    if isinstance(expr, ast.Call):
        yield expr
    for child in ast.iter_child_nodes(expr):
        if isinstance(child, (ast.Lambda,)):
            continue  # runs later, in another frame
        yield from _calls_in(child)


# -- per-function analysis -------------------------------------------------


def analyze_function(
    info: FunctionInfo, table: SymbolTable, graph: CallGraph
) -> FunctionLocks:
    """Build the CFG and lockset summary of one function."""
    cfg = build_cfg(info.node)
    module = table.modules[info.module]
    locks = (
        class_locks(table, info.class_qualname)
        if info.class_qualname is not None
        else {}
    )
    queue_names = _queue_locals(info.node, module.aliases)
    local_types = _local_constructions(info, table)

    size = len(cfg.nodes)
    lexical: List[Set[LockRef]] = [set() for _ in range(size)]
    gen: List[Set[LockRef]] = [set() for _ in range(size)]
    kill: List[Set[LockRef]] = [set() for _ in range(size)]
    node_calls: List[List[ast.Call]] = [[] for _ in range(size)]

    for node in cfg.real_nodes():
        index = node.index
        for item in node.with_items:
            lock = _with_item_lock(item, locks)
            if lock is not None:
                lexical[index].add(lock)
        for expr in node.header_exprs():
            for call in _calls_in(expr):
                node_calls[index].append(call)
                classified = _acquire_release(call, locks)
                if classified is None:
                    continue
                verb, lock = classified
                if verb == "acquire":
                    gen[index].add(lock)
                    kill[index].discard(lock)
                else:
                    kill[index].add(lock)
                    gen[index].discard(lock)

    # Forward may-union flow of explicit acquire/release.
    flow_in: List[Set[LockRef]] = [set() for _ in range(size)]
    flow_out: List[Set[LockRef]] = [set() for _ in range(size)]
    changed = True
    while changed:
        changed = False
        for node in cfg.nodes:
            index = node.index
            merged: Set[LockRef] = set()
            for pred in node.preds:
                merged |= flow_out[pred]
            out = (merged - kill[index]) | gen[index]
            if merged != flow_in[index] or out != flow_out[index]:
                flow_in[index] = merged
                flow_out[index] = out
                changed = True

    held_before = {
        node.index: frozenset(lexical[node.index] | flow_in[node.index])
        for node in cfg.nodes
    }
    held_at = {
        node.index: frozenset(
            lexical[node.index]
            | (flow_in[node.index] - kill[node.index])
            | gen[node.index]
        )
        for node in cfg.nodes
    }

    result = FunctionLocks(
        info=info, cfg=cfg, held_before=held_before, held_at=held_at
    )

    for node in cfg.real_nodes():
        index = node.index
        # Acquisition sites and intra-function order edges.  ``with``
        # headers evaluate their items left to right, so ``with a, b:``
        # acquires ``b`` while already holding ``a``.
        prior: Set[LockRef] = set(held_before[index])
        if node.kind == "with":
            stmt = node.stmt
            assert isinstance(stmt, (ast.With, ast.AsyncWith))
            for item in stmt.items:
                lock = _with_item_lock(item, locks)
                if lock is None:
                    continue
                result.acquires.append((lock, node.line))
                for held in sorted(prior):
                    result.order_edges.append((held, lock, node.line))
                prior.add(lock)
        for call in node_calls[index]:
            classified = _acquire_release(call, locks)
            if classified is not None:
                verb, lock = classified
                if verb == "acquire":
                    result.acquires.append((lock, call.lineno))
                    for held in sorted(prior):
                        result.order_edges.append((held, lock, call.lineno))
                    prior.add(lock)
                else:
                    prior.discard(lock)
                continue
            op = classify_blocking(call, module.aliases, queue_names)
            if op is not None:
                result.blocking.append((op, frozenset(prior)))
            callee = graph.resolve_call(info, call, local_types)
            if callee is not None:
                result.calls.append((callee, call.lineno, frozenset(prior)))

    return result


# -- the lock-order graph --------------------------------------------------


class LockOrderGraph:
    """``A -> B`` whenever ``B`` may be acquired while ``A`` is held."""

    def __init__(self) -> None:
        self.edges: Dict[Tuple[LockRef, LockRef], LockWitness] = {}
        self.self_deadlocks: Dict[LockRef, LockWitness] = {}

    def add(self, held: LockRef, acquired: LockRef, witness: LockWitness) -> None:
        """Record one observed acquisition order, keeping the first
        witness per edge so reports are deterministic."""
        if held == acquired:
            # Re-taking a lock you hold: fine for an RLock, guaranteed
            # deadlock for a plain Lock.
            if not held.reentrant:
                self.self_deadlocks.setdefault(held, witness)
            return
        self.edges.setdefault((held, acquired), witness)

    def locks(self) -> List[LockRef]:
        """Every lock appearing in the graph, sorted."""
        found: Set[LockRef] = set(self.self_deadlocks)
        for held, acquired in self.edges:
            found.add(held)
            found.add(acquired)
        return sorted(found)

    def successors(self, lock: LockRef) -> List[LockRef]:
        """Locks that may be acquired while ``lock`` is held, sorted."""
        return sorted(
            acquired for held, acquired in self.edges if held == lock
        )

    def cycles(self) -> List[List[LockRef]]:
        """Cycles across distinct locks, one representative per SCC.

        Each cycle starts at its smallest lock and lists the members in
        traversal order, so consecutive pairs (wrapping around) are
        graph edges with witnesses.
        """
        sccs = self._sccs()
        cycles: List[List[LockRef]] = []
        for component in sccs:
            if len(component) < 2:
                continue
            start = min(component)
            cycle = self._cycle_through(start, set(component))
            if cycle:
                cycles.append(cycle)
        return sorted(cycles, key=lambda c: c[0])

    def _sccs(self) -> List[List[LockRef]]:
        # Iterative Tarjan over the (tiny) lock graph.
        order: Dict[LockRef, int] = {}
        low: Dict[LockRef, int] = {}
        on_stack: Set[LockRef] = set()
        stack: List[LockRef] = []
        sccs: List[List[LockRef]] = []
        counter = [0]

        def strongconnect(root: LockRef) -> None:
            work: List[Tuple[LockRef, Iterator[LockRef]]] = [
                (root, iter(self.successors(root)))
            ]
            order[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in order:
                        order[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(self.successors(succ))))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], order[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == order[node]:
                    component: List[LockRef] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    sccs.append(component)

        for lock in self.locks():
            if lock not in order:
                strongconnect(lock)
        return sccs

    def _cycle_through(
        self, start: LockRef, component: Set[LockRef]
    ) -> Optional[List[LockRef]]:
        """A simple cycle from ``start`` back to itself inside one SCC."""
        path = [start]
        seen = {start}

        def walk() -> bool:
            current = path[-1]
            for succ in self.successors(current):
                if succ == start and len(path) > 1:
                    return True
                if succ in component and succ not in seen:
                    path.append(succ)
                    seen.add(succ)
                    if walk():
                        return True
                    seen.discard(path.pop())
            return False

        return path if walk() else None

    def witness(self, held: LockRef, acquired: LockRef) -> LockWitness:
        """The recorded witness of one edge (KeyError when absent)."""
        return self.edges[(held, acquired)]

    # -- export ------------------------------------------------------------

    def to_dot(self) -> str:
        """Acquisition-order DOT digraph (the readable deadlock view)."""
        lines = [
            "digraph lockorder {",
            "  rankdir=LR;",
            '  node [shape=box, fontname="monospace"];',
        ]
        for held, acquired in sorted(self.edges):
            witness = self.edges[(held, acquired)]
            lines.append(
                f'  "{held.short}" -> "{acquired.short}" '
                f'[label="{witness.path}:{witness.line}"];'
            )
        for lock, witness in sorted(self.self_deadlocks.items()):
            lines.append(
                f'  "{lock.short}" -> "{lock.short}" '
                f'[label="self-deadlock {witness.path}:{witness.line}", color=red];'
            )
        lines.append("}")
        return "\n".join(lines)

    def to_json(self) -> str:
        """The full graph with witnesses and cycles, versioned."""
        return json.dumps(
            {
                "version": 1,
                "locks": [
                    {
                        "id": lock.label,
                        "owner": lock.owner,
                        "attr": lock.attr,
                        "kind": lock.kind,
                    }
                    for lock in self.locks()
                ],
                "edges": [
                    {
                        "held": held.label,
                        "acquired": acquired.label,
                        "holder": witness.holder,
                        "path": witness.path,
                        "line": witness.line,
                        "chain": [list(step) for step in witness.chain],
                    }
                    for (held, acquired), witness in sorted(self.edges.items())
                ],
                "self_deadlocks": [
                    {
                        "lock": lock.label,
                        "holder": witness.holder,
                        "path": witness.path,
                        "line": witness.line,
                    }
                    for lock, witness in sorted(self.self_deadlocks.items())
                ],
                "cycles": [
                    [lock.label for lock in cycle] for cycle in self.cycles()
                ],
            },
            indent=2,
        )


# -- whole-project analysis ------------------------------------------------


class LocksetAnalysis:
    """Locksets for every function plus the project lock-order graph."""

    def __init__(self, table: SymbolTable, graph: CallGraph) -> None:
        self.table = table
        self.graph = graph
        self.functions: Dict[str, FunctionLocks] = {}
        self.order = LockOrderGraph()
        #: qualname -> lock -> first call chain reaching its acquisition.
        self.transitive_acquires: Dict[str, Dict[LockRef, Chain]] = {}
        #: qualname -> blocking kind -> (first chain, op description).
        self.transitive_blocking: Dict[str, Dict[str, Tuple[Chain, str]]] = {}

    @staticmethod
    def build(table: SymbolTable, graph: CallGraph) -> "LocksetAnalysis":
        analysis = LocksetAnalysis(table, graph)
        for qualname in sorted(table.functions):
            analysis.functions[qualname] = analyze_function(
                table.functions[qualname], table, graph
            )
        analysis._close_acquires()
        analysis._close_blocking()
        analysis._build_order()
        return analysis

    def _close_acquires(self) -> None:
        acq: Dict[str, Dict[LockRef, Chain]] = {}
        for qualname in sorted(self.functions):
            summary = self.functions[qualname]
            acq[qualname] = {}
            for lock, line in sorted(summary.acquires, key=lambda t: (t[1], t[0])):
                acq[qualname].setdefault(lock, ((qualname, line),))
        changed = True
        while changed:
            changed = False
            for qualname in sorted(self.functions):
                summary = self.functions[qualname]
                for callee, line, _held in sorted(
                    summary.calls, key=lambda t: (t[1], t[0])
                ):
                    for lock, chain in sorted(acq.get(callee, {}).items()):
                        if lock not in acq[qualname]:
                            acq[qualname][lock] = ((qualname, line),) + chain
                            changed = True
        self.transitive_acquires = acq

    def _close_blocking(self) -> None:
        blocking: Dict[str, Dict[str, Tuple[Chain, str]]] = {}
        for qualname in sorted(self.functions):
            summary = self.functions[qualname]
            blocking[qualname] = {}
            for op, _held in sorted(
                summary.blocking, key=lambda t: (t[0].line, t[0].kind)
            ):
                blocking[qualname].setdefault(
                    op.kind, (((qualname, op.line),), op.description)
                )
        changed = True
        while changed:
            changed = False
            for qualname in sorted(self.functions):
                summary = self.functions[qualname]
                for callee, line, _held in sorted(
                    summary.calls, key=lambda t: (t[1], t[0])
                ):
                    for kind, (chain, description) in sorted(
                        blocking.get(callee, {}).items()
                    ):
                        if kind not in blocking[qualname]:
                            blocking[qualname][kind] = (
                                ((qualname, line),) + chain,
                                description,
                            )
                            changed = True
        self.transitive_blocking = blocking

    def _build_order(self) -> None:
        for qualname in sorted(self.functions):
            summary = self.functions[qualname]
            relpath = summary.info.source.relpath
            for held, acquired, line in summary.order_edges:
                self.order.add(
                    held,
                    acquired,
                    LockWitness(qualname, relpath, line, ((qualname, line),)),
                )
            for callee, line, held_set in summary.calls:
                if not held_set:
                    continue
                for lock, chain in sorted(
                    self.transitive_acquires.get(callee, {}).items()
                ):
                    witness = LockWitness(
                        qualname, relpath, line, ((qualname, line),) + chain
                    )
                    for held in sorted(held_set):
                        self.order.add(held, lock, witness)
