"""What the rules see: parsed source files and the project around them.

A :class:`SourceFile` bundles one file's text, AST and suppression
comments; a :class:`Project` is the set of files under analysis plus the
project root used to relativize paths.  Rules never touch the filesystem
directly -- everything they may look at is collected here first, which
keeps them unit-testable against fixture trees.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.findings import Finding

#: Per-line suppression comment: ``# repro-lint: disable=DUR001,ERR001``
#: (or ``disable=all``).  Honored on the flagged line itself or on a
#: standalone comment line directly above it.
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".venv", "node_modules", ".mypy_cache"}


@dataclass
class SourceFile:
    """One parsed Python file under analysis."""

    path: Path
    relpath: str
    text: str
    tree: Optional[ast.AST]
    parse_error: Optional[SyntaxError] = None
    #: line number -> set of suppressed rule ids ("all" suppresses every rule)
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def lines(self) -> List[str]:
        return self.text.splitlines()

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """True when ``rule_id`` is disabled on ``line`` (same-line comment
        or a comment-only line directly above)."""
        for candidate in (line, line - 1):
            rules = self.suppressions.get(candidate)
            if not rules:
                continue
            if candidate == line - 1 and not self._comment_only(candidate):
                continue
            if "all" in rules or rule_id in rules:
                return True
        return False

    def _comment_only(self, line: int) -> bool:
        lines = self.lines
        if not 1 <= line <= len(lines):
            return False
        return lines[line - 1].lstrip().startswith("#")


def parse_source_file(path: Path, root: Path) -> SourceFile:
    """Read and parse one file; a syntax error becomes part of the record
    (the runner reports it) instead of aborting the whole run."""
    text = path.read_text(encoding="utf-8", errors="replace")
    try:
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    tree: Optional[ast.AST] = None
    parse_error: Optional[SyntaxError] = None
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        parse_error = exc
    suppressions: Dict[int, Set[str]] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        if rules:
            suppressions[line_number] = rules
    return SourceFile(
        path=path,
        relpath=relpath,
        text=text,
        tree=tree,
        parse_error=parse_error,
        suppressions=suppressions,
    )


@dataclass
class Project:
    """Every file under analysis, rooted for stable relative paths."""

    root: Path
    files: List[SourceFile]

    def find(self, relpath_suffix: str) -> Optional[SourceFile]:
        """The analyzed file whose relative path ends with ``suffix``
        (e.g. ``repro/faults/crashpoints.py``), if any."""
        for source in self.files:
            if source.relpath.endswith(relpath_suffix):
                return source
        return None

    def parse_failures(self) -> List[Finding]:
        """Unparseable files become findings rather than crashes."""
        return [
            Finding(
                path=source.relpath,
                line=source.parse_error.lineno or 1,
                rule_id="PARSE000",
                message=f"file does not parse: {source.parse_error.msg}",
            )
            for source in self.files
            if source.parse_error is not None
        ]


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand the CLI's path arguments into a sorted list of ``.py`` files."""
    seen: Set[Path] = set()
    collected: List[Path] = []
    for path in paths:
        if path.is_file():
            candidates = [path] if path.suffix == ".py" else []
        elif path.is_dir():
            candidates = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not any(part in _SKIP_DIR_NAMES for part in candidate.parts)
            )
        else:
            raise FileNotFoundError(f"lint path {path} does not exist")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                collected.append(candidate)
    return collected


def find_project_root(paths: Sequence[Path]) -> Path:
    """Walk up from the first input path looking for ``pyproject.toml``;
    fall back to the common parent so relative paths stay meaningful."""
    if not paths:
        return Path.cwd()
    start = paths[0].resolve()
    if start.is_file():
        start = start.parent
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return start


def build_project(paths: Sequence[Path], root: Optional[Path] = None) -> Project:
    """Discover, read and parse every file reachable from ``paths``."""
    files = discover_files(paths)
    resolved_root = root if root is not None else find_project_root(paths)
    return Project(
        root=resolved_root,
        files=[parse_source_file(path, resolved_root) for path in files],
    )
