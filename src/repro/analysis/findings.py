"""The unit of analyzer output: one finding at one source location."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation.

    ``path`` is project-root-relative with forward slashes so findings
    (and the baseline file that stores them) are stable across machines.
    ``message`` deliberately carries no line numbers: baseline matching
    keys on ``(rule_id, path, message)`` so a finding survives unrelated
    edits that shift it a few lines.
    """

    path: str
    line: int
    rule_id: str
    message: str

    def render(self) -> str:
        """The one-line human form: ``path:line: RULE message``."""
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"

    def baseline_key(self) -> tuple:
        """Identity used when matching against the baseline file."""
        return (self.rule_id, self.path, self.message)

    def to_json(self) -> Dict[str, Any]:
        """JSON-object form used by ``--format json`` and the baseline."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    @staticmethod
    def from_json(raw: Dict[str, Any]) -> "Finding":
        """Invert :meth:`to_json` (used when loading the baseline)."""
        return Finding(
            path=str(raw["path"]),
            line=int(raw.get("line", 0)),
            rule_id=str(raw["rule"]),
            message=str(raw["message"]),
        )
