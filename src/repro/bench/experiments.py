"""Experiment definitions: one entry point per paper table.

Every function returns a structured result that
:mod:`repro.bench.tables` renders in the paper's layout.  All parameters
scale with the dataset's ``t_max`` exactly as the paper's do at
``t_max = 150K``:

=================  ==================  =======================
paper parameter    full-scale value    expressed as
=================  ==================  =======================
query window       10K                 ``t_max / 15``
u (small)          2K                  ``t_max / 75``
u (medium)         10K                 ``t_max / 15``
u (large)          50K                 ``t_max / 3``
u (x-large)        75K                 ``t_max / 2``
index period       25K                 ``t_max / 6``
=================  ==================  =======================
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional

from repro.bench.runner import BaseAccessBenchResult, ExperimentRunner
from repro.common.config import FabricConfig
from repro.common.errors import ConfigError
from repro.temporal.engine import QueryStats
from repro.temporal.intervals import TimeInterval
from repro.workload.datasets import ds1, ds2, ds3
from repro.workload.generator import WorkloadConfig, generate

#: The window positions of Table I: (i/15 .. (i+1)/15] of the timeline.
TABLE1_WINDOW_SLOTS = [0, 1, 2, 6, 7, 8, 12, 13, 14]

_DATASETS = {"ds1": ds1, "ds2": ds2, "ds3": ds3}


def dataset_config(
    name: str,
    scale: Optional[float] = None,
    entity_scale: Optional[float] = None,
) -> WorkloadConfig:
    """The scaled :class:`WorkloadConfig` for dataset ``name``."""
    try:
        factory = _DATASETS[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown dataset {name!r}; expected one of {sorted(_DATASETS)}"
        ) from None
    return factory(scale=scale, entity_scale=entity_scale)


def query_fabric_config(
    workers: Optional[int] = None,
    cache_blocks: Optional[int] = None,
    statedb: Optional[str] = None,
    codec: Optional[str] = None,
    mmap_io: Optional[bool] = None,
    ghfk_prefetch: Optional[int] = None,
) -> FabricConfig:
    """A :class:`FabricConfig` with the query-execution knobs applied.

    ``workers`` selects the executor's parallelism (``None`` keeps the
    ``REPRO_QUERY_WORKERS`` default); ``cache_blocks`` sizes the shared
    decoded-block LRU (``None`` keeps it off, the paper's cost model);
    ``statedb`` picks the state-db backend (``None`` keeps the
    ``REPRO_STATEDB`` default); ``codec``/``mmap_io``/``ghfk_prefetch``
    adjust the block store's serialization and read path (the shootout's
    lean-IO cell).
    """
    config = FabricConfig()
    if workers is not None or ghfk_prefetch is not None:
        query = config.query
        if workers is not None:
            query = dataclasses.replace(query, workers=workers)
        if ghfk_prefetch is not None:
            query = dataclasses.replace(query, ghfk_prefetch=ghfk_prefetch)
        config = dataclasses.replace(config, query=query)
    if statedb is not None:
        config = dataclasses.replace(
            config,
            state_db=dataclasses.replace(config.state_db, backend=statedb),
        )
    block_store = config.block_store
    if cache_blocks is not None:
        block_store = dataclasses.replace(block_store, cache_blocks=cache_blocks)
    if codec is not None:
        block_store = dataclasses.replace(block_store, codec=codec)
    if mmap_io is not None:
        block_store = dataclasses.replace(block_store, mmap_io=mmap_io)
    if block_store is not config.block_store:
        config = dataclasses.replace(config, block_store=block_store)
    return config


def u_small(t_max: int) -> int:
    """The paper's u=2K, expressed as a fraction of the timeline."""
    return t_max // 75  # 2K at full scale


def u_medium(t_max: int) -> int:
    """The paper's u=10K."""
    return t_max // 15  # 10K at full scale


def u_large(t_max: int) -> int:
    """The paper's u=50K."""
    return t_max // 3  # 50K at full scale


def u_xlarge(t_max: int) -> int:
    """The paper's u=75K."""
    return t_max // 2  # 75K at full scale


def table1_windows(t_max: int) -> List[TimeInterval]:
    """Table I's nine query windows, scaled to ``t_max``."""
    width = t_max // 15  # 10K at full scale
    return [TimeInterval(slot * width, (slot + 1) * width) for slot in TABLE1_WINDOW_SLOTS]


# --------------------------------------------------------------------------
# Table I - join performance: M1 vs TQF vs M2
# --------------------------------------------------------------------------


@dataclass
class Table1Row:
    window: TimeInterval
    m1: QueryStats
    tqf: QueryStats
    m2_small: QueryStats
    m2_large: Optional[QueryStats] = None


@dataclass
class Table1Result:
    dataset: str
    config: WorkloadConfig
    u_small: int
    u_large: Optional[int]
    rows: List[Table1Row] = field(default_factory=list)
    ingest_seconds: float = 0.0
    index_seconds: float = 0.0


def run_table1(
    dataset: str = "ds1",
    scale: Optional[float] = None,
    entity_scale: Optional[float] = None,
    verify_rows: bool = True,
    workers: Optional[int] = None,
    cache_blocks: Optional[int] = None,
    statedb: Optional[str] = None,
) -> Table1Result:
    """Regenerate one dataset's section of Table I.

    DS1 additionally gets the u=50K Model M2 column, as in the paper.
    ``verify_rows`` cross-checks that all models return identical join
    rows on every window (a correctness guard, excluded from timings).
    ``workers``/``cache_blocks``/``statedb`` run the queries through the
    parallel executor, the shared block cache and/or an alternative
    state-db backend; all leave the rows (and the verify assertion)
    untouched.
    """
    config = dataset_config(dataset, scale, entity_scale)
    data = generate(config)
    t_max = config.t_max
    small, large = u_small(t_max), u_large(t_max)
    include_large = dataset.lower() == "ds1"
    fabric_config = query_fabric_config(workers, cache_blocks, statedb=statedb)

    result = Table1Result(
        dataset=dataset.upper(),
        config=config,
        u_small=small,
        u_large=large if include_large else None,
    )
    with ExperimentRunner.build(
        data, "plain", fabric_config=fabric_config
    ) as plain, ExperimentRunner.build(
        data, "m2", m2_u=small, fabric_config=fabric_config
    ) as m2_small_runner:
        m2_large_runner = (
            ExperimentRunner.build(data, "m2", m2_u=large, fabric_config=fabric_config)
            if include_large
            else None
        )
        try:
            result.ingest_seconds = plain.ingest().seconds
            result.index_seconds = plain.build_m1_index(u=small).seconds
            m2_small_runner.ingest()
            if m2_large_runner is not None:
                m2_large_runner.ingest()

            for window in table1_windows(t_max):
                m1_result = plain.run_join("m1", window)
                tqf_result = plain.run_join("tqf", window)
                m2s_result = m2_small_runner.run_join("m2", window)
                m2l_result = (
                    m2_large_runner.run_join("m2", window)
                    if m2_large_runner is not None
                    else None
                )
                if verify_rows:
                    assert m1_result.rows == tqf_result.rows == m2s_result.rows, (
                        f"models disagree on {window}"
                    )
                    if m2l_result is not None:
                        assert m2l_result.rows == tqf_result.rows
                result.rows.append(
                    Table1Row(
                        window=window,
                        m1=m1_result.stats,
                        tqf=tqf_result.stats,
                        m2_small=m2s_result.stats,
                        m2_large=m2l_result.stats if m2l_result else None,
                    )
                )
        finally:
            if m2_large_runner is not None:
                m2_large_runner.close()
    return result


# --------------------------------------------------------------------------
# Table II - Model M1 join time vs u
# --------------------------------------------------------------------------


@dataclass
class Table2Row:
    u: int
    late_window: QueryStats  # (20K, 90K] at full scale
    early_window: QueryStats  # (0, 40K] at full scale


@dataclass
class Table2Result:
    config: WorkloadConfig
    late_window: TimeInterval
    early_window: TimeInterval
    rows: List[Table2Row] = field(default_factory=list)


def run_table2(
    scale: Optional[float] = None,
    entity_scale: Optional[float] = None,
    workers: Optional[int] = None,
    cache_blocks: Optional[int] = None,
    statedb: Optional[str] = None,
) -> Table2Result:
    """Table II: DS1, M1 indexes with u in {2K, 10K, 50K} (scaled)."""
    config = dataset_config("ds1", scale, entity_scale)
    data = generate(config)
    t_max = config.t_max
    fabric_config = query_fabric_config(workers, cache_blocks, statedb=statedb)
    late = TimeInterval(2 * t_max // 15, 9 * t_max // 15)
    early = TimeInterval(0, 4 * t_max // 15)
    result = Table2Result(config=config, late_window=late, early_window=early)
    for u in (u_small(t_max), u_medium(t_max), u_large(t_max)):
        with ExperimentRunner.build(
            data, "plain", fabric_config=fabric_config
        ) as runner:
            runner.ingest()
            runner.build_m1_index(u=u)
            result.rows.append(
                Table2Row(
                    u=u,
                    late_window=runner.run_join("m1", late).stats,
                    early_window=runner.run_join("m1", early).stats,
                )
            )
    return result


# --------------------------------------------------------------------------
# Table III - periodic index construction vs ingestion time
# --------------------------------------------------------------------------


@dataclass
class Table3Row:
    timestamp: int
    index_seconds: float
    ingest_seconds: float
    total_seconds: float


@dataclass
class Table3Result:
    config: WorkloadConfig
    u: int
    period: int
    rows: List[Table3Row] = field(default_factory=list)


def run_table3(
    scale: Optional[float] = None,
    entity_scale: Optional[float] = None,
    invocations: int = 6,
) -> Table3Result:
    """Table III: DS1, M1 indexes built every 25K timestamps (scaled).

    Ingestion and indexing interleave: ingest ``(t-P, t]``, index
    ``(t-P, t]``, repeat.  Each invocation's GHFK scans start from the
    beginning of history, so index-construction time grows with every
    invocation -- the paper's scalability argument against Model M1.
    """
    config = dataset_config("ds1", scale, entity_scale)
    data = generate(config)
    t_max = config.t_max
    period = t_max // invocations
    u = u_small(t_max)
    result = Table3Result(config=config, u=u, period=period)
    total = 0.0
    with ExperimentRunner.build(data, "plain") as runner:
        for invocation in range(1, invocations + 1):
            t1, t2 = (invocation - 1) * period, invocation * period
            ingest_report = runner.ingest(after=t1, until=t2)
            index_report = runner.build_m1_index(u=u, t1=t1, t2=t2)
            total += ingest_report.seconds + index_report.seconds
            result.rows.append(
                Table3Row(
                    timestamp=t2,
                    index_seconds=index_report.seconds,
                    ingest_seconds=ingest_report.seconds,
                    total_seconds=total,
                )
            )
    return result


# --------------------------------------------------------------------------
# Table IV - cost of accessing original states under Model M2
# --------------------------------------------------------------------------


@dataclass
class Table4Result:
    config: WorkloadConfig
    now: int
    rows: List[BaseAccessBenchResult] = field(default_factory=list)
    baseline: Optional[BaseAccessBenchResult] = None


def run_table4(
    scale: Optional[float] = None,
    entity_scale: Optional[float] = None,
    get_state_calls: Optional[int] = None,
    ghfk_calls: Optional[int] = None,
    now_factor: float = 1.02,
) -> Table4Result:
    """Table IV: GetState-Base / GHFK-Base cost for u in {2K,10K,50K,75K}.

    ``now_factor`` places the probing clock slightly past ``t_max``; the
    paper's probe counts (329K probes for 100K calls at u=2K, shrinking to
    exactly 100K at u>=50K) imply its measurement ran at a logical "now"
    a couple of percent past the last event -- see EXPERIMENTS.md.
    """
    config = dataset_config("ds1", scale, entity_scale)
    data = generate(config)
    t_max = config.t_max
    key_count = config.key_count
    # The paper issues 200 GetState-Base and 4 GHFK-Base calls per key
    # (100K and 2K over 500 keys); keep those per-key rates under scaling.
    if get_state_calls is None:
        get_state_calls = 200 * key_count
    if ghfk_calls is None:
        ghfk_calls = 4 * key_count
    now = int(t_max * now_factor)

    result = Table4Result(config=config, now=now)
    for u in (u_small(t_max), u_medium(t_max), u_large(t_max), u_xlarge(t_max)):
        with ExperimentRunner.build(data, "m2", m2_u=u) as runner:
            runner.ingest()
            result.rows.append(
                runner.base_access_bench(
                    get_state_calls=get_state_calls,
                    ghfk_calls=ghfk_calls,
                    now=now,
                )
            )
    with ExperimentRunner.build(data, "plain") as plain:
        plain.ingest()
        result.baseline = plain.base_data_bench(
            get_state_calls=get_state_calls, ghfk_calls=ghfk_calls
        )
    return result
