"""Paper-style plain-text rendering of experiment results."""

from __future__ import annotations

from typing import List, Sequence

from repro.bench.experiments import (
    Table1Result,
    Table2Result,
    Table3Result,
    Table4Result,
)
from repro.common.timeutils import format_duration


def _render(headers: Sequence[str], rows: List[Sequence[str]], title: str) -> str:
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title]
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _seconds(value: float) -> str:
    return f"{value:.2f}s"


def render_table1(result: Table1Result) -> str:
    """Table I: join time, GHFK time and #GHFK calls per query window."""
    include_large = result.rows and result.rows[0].m2_large is not None
    headers = [
        "window",
        f"M1 join (u={result.u_small})",
        "M1 ghfk (calls)",
        "TQF join",
        "TQF ghfk (calls)",
        f"M2 join (u={result.u_small})",
        "M2 ghfk (calls)",
    ]
    if include_large:
        headers += [f"M2 join (u={result.u_large})", "M2 ghfk (calls)"]
    rows = []
    for row in result.rows:
        cells = [
            str(row.window),
            _seconds(row.m1.join_seconds),
            f"{_seconds(row.m1.ghfk_seconds)} ({row.m1.ghfk_calls})",
            _seconds(row.tqf.join_seconds),
            f"{_seconds(row.tqf.ghfk_seconds)} ({row.tqf.ghfk_calls})",
            _seconds(row.m2_small.join_seconds),
            f"{_seconds(row.m2_small.ghfk_seconds)} ({row.m2_small.ghfk_calls})",
        ]
        if include_large:
            assert row.m2_large is not None
            cells += [
                _seconds(row.m2_large.join_seconds),
                f"{_seconds(row.m2_large.ghfk_seconds)} ({row.m2_large.ghfk_calls})",
            ]
        rows.append(cells)
    title = (
        f"Table I -- {result.dataset} "
        f"(nS={result.config.n_shipments}, nC={result.config.n_containers}, "
        f"nEv={result.config.events_per_key}, t_max={result.config.t_max}, "
        f"{result.config.distribution}, {result.config.ingestion.upper()})"
    )
    footer = (
        f"\ningestion: {format_duration(result.ingest_seconds)}, "
        f"M1 index construction: {format_duration(result.index_seconds)}"
    )
    return _render(headers, rows, title) + footer


def render_table2(result: Table2Result) -> str:
    """Table II: Model M1 join time vs index interval length u."""
    headers = ["u", f"tau={result.late_window}", f"tau={result.early_window}"]
    rows = [
        [str(row.u), _seconds(row.late_window.join_seconds), _seconds(row.early_window.join_seconds)]
        for row in result.rows
    ]
    title = "Table II -- M1 join time vs index interval length u (DS1, ME)"
    return _render(headers, rows, title)


def render_table3(result: Table3Result) -> str:
    """Table III: periodic index construction vs ingestion time."""
    headers = [
        "timestamp",
        "index construction",
        "ingestion since last index",
        "total elapsed",
    ]
    rows = [
        [
            str(row.timestamp),
            format_duration(row.index_seconds),
            format_duration(row.ingest_seconds),
            format_duration(row.total_seconds),
        ]
        for row in result.rows
    ]
    title = (
        f"Table III -- periodic M1 indexing (DS1, ME, u={result.u}, "
        f"period={result.period})"
    )
    return _render(headers, rows, title)


def render_table4(result: Table4Result) -> str:
    """Table IV: GetState-Base / GHFK-Base cost per interval length u."""
    headers = ["u", "GetState-Base time (probes)", "GHFK-Base time"]
    rows = [
        [
            str(row.u),
            f"{_seconds(row.get_state_seconds)} ({row.get_state_probes})",
            _seconds(row.ghfk_seconds),
        ]
        for row in result.rows
    ]
    title = (
        f"Table IV -- base access under M2 (DS1, ME; "
        f"{result.rows[0].get_state_calls} GetState-Base calls, "
        f"{result.rows[0].ghfk_calls} GHFK-Base calls, now={result.now})"
    )
    rendered = _render(headers, rows, title)
    if result.baseline is not None:
        rendered += (
            f"\nBase data -- GetState: {_seconds(result.baseline.get_state_seconds)}, "
            f"GHFK: {_seconds(result.baseline.ghfk_seconds)}"
        )
    return rendered
