"""Build-ingest-query runner used by every experiment.

An :class:`ExperimentRunner` owns one generated workload and one ledger
built from it in a chosen *variant*:

* ``plain`` -- original keys; serves TQF queries and hosts Model M1
  indexes built afterwards or periodically.
* ``m2`` -- keys transformed at ingestion by the Model M2 chaincode with a
  given interval length ``u``.

The runner wires the real network (endorser, orderer, validator), the
workload ingestion strategies and the query facade, so every measured
number comes out of the same pipeline the tests validate.
"""

from __future__ import annotations

import random
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from repro.common.config import FabricConfig
from repro.common.errors import ConfigError
from repro.common.timeutils import Stopwatch
from repro.fabric.network import FabricNetwork
from repro.temporal.chaincodes import (
    M1IndexChaincode,
    M2SupplyChainChaincode,
    SupplyChainChaincode,
)
from repro.temporal.engine import JoinResult, TemporalQueryEngine
from repro.temporal.intervals import TimeInterval
from repro.temporal.m1 import IndexingReport, M1Indexer
from repro.temporal.m2 import BaseAccessAPI
from repro.workload.generator import WorkloadConfig, WorkloadData, generate
from repro.workload.ingest import IngestionReport, ingest


@dataclass
class BaseAccessBenchResult:
    """Timing of emulated base accesses (Table IV rows)."""

    u: int
    get_state_calls: int
    get_state_probes: int
    get_state_seconds: float
    ghfk_calls: int
    ghfk_seconds: float


class ExperimentRunner:
    """One dataset x one ledger variant, ready to ingest and query."""

    def __init__(
        self,
        data: WorkloadData,
        network: FabricNetwork,
        variant: str,
        m2_u: Optional[int] = None,
        workdir: Optional[Path] = None,
        owns_workdir: bool = False,
    ) -> None:
        self.data = data
        self.network = network
        self.variant = variant
        self.m2_u = m2_u
        self._workdir = workdir
        self._owns_workdir = owns_workdir
        self.facade = TemporalQueryEngine(
            network.ledger,
            network.metrics,
            workers=network.config.query.workers,
        )
        self.ingestion_report: Optional[IngestionReport] = None
        self.indexing_reports: List[IndexingReport] = []

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(
        cls,
        workload: WorkloadConfig | WorkloadData,
        variant: str = "plain",
        m2_u: Optional[int] = None,
        path: Optional[Path] = None,
        fabric_config: Optional[FabricConfig] = None,
    ) -> "ExperimentRunner":
        """Create the network for ``workload`` (not yet ingested).

        Args:
            workload: a config (generated here) or pre-generated data, so
                several variants can share one generation pass.
            variant: ``"plain"`` or ``"m2"``.
            m2_u: index interval length, required for the ``m2`` variant.
            path: ledger directory; a temporary one is created (and later
                removed by :meth:`close`) when omitted.
        """
        if variant not in ("plain", "m2"):
            raise ConfigError(f"unknown variant {variant!r}")
        if variant == "m2" and not m2_u:
            raise ConfigError("the m2 variant requires m2_u")
        data = workload if isinstance(workload, WorkloadData) else generate(workload)
        owns_workdir = path is None
        workdir = Path(tempfile.mkdtemp(prefix="repro-bench-")) if path is None else Path(path)
        network = FabricNetwork(workdir, config=fabric_config)
        if variant == "plain":
            network.install(SupplyChainChaincode())
            network.install(M1IndexChaincode())
        else:
            network.install(M2SupplyChainChaincode(u=m2_u))
        return cls(
            data=data,
            network=network,
            variant=variant,
            m2_u=m2_u,
            workdir=workdir,
            owns_workdir=owns_workdir,
        )

    # -- ingestion & indexing ----------------------------------------------------

    @property
    def chaincode_name(self) -> str:
        if self.variant == "plain":
            return SupplyChainChaincode.name
        return M2SupplyChainChaincode.name

    def ingest(self, until: Optional[int] = None, after: int = 0) -> IngestionReport:
        """Ingest the workload's events with the dataset's strategy.

        ``after``/``until`` bound the event times ``(after, until]`` so
        Table III can interleave ingestion with periodic indexing.
        """
        events = [
            event
            for event in self.data.events
            if event.time > after and (until is None or event.time <= until)
        ]
        report = ingest(
            self.network.gateway("ingestor"),
            events,
            self.chaincode_name,
            strategy=self.data.config.ingestion,
        )
        self.ingestion_report = report
        return report

    def build_m1_index(
        self, u: int, t1: int = 0, t2: Optional[int] = None
    ) -> IndexingReport:
        """Run the Model M1 indexing process over ``(t1, t2]``."""
        if self.variant != "plain":
            raise ConfigError("M1 indexes are built on the plain variant only")
        t2 = self.data.config.t_max if t2 is None else t2
        indexer = M1Indexer(
            ledger=self.network.ledger,
            gateway=self.network.gateway("indexer"),
            key_prefixes=[
                self.facade.namespace.shipment_prefix,
                self.facade.namespace.container_prefix,
            ],
            metrics=self.network.metrics,
        )
        report = indexer.run(t1, t2, u)
        self.indexing_reports.append(report)
        return report

    # -- queries -----------------------------------------------------------------

    def run_join(self, model: str, window: TimeInterval) -> JoinResult:
        return self.facade.run_join(model, window)

    def base_access_bench(
        self,
        get_state_calls: int,
        ghfk_calls: int,
        now: Optional[int] = None,
        seed: int = 5,
    ) -> BaseAccessBenchResult:
        """Time random GetState-Base / GHFK-Base calls (Table IV).

        Keys are drawn uniformly from shipments+containers, as in the
        paper ("for each call, the key k is chosen randomly").
        """
        if self.variant != "m2":
            raise ConfigError("base_access_bench requires the m2 variant")
        assert self.m2_u is not None
        api = BaseAccessAPI(self.network.ledger, u=self.m2_u, metrics=self.network.metrics)
        rng = random.Random(seed)
        keys = self.data.shipments + self.data.containers
        now = self.data.config.t_max if now is None else now

        probes = 0
        watch = Stopwatch().start()
        for _ in range(get_state_calls):
            probes += api.get_state_base(rng.choice(keys), now).probes
        get_state_seconds = watch.stop()

        watch = Stopwatch().start()
        for _ in range(ghfk_calls):
            for _entry in api.ghfk_base(rng.choice(keys), now):
                pass
        ghfk_seconds = watch.stop()

        return BaseAccessBenchResult(
            u=self.m2_u,
            get_state_calls=get_state_calls,
            get_state_probes=probes,
            get_state_seconds=get_state_seconds,
            ghfk_calls=ghfk_calls,
            ghfk_seconds=ghfk_seconds,
        )

    def base_data_bench(
        self, get_state_calls: int, ghfk_calls: int, seed: int = 5
    ) -> BaseAccessBenchResult:
        """The comparison row of Table IV: plain GetState / GHFK on base
        data (requires the plain variant)."""
        if self.variant != "plain":
            raise ConfigError("base_data_bench requires the plain variant")
        rng = random.Random(seed)
        keys = self.data.shipments + self.data.containers
        ledger = self.network.ledger

        watch = Stopwatch().start()
        for _ in range(get_state_calls):
            ledger.get_state(rng.choice(keys))
        get_state_seconds = watch.stop()

        watch = Stopwatch().start()
        for _ in range(ghfk_calls):
            for _entry in ledger.get_history_for_key(rng.choice(keys)):
                pass
        ghfk_seconds = watch.stop()

        return BaseAccessBenchResult(
            u=0,
            get_state_calls=get_state_calls,
            get_state_probes=get_state_calls,
            get_state_seconds=get_state_seconds,
            ghfk_calls=ghfk_calls,
            ghfk_seconds=ghfk_seconds,
        )

    # -- bookkeeping ---------------------------------------------------------------

    def storage_bytes(self) -> int:
        return self.network.ledger.block_store.total_bytes()

    def state_count(self) -> int:
        return self.network.ledger.state_db.state_count()

    def close(self) -> None:
        self.network.close()
        if self._owns_workdir and self._workdir is not None:
            shutil.rmtree(self._workdir, ignore_errors=True)

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
