"""The experiment harness regenerating the paper's evaluation.

* :mod:`repro.bench.runner` -- builds an ingested network for one dataset
  and one model variant, runs instrumented queries.
* :mod:`repro.bench.experiments` -- one entry point per paper table
  (Tables I-IV) plus the ablations listed in DESIGN.md.
* :mod:`repro.bench.tables` -- paper-style plain-text table rendering.

CLI: ``python -m repro.cli table1 --dataset ds1`` etc.
"""

from repro.bench.runner import ExperimentRunner

__all__ = ["ExperimentRunner"]
