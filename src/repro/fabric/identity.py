"""MSP-style identities for the simulated network.

Fabric is a *permissioned* platform: every proposal and endorsement is
signed by a member of a membership service provider (MSP).  The simulator
keeps a registry of identities with shared-secret keys; endorsers sign
responses and the committing peer verifies them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.common.errors import LedgerError
from repro.fabric import crypto


@dataclass(frozen=True)
class Identity:
    """One network member (client, peer, or orderer)."""

    name: str
    msp_id: str
    secret: bytes = field(repr=False, default=b"")

    def sign(self, payload: bytes) -> bytes:
        return crypto.sign(self.secret, payload)

    def verify(self, payload: bytes, signature: bytes) -> bool:
        return crypto.verify(self.secret, payload, signature)


class MSP:
    """A minimal membership service provider: a named identity registry."""

    def __init__(self, msp_id: str = "Org1MSP") -> None:
        self.msp_id = msp_id
        self._identities: dict[str, Identity] = {}

    def enroll(self, name: str) -> Identity:
        """Create (or return) the identity ``name`` with a fresh secret."""
        if name in self._identities:
            return self._identities[name]
        identity = Identity(name=name, msp_id=self.msp_id, secret=os.urandom(16))
        self._identities[name] = identity
        return identity

    def get(self, name: str) -> Identity:
        try:
            return self._identities[name]
        except KeyError:
            raise LedgerError(f"unknown identity {name!r} in MSP {self.msp_id}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._identities
