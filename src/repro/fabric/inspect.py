"""Chain inspection: summarize a ledger's shape and costs.

Answers the operational questions behind the paper's cost model: how many
blocks, how are transactions distributed over them, how deep are key
histories, how many blocks would a GHFK of key ``k`` touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.fabric.block import VALID
from repro.fabric.ledger import Ledger
from repro.temporal.keys import is_interval_key


@dataclass
class ChainSummary:
    """Aggregate statistics over one ledger."""

    height: int
    total_transactions: int
    valid_transactions: int
    invalidated_transactions: int
    total_block_bytes: int
    state_count: int
    history_keys: int
    #: Histogram: number of blocks per transaction-count bucket.
    txs_per_block: Dict[int, int] = field(default_factory=dict)
    #: Top keys by number of distinct blocks their history touches.
    widest_histories: List[tuple[str, int]] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"chain height          : {self.height} blocks",
            f"transactions          : {self.total_transactions} "
            f"({self.valid_transactions} valid, "
            f"{self.invalidated_transactions} invalidated)",
            f"block storage         : {self.total_block_bytes:,} bytes",
            f"state-db live states  : {self.state_count}",
            f"history-db keys       : {self.history_keys}",
            "txs per block         : "
            + ", ".join(
                f"{count}x{blocks}"
                for count, blocks in sorted(self.txs_per_block.items())
            ),
            "widest histories      : "
            + ", ".join(f"{key}({blocks})" for key, blocks in self.widest_histories),
        ]
        return "\n".join(lines)


def summarize_chain(ledger: Ledger, top_keys: int = 5) -> ChainSummary:
    """Walk the chain and compute a :class:`ChainSummary`.

    This deserializes every block exactly once (it is an offline
    diagnostic, not a query path).
    """
    total_txs = 0
    valid_txs = 0
    txs_per_block: Dict[int, int] = {}
    for block in ledger.block_store.iter_blocks():
        count = len(block.transactions)
        total_txs += count
        valid_txs += sum(1 for tx in block.transactions if tx.validation_code == VALID)
        txs_per_block[count] = txs_per_block.get(count, 0) + 1

    history = ledger.history_db
    widths = sorted(
        (
            (key, history.block_count_for_key(key))
            for key in _history_keys(ledger)
        ),
        key=lambda pair: (-pair[1], pair[0]),
    )
    return ChainSummary(
        height=ledger.height,
        total_transactions=total_txs,
        valid_transactions=valid_txs,
        invalidated_transactions=total_txs - valid_txs,
        total_block_bytes=ledger.block_store.total_bytes(),
        state_count=ledger.state_db.state_count(),
        history_keys=history.key_count(),
        txs_per_block=txs_per_block,
        widest_histories=widths[:top_keys],
    )


def _history_keys(ledger: Ledger) -> List[str]:
    return list(ledger.history_db._locations.keys())


def ghfk_cost_profile(ledger: Ledger, prefix: str = "") -> Dict[str, int]:
    """Blocks a full GHFK would deserialize, per key (base keys only).

    This is the paper's "number of blocks to deserialize" quantity,
    computed from the history index without touching the block files.
    """
    return {
        key: ledger.history_db.block_count_for_key(key)
        for key in _history_keys(ledger)
        if key.startswith(prefix) and not is_interval_key(key)
        and not key.startswith("\x01") and not key.startswith("\x02")
    }
