"""The solo ordering service: batch cutting and the block hash chain.

Endorsed transactions queue at the orderer; a block is cut when the batch
hits ``max_message_count``, exceeds ``max_batch_bytes``, or (in logical
time) the oldest queued transaction is ``batch_timeout`` older than the
newest.  These are Fabric's ``BatchSize``/``BatchTimeout`` semantics with
logical time standing in for wall time.

Blocks are chained: each header carries the hash of the previous header.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.common.config import BlockCuttingConfig
from repro.fabric.block import (
    GENESIS_PREVIOUS_HASH,
    Block,
    BlockHeader,
    Transaction,
)
from repro.faults.crashpoints import ORDERER_BLOCK_CUT, crash_point

#: Callback invoked with every cut block (the committing peer).
BlockConsumer = Callable[[Block], None]


class SoloOrderer:
    """Single-node ordering service delivering blocks synchronously."""

    def __init__(
        self,
        config: Optional[BlockCuttingConfig] = None,
        next_block_number: int = 0,
        previous_hash: bytes = GENESIS_PREVIOUS_HASH,
    ) -> None:
        self._config = config or BlockCuttingConfig()
        self._pending: List[Transaction] = []
        self._pending_bytes = 0
        self._next_number = next_block_number
        self._previous_hash = previous_hash
        self._consumers: List[BlockConsumer] = []
        self.blocks_cut = 0

    def register_consumer(self, consumer: BlockConsumer) -> None:
        """Add a block consumer (the committing peer)."""
        self._consumers.append(consumer)

    def remove_consumer(self, consumer: BlockConsumer) -> bool:
        """Deregister a consumer; returns whether it was registered.

        Removal during an in-flight :meth:`cut_block` delivery takes
        effect from the *next* block: the current delivery iterates over
        a snapshot of the consumer list, so unsubscribing from inside a
        callback never skips or double-delivers to the remaining
        consumers.
        """
        if consumer in self._consumers:
            self._consumers.remove(consumer)
            return True
        return False

    # -- ingest -------------------------------------------------------------

    def submit(self, tx: Transaction) -> None:
        """Queue one endorsed transaction, cutting a block if the batch
        is full."""
        self._pending.append(tx)
        self._pending_bytes += self._estimate_size(tx)
        if self._should_cut():
            self.cut_block()

    def _should_cut(self) -> bool:
        if len(self._pending) >= self._config.max_message_count:
            return True
        if self._pending_bytes >= self._config.max_batch_bytes:
            return True
        if self._config.batch_timeout and len(self._pending) > 1:
            oldest = self._pending[0].timestamp
            newest = self._pending[-1].timestamp
            if newest - oldest >= self._config.batch_timeout:
                return True
        return False

    @staticmethod
    def _estimate_size(tx: Transaction) -> int:
        return len(tx.signable_payload())

    # -- block production -----------------------------------------------------

    def cut_block(self) -> Optional[Block]:
        """Cut a block from queued transactions and deliver it.

        Returns the block, or ``None`` if nothing was pending.
        """
        if not self._pending:
            return None
        transactions = self._pending
        self._pending = []
        self._pending_bytes = 0
        header = BlockHeader(
            number=self._next_number,
            previous_hash=self._previous_hash,
            data_hash=Block.compute_data_hash(transactions),
        )
        block = Block(header=header, transactions=transactions)
        self._next_number += 1
        self._previous_hash = header.hash()
        self.blocks_cut += 1
        crash_point(ORDERER_BLOCK_CUT)
        for consumer in list(self._consumers):
            consumer(block)
        return block

    def flush(self) -> Optional[Block]:
        """Force-cut any pending partial batch (end of an ingestion run)."""
        return self.cut_block()

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def next_block_number(self) -> int:
        return self._next_number
