"""The ledger: block store + state-db + history-db behind one facade.

``commit_block`` runs the full commit path: hash-chain check, data-hash
check, validation (endorsement + MVCC), block append, state-db write
application, history-db indexing and savepoint update.  Query APIs mirror
the three Fabric calls the paper builds on: ``GetState``,
``GetStateByRange`` and ``GetHistoryForKey``.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Optional, Tuple

if TYPE_CHECKING:
    from repro.fabric.pipeline import CommitPipeline

from repro.common import metrics as metric_names
from repro.common.config import FabricConfig
from repro.common.errors import HashChainError
from repro.common.metrics import NULL_REGISTRY, MetricsRegistry
from repro.fabric.block import GENESIS_PREVIOUS_HASH, VALID, Block, Version
from repro.fabric.blockstore import BlockStore
from repro.fabric.historydb import HistoryDB, HistoryEntry
from repro.fabric.statedb import StateDB, StateValue
from repro.fabric.validator import Validator
from repro.faults.crashpoints import (
    LEDGER_MID_STATE,
    LEDGER_POST_COMMIT,
    LEDGER_PRE_APPEND,
    LEDGER_PRE_HISTORY,
    LEDGER_PRE_SAVEPOINT,
    LEDGER_PRE_STATE,
    crash_point,
)
from repro.faults.fs import REAL_FS, FileSystem
from repro.storage.kv import open_kv_store

__all__ = ["Ledger", "HistoryEntry"]


class Ledger:
    """A single peer's ledger."""

    def __init__(
        self,
        path: str | Path,
        config: Optional[FabricConfig] = None,
        metrics: MetricsRegistry = NULL_REGISTRY,
        fs: FileSystem = REAL_FS,
    ) -> None:
        self._config = config or FabricConfig()
        self._metrics = metrics
        path = Path(path)
        self.block_store = BlockStore(
            path / "ledger",
            codec=self._config.block_store.codec,
            max_file_bytes=self._config.block_store.max_file_bytes,
            metrics=metrics,
            cache_blocks=self._config.block_store.cache_blocks,
            durability=self._config.block_store.durability,
            fs=fs,
            mmap_io=self._config.block_store.mmap_io,
        )
        state_config = self._config.state_db
        # The uniform option set: every backend factory picks the options
        # it honours and ignores the rest (see repro.storage.kv.registry).
        self.state_db = StateDB(
            open_kv_store(
                state_config.backend,
                path=path / "statedb",
                memtable_limit=state_config.memtable_limit,
                compaction_trigger=state_config.compaction_trigger,
                compaction=state_config.compaction,
                durability=state_config.durability,
                metrics=metrics,
                fs=fs,
            ),
            metrics=metrics,
        )
        self.history_db = HistoryDB(metrics=metrics)
        commit = self._config.commit
        self._footprint = None
        if commit.footprint_path:
            from repro.fabric.footprint import load_footprint

            self._footprint = load_footprint(commit.footprint_path)
        self._pipeline: Optional["CommitPipeline"] = None
        self._validator = self._build_validator()
        self._last_header_hash = GENESIS_PREVIOUS_HASH
        self._recover()
        if commit.pipeline:
            # Engaged only after recovery: replay applies derived state
            # inline, exactly like the serial path.
            from repro.fabric.pipeline import CommitPipeline

            self._pipeline = CommitPipeline(self._apply_derived_state)

    def _build_validator(self, signature_check=None) -> Validator:
        """The validator the commit config asks for (serial or parallel),
        always looking versions up through the pipeline overlay."""
        commit = self._config.commit
        if commit.workers > 1:
            from repro.fabric.validator import ParallelValidator

            return ParallelValidator(
                version_lookup=self._version_lookup,
                signature_check=signature_check,
                workers=commit.workers,
                footprint=self._footprint,
            )
        return Validator(
            version_lookup=self._version_lookup,
            signature_check=signature_check,
        )

    def rewire_validator(self, signature_check) -> None:
        """Rebuild the validator with an endorsement-signature check
        (the peer calls this once its endorser exists)."""
        self._validator = self._build_validator(signature_check)

    def _version_lookup(self, key: str) -> Optional[Version]:
        """Committed version of ``key`` as MVCC validation must see it:
        pending pipelined writes included, else the state-db."""
        if self._pipeline is not None:
            return self._pipeline.version_lookup(key, self.state_db.get_version)
        return self.state_db.get_version(key)

    def _drain(self) -> None:
        """Wait for pipelined derived state before serving a query."""
        if self._pipeline is not None:
            self._pipeline.drain()

    def drain(self) -> None:
        """Block until every pipelined derived-state apply has finished.

        A no-op on the serial path.  Benchmarks call this to put the
        pipeline's background work inside the timed window; after it
        returns, the state-db and history-db reflect every committed
        block.
        """
        self._drain()

    def _recover(self) -> None:
        """Rebuild derived state after reopening an existing ledger.

        The history index is always rebuilt from the chain; the state-db is
        replayed from the savepoint forward (normally a no-op).  When the
        state-db opened with quarantined tables (an SSTable failed its
        checksum), the savepoint and any surviving entries are untrusted:
        the loss is acknowledged and every state is rebuilt by replaying
        the chain from block 0 -- the chain, not the derived store, is
        authoritative.
        """
        if self.block_store.base_hash:
            # Snapshot-bootstrapped ledger: the chain head before any
            # post-snapshot blocks is the snapshot's recorded hash.
            self._last_header_hash = self.block_store.base_hash
        if self.block_store.height == 0:
            return
        quarantined = self.state_db.quarantined_tables()
        if quarantined:
            self.state_db.acknowledge_quarantine()
            self._metrics.increment(
                metric_names.STATE_TABLES_QUARANTINED, len(quarantined)
            )
            savepoint: Optional[int] = None
        else:
            savepoint = self.state_db.savepoint()
        replay_from = 0 if savepoint is None else savepoint + 1
        for block in self.block_store.iter_blocks():
            self.history_db.index_block(block)
            if block.number >= replay_from:
                self._apply_state_writes(block)
                self.state_db.record_savepoint(block.number)
            self._last_header_hash = block.header.hash()

    # -- commit path ---------------------------------------------------------

    def commit_block(self, block: Block) -> int:
        """Validate and commit one block; returns the number of valid txs.

        With the pipeline off (default) the whole sequence runs inline.
        With it on, the foreground stops after the durable chain append
        -- derived state (history index, state writes, savepoint) is
        applied by the pipeline worker while the *next* block validates,
        reading versions through the pipeline's write overlay.  Either
        way every block is appended only after validation and the chain
        never lags the derived stores.
        """
        with self._metrics.timed(metric_names.COMMIT_SECONDS):
            if self._pipeline is not None:
                self._pipeline.check()
            if block.header.previous_hash != self._last_header_hash:
                raise HashChainError(
                    f"block {block.number}: previous hash "
                    f"{block.header.previous_hash.hex()[:12]} does not match chain "
                    f"head {self._last_header_hash.hex()[:12]}"
                )
            block.verify_data_hash()
            valid_count = self._validator.validate_block(block)
            crash_point(LEDGER_PRE_APPEND)
            self.block_store.add_block(block)
            # Make the block durable before anything derived from it: the
            # state-db and history-db are rebuilt from the chain on
            # recovery, so the chain must never lag them.
            self.block_store.sync()
            if self._pipeline is not None:
                self._pipeline.submit(block)
            else:
                self._apply_derived_state(block)
            self._last_header_hash = block.header.hash()
            self._metrics.increment(metric_names.BLOCKS_COMMITTED)
            self._metrics.increment(metric_names.TXS_COMMITTED, valid_count)
            self._metrics.increment(
                metric_names.TXS_INVALIDATED, len(block.transactions) - valid_count
            )
        return valid_count

    def _apply_derived_state(self, block: Block) -> None:
        """History index, state writes and savepoint for one block --
        inline on the serial path, on the worker under the pipeline."""
        crash_point(LEDGER_PRE_HISTORY)
        self.history_db.index_block(block)
        crash_point(LEDGER_PRE_STATE)
        self._apply_state_writes(block)
        crash_point(LEDGER_PRE_SAVEPOINT)
        self.state_db.record_savepoint(block.number)
        crash_point(LEDGER_POST_COMMIT)

    def _apply_state_writes(self, block: Block) -> None:
        applied_one = False
        for tx_num, tx in enumerate(block.transactions):
            if tx.validation_code != VALID:
                continue
            version: Version = (block.number, tx_num)
            for write in tx.rw_set.writes.values():
                self.state_db.apply_write(write, version)
            if not applied_one:
                applied_one = True
                crash_point(LEDGER_MID_STATE)

    # -- queries --------------------------------------------------------------

    def get_state(self, key: str) -> Optional[Any]:
        """Current value of ``key`` (Fabric GetState)."""
        self._drain()
        state = self.state_db.get_state(key)
        return state.value if state else None

    def get_state_entry(self, key: str) -> Optional[StateValue]:
        """Current value *and version* of ``key``."""
        self._drain()
        return self.state_db.get_state(key)

    def get_state_by_range(
        self, start_key: str, end_key: str
    ) -> Iterator[Tuple[str, Any]]:
        """Sorted scan over current states (Fabric GetStateByRange)."""
        self._drain()
        for key, state in self.state_db.get_state_by_range(start_key, end_key):
            yield key, state.value

    def get_history_for_key(self, key: str) -> Iterator[HistoryEntry]:
        """Fabric GHFK: lazy, oldest-first history iterator for ``key``."""
        self._drain()
        return self.history_db.get_history_for_key(
            key, self.block_store, prefetch=self._config.query.ghfk_prefetch
        )

    def get_query_result(self, selector: dict) -> Iterator[Tuple[str, Any]]:
        """CouchDB-style rich query over current states."""
        from repro.fabric.richquery import RichQueryEngine

        self._drain()
        return RichQueryEngine(self.state_db).query(selector)

    # -- integrity & bookkeeping ------------------------------------------------

    @property
    def height(self) -> int:
        return self.block_store.height

    @property
    def last_header_hash(self) -> bytes:
        return self._last_header_hash

    def state_fingerprint(self) -> str:
        """SHA-256 over every committed state (key, value, version).

        Two honest peers that committed the same chain have identical
        fingerprints; used to check replica convergence.
        """
        import hashlib
        import json

        self._drain()
        hasher = hashlib.sha256()
        for key, state in self.state_db.get_state_by_range("", ""):
            hasher.update(
                json.dumps(
                    [key, state.value, list(state.version)],
                    sort_keys=True,
                    default=repr,
                ).encode("utf-8")
            )
        return hasher.hexdigest()

    def verify_chain(self) -> None:
        """Walk the chain verifying hash links and data hashes.

        On a snapshot-bootstrapped peer verification starts from the
        snapshot's recorded head hash (earlier blocks are not present).
        """
        previous = self.block_store.base_hash or GENESIS_PREVIOUS_HASH
        for block in self.block_store.iter_blocks():
            if block.header.previous_hash != previous:
                raise HashChainError(
                    f"block {block.number}: broken previous-hash link"
                )
            block.verify_data_hash()
            previous = block.header.hash()

    def close(self) -> None:
        if self._pipeline is not None:
            self._pipeline.close()
        self.block_store.close()
        self.state_db.close()
