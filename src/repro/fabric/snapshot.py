"""Ledger snapshots: bootstrap a peer from state instead of replay.

Replaying a long chain to join a channel is expensive; Fabric v2.3
introduced *ledger snapshots* -- a peer can start from a verified state
checkpoint at some height.  The trade-off is real and preserved here:
a snapshot-bootstrapped peer serves current-state queries immediately but
**has no history before the snapshot height** -- GHFK sees only
post-snapshot writes.  (For the paper's temporal workloads this makes
snapshots a poor fit for TQF/M1 archives but fine for M2 state probing.)

Snapshot layout: one JSON file with the height, the chain head hash, and
every ``(key, value, version)``.

Note: a snapshot-bootstrapped ledger can only be *reopened* when its
state-db uses the persistent LSM backend -- with the in-memory backend
there are no pre-snapshot blocks from which to rebuild state on restart.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path

from repro.common.errors import LedgerError
from repro.fabric.ledger import Ledger
from repro.faults.fs import REAL_FS, FileSystem

FORMAT_VERSION = 1


def export_snapshot(ledger: Ledger, path: str | Path, fs: FileSystem = REAL_FS) -> int:
    """Write a state snapshot of ``ledger`` at its current height.

    The snapshot is finalized atomically (temp file, fsync, rename) so a
    crash mid-export can never leave a truncated snapshot under the
    final name.  Returns the number of states exported.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    states = []
    for key, state in ledger.state_db.get_state_by_range("", ""):
        states.append([key, state.value, list(state.version)])
    document = {
        "format": FORMAT_VERSION,
        "height": ledger.height,
        "last_header_hash": base64.b64encode(ledger.last_header_hash).decode("ascii"),
        "state_fingerprint": ledger.state_fingerprint(),
        "states": states,
    }
    tmp_path = path.with_name(path.name + ".tmp")
    handle = fs.open(tmp_path, "wb")
    try:
        handle.write(json.dumps(document).encode("utf-8"))
        fs.fsync(handle)
    finally:
        handle.close()
    fs.replace(tmp_path, path)
    return len(states)


def import_snapshot(ledger: Ledger, path: str | Path) -> int:
    """Load a snapshot into a *fresh* ledger.

    The target must be empty (height 0, no states); a snapshot is a
    bootstrap, not a merge.  After import the ledger reports the
    snapshot's height and accepts the next block in the chain, but its
    block store holds nothing before the snapshot -- history queries see
    only post-snapshot writes.

    Returns the number of states imported.  Raises :class:`LedgerError`
    on format problems, a non-empty target, or a fingerprint mismatch.
    """
    path = Path(path)
    if not path.exists():
        raise LedgerError(f"snapshot file {path} does not exist")
    if ledger.height != 0 or ledger.state_db.state_count() != 0:
        raise LedgerError("snapshots can only bootstrap an empty ledger")
    with open(path) as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise LedgerError(f"malformed snapshot {path.name}: {exc}") from exc
    if document.get("format") != FORMAT_VERSION:
        raise LedgerError(
            f"unsupported snapshot format {document.get('format')!r}"
        )

    from repro.fabric.block import KVWrite

    for key, value, version in document["states"]:
        ledger.state_db.apply_write(
            KVWrite(key, value), version=(version[0], version[1])
        )
    height = document["height"]
    base_hash = base64.b64decode(document["last_header_hash"])
    ledger.state_db.record_savepoint(height - 1 if height else 0)
    ledger._last_header_hash = base_hash
    ledger.block_store.set_base_height(height, base_hash)

    fingerprint = ledger.state_fingerprint()
    if fingerprint != document["state_fingerprint"]:
        raise LedgerError(
            "snapshot fingerprint mismatch: expected "
            f"{document['state_fingerprint'][:12]}, got {fingerprint[:12]}"
        )
    return len(document["states"])
