"""Full-ledger audit: cross-check every derived structure against the chain.

The chain is the source of truth; state-db, history index and savepoint
are derivations.  The auditor replays the chain independently and
reports every divergence instead of stopping at the first, so operators
get the whole damage picture:

* hash-chain links and per-block data hashes;
* state-db contents vs a fresh replay of all valid writes;
* history-index locations vs the blocks' actual writes;
* savepoint vs chain height.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.errors import ReproError
from repro.fabric.block import GENESIS_PREVIOUS_HASH, VALID, Version
from repro.fabric.historydb import HistoryDB
from repro.fabric.ledger import Ledger
from repro.fabric.statedb import SAVEPOINT_KEY


@dataclass(frozen=True)
class Finding:
    """One divergence discovered by the audit."""

    severity: str  # "error" or "warning"
    code: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.detail}"


@dataclass
class AuditReport:
    """Everything the audit found (empty findings == healthy ledger)."""

    height: int
    findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no error-severity findings exist."""
        return not any(f.severity == "error" for f in self.findings)

    def add(self, severity: str, code: str, detail: str) -> None:
        """Record one finding."""
        self.findings.append(Finding(severity=severity, code=code, detail=detail))

    def render(self) -> str:
        """Human-readable summary."""
        if not self.findings:
            return f"audit: ledger healthy ({self.height} blocks)"
        lines = [f"audit: {len(self.findings)} finding(s) over {self.height} blocks"]
        lines.extend(f"  {finding}" for finding in self.findings)
        return "\n".join(lines)


def audit_ledger(ledger: Ledger, side_db=None) -> AuditReport:
    """Run every check; never raises for ledger damage (only for IO that
    prevents reading the chain at all).

    With ``side_db`` given (a peer's private-data store), every held
    private value is additionally verified against its on-chain hash.
    """
    report = AuditReport(height=ledger.height)
    expected_state = _audit_chain(ledger, report)
    _audit_state_db(ledger, expected_state, report)
    _audit_history_index(ledger, report)
    _audit_savepoint(ledger, report)
    if side_db is not None:
        _audit_private_data(ledger, side_db, report)
    return report


def _audit_private_data(ledger: Ledger, side_db, report: AuditReport) -> None:
    from repro.fabric.privatedata import hash_key, value_hash

    for (collection, key), value in side_db._values.items():
        committed = ledger.get_state(hash_key(collection, key))
        if committed is None:
            report.add(
                "warning", "private-orphan",
                f"side-db holds ({collection!r}, {key!r}) with no on-chain hash",
            )
        elif value_hash(value) != committed:
            report.add(
                "error", "private-hash-mismatch",
                f"side-db value for ({collection!r}, {key!r}) fails its "
                f"on-chain hash",
            )


def _audit_chain(ledger: Ledger, report: AuditReport) -> Dict[str, tuple]:
    """Walk the chain verifying hashes; returns the replayed state
    ``key -> (value, version)``."""
    expected: Dict[str, tuple] = {}
    previous = ledger.block_store.base_hash or GENESIS_PREVIOUS_HASH
    for number in range(ledger.block_store.base_height, ledger.height):
        try:
            block = ledger.block_store.get_block(number)
        except ReproError as exc:
            report.add("error", "block-unreadable", f"block {number}: {exc}")
            return expected
        if block.header.previous_hash != previous:
            report.add(
                "error",
                "hash-chain-broken",
                f"block {number}: previous-hash link does not match",
            )
        try:
            block.verify_data_hash()
        except ReproError:
            report.add(
                "error", "data-hash-mismatch",
                f"block {number}: transactions do not match the header hash",
            )
        previous = block.header.hash()
        for tx_num, tx in enumerate(block.transactions):
            if tx.validation_code != VALID:
                continue
            version: Version = (number, tx_num)
            for key, write in tx.rw_set.writes.items():
                if write.is_delete:
                    expected.pop(key, None)
                else:
                    expected[key] = (write.value, version)
    return expected


def _audit_state_db(
    ledger: Ledger, expected: Dict[str, tuple], report: AuditReport
) -> None:
    actual: Dict[str, tuple] = {}
    for key, state in ledger.state_db.get_state_by_range("", ""):
        actual[key] = (state.value, state.version)
    for key, (value, version) in expected.items():
        if key not in actual:
            report.add("error", "state-missing", f"{key!r} absent from state-db")
        elif actual[key] != (value, version):
            report.add(
                "error", "state-mismatch",
                f"{key!r}: state-db has {actual[key]}, chain implies "
                f"{(value, version)}",
            )
    for key in actual:
        if key not in expected:
            report.add(
                "error", "state-extra",
                f"{key!r} in state-db but not derivable from the chain",
            )


def _audit_history_index(ledger: Ledger, report: AuditReport) -> None:
    rebuilt = HistoryDB()
    rebuilt.rebuild(ledger.block_store)
    live = ledger.history_db
    keys = set(live._locations) | set(rebuilt._locations)
    for key in sorted(keys):
        if live.locations_for_key(key) != rebuilt.locations_for_key(key):
            report.add(
                "error", "history-index-divergent",
                f"{key!r}: index locations do not match the chain",
            )


def _audit_savepoint(ledger: Ledger, report: AuditReport) -> None:
    savepoint = ledger.state_db.savepoint()
    if ledger.height == 0:
        if savepoint is not None:
            report.add("warning", "savepoint-ahead", "savepoint set on empty chain")
        return
    if savepoint is None:
        report.add(
            "warning", "savepoint-missing",
            "no savepoint recorded; reopen will replay the whole chain",
        )
    elif savepoint != ledger.height - 1:
        report.add(
            "warning", "savepoint-stale",
            f"savepoint {savepoint} != last block {ledger.height - 1}",
        )


# Re-export for callers that audit the savepoint key's namespace directly.
__all__ = ["AuditReport", "Finding", "audit_ledger", "SAVEPOINT_KEY"]
