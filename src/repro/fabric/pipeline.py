"""Pipelined commit: overlap derived-state apply with next-block work.

Profiling the ingest path shows where commit time goes under the
durable (``fsync``) configuration: the state-db's WAL/SSTable fsyncs
release the GIL while the kernel flushes, and the history index is pure
CPU bookkeeping.  Neither affects the *chain*: the block store append
and sync happen first and are what recovery replays from.  The pipeline
exploits that split:

* **foreground** (``Ledger.commit_block``): hash-chain check, data-hash
  verify, validation, block append + sync -- everything that decides
  and durably records the block;
* **background** (one worker thread, strictly in block order): history
  indexing, state-db write application, savepoint.

Validation of block N+1 starts while block N's derived state is still
being applied, so the foreground's MVCC version lookups go through an
**overlay** of the not-yet-applied writes: for a pending key the
overlay answers with the version the state-db *will* hold (or ``None``
for a pending delete); for everything else it falls through to the
state-db, whose backends are internally locked.  Results are therefore
byte-identical to the serial path -- the overlay is exactly the
state-db delta the background still owes.

Crash behaviour is unchanged in kind: a block is only ever
acknowledged after its chain append is durable, and derived state is
rebuilt from the chain on recovery (``Ledger._recover``), so a crash
that loses the background's progress loses nothing the chain cannot
restore.  A background failure (including an injected crash point) is
re-raised on the next foreground operation.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.common import locks as conc
from repro.fabric.block import VALID, Block, Version


class CommitPipeline:
    """One-deep-by-default queue of blocks awaiting derived-state apply.

    The queue is unbounded in structure but the ledger submits the next
    block only after its foreground phase, so in practice at most a few
    blocks are pending; ``drain()`` blocks until the ledger's derived
    state has fully caught up with its chain.
    """

    def __init__(self, apply_block: Callable[[Block], None]) -> None:
        self._apply_block = apply_block
        self._lock = conc.make_lock("CommitPipeline._lock")
        self._cond = conc.make_condition(self._lock, "CommitPipeline._cond")
        self._queue: Deque[Block] = deque()
        #: Pending writes: key -> (owning block number, version the
        #: state-db will hold once the background catches up; ``None``
        #: = the key will be deleted).  The owner lets retirement tell a
        #: finished block's entry from a later block's overwrite.
        self._overlay: Dict[str, Tuple[int, Optional[Version]]] = {}
        self._error: Optional[BaseException] = None
        self._thread = None
        self._closed = False

    # -- foreground side ---------------------------------------------------

    def submit(self, block: Block) -> None:
        """Register ``block``'s valid writes in the overlay and queue it.

        Must be called after the foreground phase (validation + durable
        chain append): from this point on, version lookups already see
        the block's writes even though the state-db does not.
        """
        self.check()
        with self._lock:
            for tx_num, tx in enumerate(block.transactions):
                if tx.validation_code != VALID:
                    continue
                version: Version = (block.number, tx_num)
                for write in tx.rw_set.writes.values():
                    self._overlay[write.key] = (
                        block.number,
                        None if write.is_delete else version,
                    )
            self._queue.append(block)
            self._ensure_worker_locked()
            self._cond.notify_all()

    def version_lookup(
        self, key: str, fallback: Callable[[str], Optional[Version]]
    ) -> Optional[Version]:
        """The version ``key`` will have once pending blocks are applied."""
        with self._lock:
            if key in self._overlay:
                return self._overlay[key][1]
        return fallback(key)

    def drain(self) -> None:
        """Block until every submitted block's derived state is applied."""
        with self._lock:
            while self._queue and self._error is None:
                self._cond.wait()
        self.check()

    def check(self) -> None:
        """Re-raise a background failure on the calling (foreground) thread."""
        with self._lock:
            error = self._error
            self._error = None
        if error is not None:
            raise error

    def close(self) -> None:
        self.drain()
        with self._lock:
            self._closed = True
            self._cond.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join()
            with self._lock:
                self._thread = None

    # -- background side ---------------------------------------------------

    def _ensure_worker_locked(self) -> None:
        if self._thread is not None:
            return
        import threading

        task = conc.wrap_task(self._worker)
        self._thread = threading.Thread(
            target=task, name="commit-pipeline", daemon=True
        )
        self._thread.start()

    def _worker(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue and self._closed:
                    return
                block = self._queue[0]
            try:
                # Applied outside the lock: the state-db and history-db
                # are internally locked, and overlay lookups for keys
                # this block writes keep answering from the overlay
                # until the pop below.
                self._apply_block(block)
            # The catch is the forwarding mechanism, not a swallow: the
            # exception (including SimulatedCrashError from a crash point
            # inside the apply) is re-raised unchanged on the foreground
            # thread by the next commit/drain/query -- the only way a
            # background failure can reach the fault harness at all.
            except BaseException as exc:  # repro-lint: disable=ERR001
                with self._lock:
                    self._error = exc
                    self._queue.clear()
                    self._overlay.clear()
                    self._cond.notify_all()
                return
            with self._lock:
                self._queue.popleft()
                # Retire overlay entries this block owns; an entry a
                # later pending block overwrote carries that block's
                # number and stays until its own apply finishes.
                for tx in block.transactions:
                    if tx.validation_code != VALID:
                        continue
                    for key in tx.rw_set.writes:
                        entry = self._overlay.get(key)
                        if entry is not None and entry[0] == block.number:
                            del self._overlay[key]
                self._cond.notify_all()
