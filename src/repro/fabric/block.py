"""Ledger data model: reads, writes, transactions and blocks.

Mirrors Fabric's structures at the granularity the paper's cost model
needs:

* a :class:`Transaction` carries a read set (keys + the version observed
  during endorsement) and a write set (**at most one write per key** --
  Section II of the paper: "for a key, a Fabric transaction persists only
  one state on the ledger");
* a :class:`Block` carries an ordered list of transactions, per-transaction
  validation flags set at commit, and a header whose ``previous_hash``
  forms the chain.

Versions are Fabric "heights": ``(block_number, tx_index)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple  # noqa: F401 - Tuple in annotations

from repro.common.errors import LedgerError
from repro.fabric import crypto

#: A committed value's version: (block number, transaction index).
Version = Tuple[int, int]

# Validation codes (subset of Fabric's TxValidationCode).
VALID = "VALID"
MVCC_READ_CONFLICT = "MVCC_READ_CONFLICT"
BAD_SIGNATURE = "BAD_SIGNATURE"
NOT_VALIDATED = "NOT_VALIDATED"


@dataclass(frozen=True)
class KVRead:
    """A key read during endorsement and the version that was observed.

    ``version=None`` records a read of a key that did not exist; the
    transaction is invalidated if the key exists at commit time.
    """

    key: str
    version: Optional[Version]

    def to_dict(self) -> Dict[str, Any]:
        return {"k": self.key, "v": list(self.version) if self.version else None}

    @staticmethod
    def from_dict(raw: Dict[str, Any]) -> "KVRead":
        version = tuple(raw["v"]) if raw.get("v") else None
        return KVRead(key=raw["k"], version=version)  # type: ignore[arg-type]


@dataclass(frozen=True)
class KVWrite:
    """A key write.  ``value=None`` with ``is_delete`` marks a deletion."""

    key: str
    value: Any
    is_delete: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {"k": self.key, "v": self.value, "d": self.is_delete}

    @staticmethod
    def from_dict(raw: Dict[str, Any]) -> "KVWrite":
        return KVWrite(key=raw["k"], value=raw["v"], is_delete=bool(raw["d"]))


def _read_order(read: KVRead) -> Tuple[str, int, Tuple[int, ...]]:
    """Deterministic sort key for reads (``None`` versions sort first)."""
    if read.version is None:
        return (read.key, 0, ())
    return (read.key, 1, tuple(read.version))


@dataclass
class RWSet:
    """A transaction's simulated read/write set.

    Writes are keyed by state key so a second write to the same key inside
    one transaction silently replaces the first -- the Fabric behaviour the
    ME ingestion strategy is designed around.
    """

    reads: List[KVRead] = field(default_factory=list)
    writes: Dict[str, KVWrite] = field(default_factory=dict)
    #: Mutation counter: bumped by every mutator so payload memoization
    #: (see :meth:`Transaction.signable_payload`) can detect tampering
    #: that happens through the RWSet API after signing.
    _rev: int = field(default=0, repr=False, compare=False)

    def add_read(self, key: str, version: Optional[Version]) -> None:
        self._rev += 1
        self.reads.append(KVRead(key=key, version=version))

    def add_write(self, key: str, value: Any) -> None:
        self._rev += 1
        self.writes[key] = KVWrite(key=key, value=value)

    def add_delete(self, key: str) -> None:
        self._rev += 1
        self.writes[key] = KVWrite(key=key, value=None, is_delete=True)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize with reads and writes in sorted key order.

        Serialization order must be a function of the *contents*, not of
        the insertion history: the endorser signs these bytes, and a
        transaction reloaded from the block store re-inserts writes in
        serialized order.  Sorting here makes the signing bytes -- and
        every downstream hash -- order-independent.
        """
        return {
            "reads": [read.to_dict() for read in sorted(self.reads, key=_read_order)],
            "writes": [
                self.writes[key].to_dict() for key in sorted(self.writes)
            ],
        }

    @staticmethod
    def from_dict(raw: Dict[str, Any]) -> "RWSet":
        rw_set = RWSet()
        rw_set.reads = [KVRead.from_dict(item) for item in raw["reads"]]
        for item in raw["writes"]:
            write = KVWrite.from_dict(item)
            rw_set.writes[write.key] = write
        return rw_set


@dataclass
class Transaction:
    """An endorsed transaction ready for ordering."""

    tx_id: str
    chaincode: str
    creator: str
    #: Logical timestamp supplied by the client (the event time).
    timestamp: int
    rw_set: RWSet
    #: Endorser's signature over the serialized RWSet.
    signature: bytes = b""
    validation_code: str = NOT_VALIDATED
    #: Optional chaincode event (Fabric's SetEvent: at most one per tx).
    event_name: str = ""
    event_payload: Any = None
    #: Private-data payloads ``(collection, key) -> value`` travelling
    #: with the transaction *outside* the block: never serialized, never
    #: hashed -- only their digests (already in the write set) are public.
    private_payloads: Dict[Tuple[str, str], Any] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Memoized ``(rw_set revision, bytes)`` for :meth:`signable_payload`.
    #: The payload is consumed five times per transaction (endorser
    #: signature, orderer size estimate, data hash at cut, data-hash
    #: verify and signature verify at commit) but its inputs are frozen
    #: once endorsement signs them, so recomputing it is pure waste on
    #: the ingest hot path.  The cache is keyed by the RWSet's mutation
    #: counter so tampering through the RWSet API still changes the
    #: payload (and therefore breaks the data hash, as it must).
    _payload_cache: Optional[Tuple[int, bytes]] = field(
        default=None, repr=False, compare=False
    )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tx_id": self.tx_id,
            "chaincode": self.chaincode,
            "creator": self.creator,
            "timestamp": self.timestamp,
            "rw_set": self.rw_set.to_dict(),
            "signature": self.signature,
            "validation_code": self.validation_code,
            "event_name": self.event_name,
            "event_payload": self.event_payload,
        }

    @staticmethod
    def from_dict(raw: Dict[str, Any]) -> "Transaction":
        return Transaction(
            tx_id=raw["tx_id"],
            chaincode=raw["chaincode"],
            creator=raw["creator"],
            timestamp=raw["timestamp"],
            rw_set=RWSet.from_dict(raw["rw_set"]),
            signature=raw["signature"],
            validation_code=raw["validation_code"],
            event_name=raw.get("event_name", ""),
            event_payload=raw.get("event_payload"),
        )

    def signable_payload(self) -> bytes:
        """The bytes an endorser signs (RWSet + identity + timestamp).

        Memoized: every field it covers is immutable once the endorser
        has signed (``validation_code`` and ``private_payloads`` mutate
        later but are deliberately outside the signed payload).  RWSet
        mutations bump the set's revision counter and invalidate the
        cache, so post-signing tampering is still reflected.
        """
        if (
            self._payload_cache is not None
            and self._payload_cache[0] == self.rw_set._rev
        ):
            return self._payload_cache[1]
        import json

        payload = json.dumps(
            {
                "rw_set": self.rw_set.to_dict(),
                "creator": self.creator,
                "timestamp": self.timestamp,
                "chaincode": self.chaincode,
                "event": [self.event_name, self.event_payload],
            },
            sort_keys=True,
            default=repr,
        ).encode("utf-8")
        self._payload_cache = (self.rw_set._rev, payload)
        return payload


@dataclass(frozen=True)
class BlockHeader:
    """Block header forming the hash chain."""

    number: int
    previous_hash: bytes
    data_hash: bytes

    def hash(self) -> bytes:
        """Hash of this header, referenced by the next block."""
        return crypto.sha256(
            self.number.to_bytes(8, "big") + self.previous_hash + self.data_hash
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "number": self.number,
            "previous_hash": self.previous_hash,
            "data_hash": self.data_hash,
        }

    @staticmethod
    def from_dict(raw: Dict[str, Any]) -> "BlockHeader":
        return BlockHeader(
            number=raw["number"],
            previous_hash=raw["previous_hash"],
            data_hash=raw["data_hash"],
        )


@dataclass
class Block:
    """One ledger block: header + ordered transactions."""

    header: BlockHeader
    transactions: List[Transaction]

    @property
    def number(self) -> int:
        return self.header.number

    @property
    def commit_timestamp(self) -> int:
        """Logical commit time: the newest transaction timestamp inside."""
        if not self.transactions:
            return 0
        return max(tx.timestamp for tx in self.transactions)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "header": self.header.to_dict(),
            "transactions": [tx.to_dict() for tx in self.transactions],
        }

    @staticmethod
    def from_dict(raw: Dict[str, Any]) -> "Block":
        return Block(
            header=BlockHeader.from_dict(raw["header"]),
            transactions=[Transaction.from_dict(item) for item in raw["transactions"]],
        )

    @staticmethod
    def compute_data_hash(transactions: List[Transaction]) -> bytes:
        """Deterministic hash over the ordered transaction ids + payloads."""
        hasher_input = bytearray()
        for tx in transactions:
            hasher_input.extend(tx.tx_id.encode("utf-8"))
            hasher_input.extend(tx.signable_payload())
        return crypto.sha256(bytes(hasher_input))

    def verify_data_hash(self) -> None:
        """Raise :class:`LedgerError` if transactions don't match the header."""
        expected = self.compute_data_hash(self.transactions)
        if expected != self.header.data_hash:
            raise LedgerError(
                f"block {self.number}: data hash mismatch "
                f"({expected.hex()[:12]} != {self.header.data_hash.hex()[:12]})"
            )


#: Hash value linked to by the genesis block.
GENESIS_PREVIOUS_HASH = b"\x00" * 32
